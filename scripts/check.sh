#!/usr/bin/env sh
# Repo health gate: formatting, lints, build, tests. Fully offline.
#
# Usage: scripts/check.sh
# Runs from any directory; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

# The chaos matrix injects outages, bursts, stalls, corruption, and 429s
# into the full pipeline; a hang here means a resilience regression, so it
# runs again by name under a hard wall-clock bound.
echo "==> chaos matrix (bounded)"
timeout 420 cargo test --offline -p sandwich-suite --test chaos_matrix -q

echo "==> all checks passed"
