#!/usr/bin/env sh
# Repo health gate: formatting, lints, build, tests. Fully offline.
#
# Usage: scripts/check.sh
# Runs from any directory; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

# The chaos matrix injects outages, bursts, stalls, corruption, and 429s
# into the full pipeline; a hang here means a resilience regression, so it
# runs again by name under a hard wall-clock bound.
echo "==> chaos matrix (bounded)"
timeout 420 cargo test --offline -p sandwich-suite --test chaos_matrix -q

# The segment store scan must stay byte-identical across worker counts and
# against the legacy in-memory analysis; a divergence here is a determinism
# regression in the scan engine.
echo "==> store scan determinism (bounded)"
timeout 420 cargo test --offline -p sandwich-suite --test store_scan -q

# The crash matrix kills the store writer at every enumerated crash point
# of a segment seal (clean kill and torn write), and fuzzes truncations and
# bit flips over sealed segments: every case must recover byte-identically
# or quarantine explicitly. Runs by name under a wall-clock bound.
echo "==> crash matrix (bounded)"
timeout 420 cargo test --offline -p sandwich-suite --test crash_matrix -q

# A bounded crash_bench run drives the same matrix end to end at a 10k-
# bundle store scale, exercises the doctor over torn tails / footer rot /
# body rot / missing files, and proves queryd keeps serving (healthz OK,
# coverage reported) over a store with one quarantined segment. The two
# hard gates: zero silent divergence, and at least 20 enumerated crash
# points per seal.
echo "==> crash_bench smoke (bounded, 10k-bundle store)"
SANDWICH_CRASH_BUNDLES=10000 \
SANDWICH_BENCH_OUT=target/BENCH_crash_smoke.json \
timeout 420 cargo run --offline --release -p sandwich-bench --bin crash_bench
gate_crash_json() {
  f="$1"
  grep -q '"silent_divergence": 0' "$f" || {
    echo "$f: silent_divergence != 0 — a crash case produced a silently different store" >&2
    exit 1
  }
  points=$(sed -n 's/.*"crash_points": \([0-9][0-9]*\).*/\1/p' "$f")
  if [ -z "$points" ] || [ "$points" -lt 20 ]; then
    echo "$f: crash_points '${points:-missing}' is under the floor of 20" >&2
    exit 1
  fi
  for field in recovery_max_ms torn_tail_bytes_reclaimed queryd_served_with_quarantine healthz_ok; do
    grep -q "\"$field\"" "$f" || {
      echo "$f is missing \"$field\"" >&2
      exit 1
    }
  done
}
gate_crash_json target/BENCH_crash_smoke.json
if [ -f results/BENCH_crash.json ]; then
  gate_crash_json results/BENCH_crash.json
fi

# A bounded scale_gen + scan_bench run smoke-tests the synthesize → seal →
# scan path end to end: it asserts the findings count equals the planted
# ground truth and that the zero-copy, materializing, and multi-thread
# scans all serialize byte-identically. The >=2x speedup gate only arms at
# >=200k bundles, so this checks correctness, not the ratio.
echo "==> scan_bench smoke (bounded, 50k-bundle scale store)"
SANDWICH_SCAN_BUNDLES=50000 \
SANDWICH_BENCH_OUT=target/BENCH_scan_smoke.json \
SANDWICH_STORE_DIR=target/scan_smoke.store \
timeout 420 cargo run --offline --release -p sandwich-bench --bin scan_bench
for field in zero_copy_speedup_1_thread materializing_bundles_per_sec \
             byte_identical_across_paths_and_threads single_core; do
  grep -q "\"$field\"" target/BENCH_scan_smoke.json || {
    echo "BENCH_scan_smoke.json is missing \"$field\"" >&2
    exit 1
  }
done
if [ -f results/BENCH_scan.json ]; then
  for field in zero_copy_speedup_1_thread materializing_bundles_per_sec \
               byte_identical_across_paths_and_threads; do
    grep -q "\"$field\"" results/BENCH_scan.json || {
      echo "results/BENCH_scan.json is missing \"$field\"" >&2
      exit 1
    }
  done
fi

# The on-disk format spec must agree with the code on the format version:
# docs/FORMAT.md states it as a greppable "FORMAT_VERSION = N" line, and
# crates/store declares "FORMAT_VERSION: u8 = N". Extract both, compare.
echo "==> FORMAT.md version matches store::FORMAT_VERSION"
spec_ver=$(sed -n 's/^FORMAT_VERSION = \([0-9][0-9]*\)$/\1/p' docs/FORMAT.md)
code_ver=$(sed -n 's/^pub const FORMAT_VERSION: u8 = \([0-9][0-9]*\);$/\1/p' crates/store/src/segment.rs)
if [ -z "$spec_ver" ] || [ -z "$code_ver" ] || [ "$spec_ver" != "$code_ver" ]; then
  echo "format version drift: docs/FORMAT.md says '${spec_ver:-missing}'," \
       "crates/store/src/segment.rs says '${code_ver:-missing}'" >&2
  exit 1
fi

# The conformance smoke replays the ground-truth lab end to end: detector
# precision/recall 1.0 against the sim's labels, every criterion ablation
# load-bearing, all fuzzer near-miss families rejected, and a byte-identical
# scorecard on a second identically-seeded run.
echo "==> conformance_bench smoke (bounded)"
SANDWICH_DAYS=2 \
SANDWICH_FUZZ_CASES=5 \
SANDWICH_SCORE_REPS=2 \
SANDWICH_BENCH_OUT=target/BENCH_conformance_smoke.json \
timeout 420 cargo run --offline --release -p sandwich-bench --bin conformance_bench

# The query subsystem: index build/persistence/corruption handling and the
# no-torn-reads contract under concurrent clients and reloads.
echo "==> query service tests (bounded)"
timeout 420 cargo test --offline -p sandwich-query -q
timeout 420 cargo test --offline -p sandwich-suite --test query_service -q

# The live tail: fold-equivalence properties (any partition, any order,
# mixed v1/v2 and quarantined segments in the delta), and the concurrency
# test where a writer seals while clients long-poll /api/live — cursors
# never skip or duplicate, and the index never falls back to a full
# rebuild.
echo "==> live tail tests (bounded)"
timeout 420 cargo test --offline -p sandwich-suite --test live_fold_props -q
timeout 420 cargo test --offline -p sandwich-suite --test live_tail -q

# A short query_bench run drives the live service over real sockets: it
# asserts the zipf cache-hit rate, byte-identical cached vs uncached
# bodies, persisted-index reuse on restart, and the live-tail phase —
# every seal folded (never rebuilt) into the serving index and visible on
# /api/live within one seal.
echo "==> query_bench smoke (bounded)"
SANDWICH_DAYS=2 \
SANDWICH_QUERY_STORE_DIR=target/query_smoke.store \
SANDWICH_LIVE_STORE_DIR=target/query_smoke.live.store \
SANDWICH_BENCH_OUT=target/BENCH_query_smoke.json \
timeout 420 cargo run --offline --release -p sandwich-bench --bin query_bench
gate_query_json() {
  f="$1"
  grep -q '"fold_only_reloads": true' "$f" || {
    echo "$f: fold_only_reloads != true — a reload fell back to a full index rebuild" >&2
    exit 1
  }
  grep -q '"full_rebuilds": 0' "$f" || {
    echo "$f: full_rebuilds != 0 — the live phase rebuilt an index from scratch" >&2
    exit 1
  }
  grep -q '"live_identical": true' "$f" || {
    echo "$f: live_identical != true — router /api/live diverged from the single engine" >&2
    exit 1
  }
  p99_seals=$(sed -n 's/.*"p99_freshness_seals": \([0-9][0-9]*\).*/\1/p' "$f")
  if [ -z "$p99_seals" ] || [ "$p99_seals" -gt 1 ]; then
    echo "$f: p99_freshness_seals '${p99_seals:-missing}' exceeds the 1-seal freshness bound" >&2
    exit 1
  fi
  for field in p50_ms p95_ms p99_ms throughput_rps; do
    grep -q "\"$field\"" "$f" || {
      echo "$f is missing \"$field\"" >&2
      exit 1
    }
  done
}
grep -q '"zipf_cache_hit_rate"' target/BENCH_query_smoke.json || {
  echo "BENCH_query_smoke.json is missing \"zipf_cache_hit_rate\"" >&2
  exit 1
}
gate_query_json target/BENCH_query_smoke.json
if [ -f results/BENCH_query.json ]; then
  gate_query_json results/BENCH_query.json
fi

# The sharded router: merge-layer properties, byte-identity across shard
# counts (incl. pagination, coverage, 404s), degraded shards, and
# rebalance under a live router.
echo "==> shard router tests (bounded)"
timeout 420 cargo test --offline -p sandwich-shard -q
timeout 420 cargo test --offline -p sandwich-suite --test shard_props -q
timeout 420 cargo test --offline -p sandwich-suite --test shard_router -q

# A bounded shard_bench run drives a 50k-bundle store through 1/2/4/8
# shards over real sockets. The hard gate is merged_identical: every
# router response byte-identical to the single engine at every shard
# count. scan_speedup_4_shards is reported, not gated — it only means
# something on multi-core hardware.
echo "==> shard_bench smoke (bounded, 50k-bundle store)"
SANDWICH_SHARD_BUNDLES=50000 \
SANDWICH_SHARD_REQUESTS=200 \
SANDWICH_BENCH_OUT=target/BENCH_shard_smoke.json \
timeout 420 cargo run --offline --release -p sandwich-bench --bin shard_bench
gate_shard_json() {
  f="$1"
  grep -q '"merged_identical": true' "$f" || {
    echo "$f: merged_identical != true — a sharded response diverged from the single engine" >&2
    exit 1
  }
  for field in scan_speedup_4_shards build_seconds throughput_rps; do
    grep -q "\"$field\"" "$f" || {
      echo "$f is missing \"$field\"" >&2
      exit 1
    }
  done
}
gate_shard_json target/BENCH_shard_smoke.json
if [ -f results/BENCH_shard.json ]; then
  gate_shard_json results/BENCH_shard.json
fi

# The attribution bench replays the default 8-day scenario into a store,
# joins every sealed sandwich to its slot leader, and scores the result
# against the sim's label book. The hard gates: exact attribution
# (accuracy 1.0 — every detected sandwich on the right leader, colluder
# set recovered exactly) and byte-identical /api/validators responses
# between the single engine and the 1/2/4/8-shard router.
echo "==> attrib_bench smoke (bounded, 8-day scenario)"
SANDWICH_ATTRIB_STORE_DIR=target/attrib_smoke.store \
SANDWICH_BENCH_OUT=target/BENCH_attrib_smoke.json \
timeout 420 cargo run --offline --release -p sandwich-bench --bin attrib_bench
gate_attrib_json() {
  f="$1"
  grep -q '"attribution_accuracy": 1.000' "$f" || {
    echo "$f: attribution_accuracy != 1.0 — a sandwich was joined to the wrong leader" >&2
    exit 1
  }
  grep -q '"validators_identical": true' "$f" || {
    echo "$f: validators_identical != true — sharded /api/validators diverged from the single engine" >&2
    exit 1
  }
  for field in colluder_precision colluder_recall colluder_ranking_agreement \
               leaderboard_overhead_pct; do
    grep -q "\"$field\"" "$f" || {
      echo "$f is missing \"$field\"" >&2
      exit 1
    }
  done
}
gate_attrib_json target/BENCH_attrib_smoke.json
if [ -f results/BENCH_attrib.json ]; then
  gate_attrib_json results/BENCH_attrib.json
fi

echo "==> all checks passed"
