#!/usr/bin/env sh
# Repo health gate: formatting, lints, build, tests. Fully offline.
#
# Usage: scripts/check.sh
# Runs from any directory; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

# The chaos matrix injects outages, bursts, stalls, corruption, and 429s
# into the full pipeline; a hang here means a resilience regression, so it
# runs again by name under a hard wall-clock bound.
echo "==> chaos matrix (bounded)"
timeout 420 cargo test --offline -p sandwich-suite --test chaos_matrix -q

# The segment store scan must stay byte-identical across worker counts and
# against the legacy in-memory analysis; a divergence here is a determinism
# regression in the scan engine.
echo "==> store scan determinism (bounded)"
timeout 420 cargo test --offline -p sandwich-suite --test store_scan -q

# A short scan_bench run smoke-tests the seal → parallel-scan path end to
# end (it asserts byte-identical reports at 1/2/4/8 threads internally).
echo "==> scan_bench smoke (bounded)"
SANDWICH_DAYS=2 \
SANDWICH_BENCH_OUT=target/BENCH_scan_smoke.json \
SANDWICH_STORE_DIR=target/scan_smoke.store \
timeout 420 cargo run --offline --release -p sandwich-bench --bin scan_bench

# The conformance smoke replays the ground-truth lab end to end: detector
# precision/recall 1.0 against the sim's labels, every criterion ablation
# load-bearing, all fuzzer near-miss families rejected, and a byte-identical
# scorecard on a second identically-seeded run.
echo "==> conformance_bench smoke (bounded)"
SANDWICH_DAYS=2 \
SANDWICH_FUZZ_CASES=5 \
SANDWICH_SCORE_REPS=2 \
SANDWICH_BENCH_OUT=target/BENCH_conformance_smoke.json \
timeout 420 cargo run --offline --release -p sandwich-bench --bin conformance_bench

# The query subsystem: index build/persistence/corruption handling and the
# no-torn-reads contract under concurrent clients and reloads.
echo "==> query service tests (bounded)"
timeout 420 cargo test --offline -p sandwich-query -q
timeout 420 cargo test --offline -p sandwich-suite --test query_service -q

# A short query_bench run drives the live service over real sockets: it
# asserts the zipf cache-hit rate, byte-identical cached vs uncached
# bodies, and persisted-index reuse on restart.
echo "==> query_bench smoke (bounded)"
SANDWICH_DAYS=2 \
SANDWICH_QUERY_STORE_DIR=target/query_smoke.store \
SANDWICH_BENCH_OUT=target/BENCH_query_smoke.json \
timeout 420 cargo run --offline --release -p sandwich-bench --bin query_bench
for field in p50_ms p95_ms p99_ms throughput_rps zipf_cache_hit_rate; do
  grep -q "\"$field\"" target/BENCH_query_smoke.json || {
    echo "BENCH_query_smoke.json is missing \"$field\"" >&2
    exit 1
  }
done
if [ -f results/BENCH_query.json ]; then
  for field in p50_ms p95_ms p99_ms throughput_rps; do
    grep -q "\"$field\"" results/BENCH_query.json || {
      echo "results/BENCH_query.json is missing \"$field\"" >&2
      exit 1
    }
  done
fi

echo "==> all checks passed"
