#!/usr/bin/env sh
# Repo health gate: formatting, lints, build, tests. Fully offline.
#
# Usage: scripts/check.sh
# Runs from any directory; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> all checks passed"
