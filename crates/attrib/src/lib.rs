//! Validator attribution: who led the slot a bundle landed in.
//!
//! The paper measures *how much* sandwiching flows through Jito but never
//! names the validators whose blocks carry it. The community leaderboards
//! referenced in SNIPPETS.md go that extra step: join every sandwich to its
//! slot leader and rank validators by stake-weighted sandwiches per leader
//! block. This crate supplies the deterministic machinery for that join:
//!
//! * a seeded, stake-weighted **validator identity set** ([`ValidatorSpec`]
//!   → [`LeaderSchedule::validators`]) with per-validator stake and a
//!   stake-pool assignment;
//! * an epoch-based **leader schedule** ([`LeaderSchedule`]) mapping any
//!   slot to its leader, rotating every [`LEADER_GROUP_SLOTS`] slots within
//!   [`EPOCH_SLOTS`]-slot epochs exactly like Solana's 4-slot leader groups
//!   inside 432,000-slot epochs;
//! * sim-side **colluder selection** ([`colluder_flags`]) — the ground-truth
//!   subset of leaders that forward their mempool view to the private
//!   channel. The flags never travel with the measured data; attribution
//!   must *rediscover* colluders from sandwich counts alone.
//!
//! Everything is a pure function of the spec, so the leader of a slot never
//! needs to be persisted: the store manifest carries only the tiny
//! [`ValidatorSpec`] and every consumer recomputes the schedule on demand.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

use sandwich_types::{Hash, Keypair, Pubkey, Slot};

/// Slots per leader-schedule epoch (Solana's 432,000 ≈ 2 days at 400 ms).
pub const EPOCH_SLOTS: u64 = 432_000;

/// Consecutive slots each scheduled leader produces (Solana's 4-slot group).
pub const LEADER_GROUP_SLOTS: u64 = 4;

/// Stake pools validators are assigned to, with selection weights in
/// percent. The split loosely mirrors the mainnet pool landscape the
/// SNIPPETS leaderboards roll up by.
const STAKE_POOLS: [(&str, u64); 5] = [
    ("jito", 35),
    ("marinade", 25),
    ("blaze", 15),
    ("jpool", 10),
    ("solo", 15),
];

/// The public, persistable description of a validator set.
///
/// Two fields fully determine identities, stakes, pools, and the leader of
/// every slot — this is what the store manifest records, and recomputing
/// the schedule from it is how the index build attributes sandwiches
/// without any per-slot leader data on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatorSpec {
    /// Seed the identity set and schedule derive from.
    pub seed: u64,
    /// Number of validators in the set.
    pub count: u32,
}

impl ValidatorSpec {
    /// Spec with the given seed and validator count.
    pub fn new(seed: u64, count: u32) -> ValidatorSpec {
        ValidatorSpec {
            seed,
            count: count.max(1),
        }
    }
}

/// One validator in the derived identity set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Validator {
    /// The validator's identity address.
    pub pubkey: Pubkey,
    /// Activated stake in lamports (heavy-tailed, hash-derived).
    pub stake_lamports: u64,
    /// The stake pool this validator's stake is delegated through.
    pub stake_pool: &'static str,
}

fn hash_u64(parts: &[&[u8]]) -> u64 {
    let h = Hash::digest_parts(parts);
    u64::from_le_bytes(h.0[..8].try_into().unwrap())
}

/// The signing identity of validator `index` in the set — used by the sim
/// to stand up banks and sign; the measured side only ever sees pubkeys.
pub fn validator_keypair(spec: &ValidatorSpec, index: u32) -> Keypair {
    Keypair::from_label(&format!("validator-{}-{}", spec.seed, index))
}

fn derive_validator(spec: &ValidatorSpec, index: u32) -> Validator {
    let seed = spec.seed.to_le_bytes();
    let idx = index.to_le_bytes();
    let h = hash_u64(&[b"validator-stake", &seed, &idx]);
    // Heavy-tailed stakes: a uniform base of 5k–50k SOL with a power-of-two
    // whale multiplier drawn from the top bits, so a few validators carry
    // several times the median stake and the schedule is visibly uneven.
    let base_sol = 5_000 + h % 45_000;
    let whale = 1u64 << ((h >> 60) % 4); // 1, 2, 4, or 8
    let stake_lamports = base_sol * whale * 1_000_000_000;
    let p = hash_u64(&[b"validator-pool", &seed, &idx]) % 100;
    let mut acc = 0u64;
    let mut stake_pool = STAKE_POOLS[0].0;
    for (name, weight) in STAKE_POOLS {
        acc += weight;
        if p < acc {
            stake_pool = name;
            break;
        }
    }
    Validator {
        pubkey: validator_keypair(spec, index).pubkey(),
        stake_lamports,
        stake_pool,
    }
}

/// A materialized leader schedule: the validator set plus the cumulative
/// stake table used for weighted leader draws.
#[derive(Clone, Debug)]
pub struct LeaderSchedule {
    spec: ValidatorSpec,
    validators: Vec<Validator>,
    cumulative: Vec<u128>,
    total_stake: u128,
}

impl LeaderSchedule {
    /// Derive the full schedule machinery from a spec.
    pub fn new(spec: &ValidatorSpec) -> LeaderSchedule {
        let validators: Vec<Validator> = (0..spec.count.max(1))
            .map(|i| derive_validator(spec, i))
            .collect();
        let mut cumulative = Vec::with_capacity(validators.len());
        let mut total_stake = 0u128;
        for v in &validators {
            total_stake += v.stake_lamports as u128;
            cumulative.push(total_stake);
        }
        LeaderSchedule {
            spec: *spec,
            validators,
            cumulative,
            total_stake,
        }
    }

    /// The spec this schedule was derived from.
    pub fn spec(&self) -> &ValidatorSpec {
        &self.spec
    }

    /// The derived validator set, in index order.
    pub fn validators(&self) -> &[Validator] {
        &self.validators
    }

    /// Index (into [`Self::validators`]) of the leader of `slot`.
    ///
    /// Each epoch draws an independent stake-weighted rotation; within an
    /// epoch the leader changes every [`LEADER_GROUP_SLOTS`] slots.
    pub fn leader_index_at(&self, slot: Slot) -> usize {
        let epoch = slot.0 / EPOCH_SLOTS;
        let group = (slot.0 % EPOCH_SLOTS) / LEADER_GROUP_SLOTS;
        let h = hash_u64(&[
            b"leader-schedule",
            &self.spec.seed.to_le_bytes(),
            &epoch.to_le_bytes(),
            &group.to_le_bytes(),
        ]);
        // Scale the 64-bit draw onto [0, total_stake) without modulo bias,
        // then find the owning validator in the cumulative stake table.
        let r = (h as u128 * self.total_stake) >> 64;
        self.cumulative.partition_point(|&c| c <= r)
    }

    /// The leader of `slot`.
    pub fn leader_at(&self, slot: Slot) -> Pubkey {
        self.validators[self.leader_index_at(slot)].pubkey
    }

    /// Slots led per validator over `[0, max_slot]`, indexed like
    /// [`Self::validators`].
    ///
    /// This is the leaderboard denominator ("blocks led"). It is monotone
    /// non-decreasing in `max_slot` for every validator, which is what lets
    /// shards compute it locally and a router take the element-wise max.
    pub fn slots_led_through(&self, max_slot: u64) -> Vec<u64> {
        let mut counts = vec![0u64; self.validators.len()];
        let mut group_start = 0u64;
        while group_start <= max_slot {
            let led = (max_slot - group_start + 1).min(LEADER_GROUP_SLOTS);
            counts[self.leader_index_at(Slot(group_start))] += led;
            group_start += LEADER_GROUP_SLOTS;
        }
        counts
    }
}

/// Ground-truth colluder selection: which validators forward their mempool
/// view to the private channel.
///
/// Picks `round(count × fraction)` validators (at least one when the
/// fraction is positive) by ranking a per-validator hash, so the choice is
/// deterministic in the spec and uncorrelated with stake. Returns one flag
/// per validator index. **Sim-side only**: the flags are recorded in the
/// label book, never in the manifest — the measured system has to surface
/// colluders from attribution counts, not read them off a list.
pub fn colluder_flags(spec: &ValidatorSpec, fraction: f64) -> Vec<bool> {
    let count = spec.count.max(1) as usize;
    let k = if fraction <= 0.0 {
        0
    } else {
        (((count as f64) * fraction).round() as usize).clamp(1, count)
    };
    let seed = spec.seed.to_le_bytes();
    let mut ranked: Vec<(u64, usize)> = (0..count)
        .map(|i| {
            let idx = (i as u32).to_le_bytes();
            (hash_u64(&[b"colluder-pick", &seed, &idx]), i)
        })
        .collect();
    ranked.sort_unstable();
    let mut flags = vec![false; count];
    for &(_, i) in ranked.iter().take(k) {
        flags[i] = true;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ValidatorSpec {
        ValidatorSpec::new(20250209, 24)
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = LeaderSchedule::new(&spec());
        let b = LeaderSchedule::new(&spec());
        for s in [0u64, 1, 3, 4, 5, 431_999, 432_000, 1_000_000] {
            assert_eq!(a.leader_at(Slot(s)), b.leader_at(Slot(s)));
        }
        assert_eq!(a.validators(), b.validators());
    }

    #[test]
    fn leader_groups_are_four_slots_wide() {
        let sched = LeaderSchedule::new(&spec());
        for group in 0..200u64 {
            let base = group * LEADER_GROUP_SLOTS;
            let leader = sched.leader_at(Slot(base));
            for off in 1..LEADER_GROUP_SLOTS {
                assert_eq!(sched.leader_at(Slot(base + off)), leader);
            }
        }
    }

    #[test]
    fn different_seeds_change_the_rotation() {
        let a = LeaderSchedule::new(&ValidatorSpec::new(1, 24));
        let b = LeaderSchedule::new(&ValidatorSpec::new(2, 24));
        let differs =
            (0..100u64).any(|g| a.leader_index_at(Slot(g * 4)) != b.leader_index_at(Slot(g * 4)));
        assert!(differs);
    }

    #[test]
    fn slots_led_matches_leader_at_and_sums_to_the_range() {
        let sched = LeaderSchedule::new(&ValidatorSpec::new(7, 8));
        let max_slot = 4_001u64; // deliberately mid-group
        let counts = sched.slots_led_through(max_slot);
        assert_eq!(counts.iter().sum::<u64>(), max_slot + 1);
        let mut expect = vec![0u64; 8];
        for s in 0..=max_slot {
            expect[sched.leader_index_at(Slot(s))] += 1;
        }
        assert_eq!(counts, expect);
    }

    #[test]
    fn slots_led_is_monotone_in_max_slot() {
        // The property the shard router's max-merge of `blocks_led` rests on.
        let sched = LeaderSchedule::new(&ValidatorSpec::new(3, 6));
        let mut prev = vec![0u64; 6];
        for max_slot in [0u64, 3, 4, 17, 100, 1_000, 5_000] {
            let counts = sched.slots_led_through(max_slot);
            for (c, p) in counts.iter().zip(&prev) {
                assert!(c >= p, "blocks_led regressed at max_slot {max_slot}");
            }
            prev = counts;
        }
    }

    #[test]
    fn stake_weighting_favors_whales() {
        let sched = LeaderSchedule::new(&ValidatorSpec::new(11, 12));
        let counts = sched.slots_led_through(EPOCH_SLOTS - 1);
        let (heavy, _) = sched
            .validators()
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.stake_lamports)
            .map(|(i, v)| (i, v.stake_lamports))
            .unwrap();
        let (light, _) = sched
            .validators()
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| v.stake_lamports)
            .map(|(i, v)| (i, v.stake_lamports))
            .unwrap();
        assert!(
            counts[heavy] > counts[light],
            "heaviest validator led {} slots, lightest {}",
            counts[heavy],
            counts[light]
        );
    }

    #[test]
    fn colluder_flags_are_deterministic_and_sized() {
        let flags = colluder_flags(&spec(), 0.25);
        assert_eq!(flags, colluder_flags(&spec(), 0.25));
        assert_eq!(flags.iter().filter(|&&f| f).count(), 6);
        assert!(colluder_flags(&spec(), 0.0).iter().all(|&f| !f));
        // A positive fraction always selects at least one colluder.
        assert_eq!(
            colluder_flags(&ValidatorSpec::new(5, 40), 0.001)
                .iter()
                .filter(|&&f| f)
                .count(),
            1
        );
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: ValidatorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn validator_identities_are_stable_signing_keys() {
        let sched = LeaderSchedule::new(&spec());
        let kp = validator_keypair(&spec(), 0);
        assert_eq!(kp.pubkey(), sched.validators()[0].pubkey);
        let sig = kp.sign(b"vote");
        assert!(kp.pubkey().verify(b"vote", &sig));
    }
}
