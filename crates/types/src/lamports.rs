//! Lamport amounts and SOL conversions.
//!
//! One SOL is one billion lamports. Balances are [`Lamports`] (unsigned);
//! per-transaction balance changes are [`LamportDelta`] (signed), which the
//! sandwich detector uses to compute an account's net flow across a bundle.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of lamports in one SOL.
pub const LAMPORTS_PER_SOL: u64 = 1_000_000_000;

/// Solana's base transaction fee (5,000 lamports, per the paper §2.1).
pub const BASE_FEE: Lamports = Lamports(5_000);

/// Minimum Jito tip accepted when bundling (1,000 lamports, paper §3.3).
pub const MIN_JITO_TIP: Lamports = Lamports(1_000);

/// Tip threshold below which a length-1 bundle is classified as defensive
/// (100,000 lamports, paper §3.3).
pub const DEFENSIVE_TIP_THRESHOLD: Lamports = Lamports(100_000);

/// An unsigned lamport amount.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Lamports(pub u64);

impl Lamports {
    /// Zero lamports.
    pub const ZERO: Lamports = Lamports(0);

    /// Construct from whole SOL.
    pub fn from_sol(sol: f64) -> Self {
        assert!(sol >= 0.0, "negative SOL amount");
        Lamports((sol * LAMPORTS_PER_SOL as f64).round() as u64)
    }

    /// Value in SOL as a float (for reporting only).
    pub fn as_sol(&self) -> f64 {
        self.0 as f64 / LAMPORTS_PER_SOL as f64
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Lamports) -> Option<Lamports> {
        self.0.checked_add(rhs.0).map(Lamports)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Lamports) -> Option<Lamports> {
        self.0.checked_sub(rhs.0).map(Lamports)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Lamports) -> Lamports {
        Lamports(self.0.saturating_sub(rhs.0))
    }

    /// Signed view of this amount.
    pub fn as_delta(self) -> LamportDelta {
        LamportDelta(self.0 as i64)
    }
}

impl Add for Lamports {
    type Output = Lamports;
    fn add(self, rhs: Lamports) -> Lamports {
        Lamports(self.0.checked_add(rhs.0).expect("lamport overflow"))
    }
}

impl AddAssign for Lamports {
    fn add_assign(&mut self, rhs: Lamports) {
        *self = *self + rhs;
    }
}

impl Sub for Lamports {
    type Output = Lamports;
    fn sub(self, rhs: Lamports) -> Lamports {
        Lamports(self.0.checked_sub(rhs.0).expect("lamport underflow"))
    }
}

impl SubAssign for Lamports {
    fn sub_assign(&mut self, rhs: Lamports) {
        *self = *self - rhs;
    }
}

impl Sum for Lamports {
    fn sum<I: Iterator<Item = Lamports>>(iter: I) -> Lamports {
        iter.fold(Lamports::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Lamports {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lamports", self.0)
    }
}

impl fmt::Debug for Lamports {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lamports({})", self.0)
    }
}

/// A signed lamport change (positive = credit, negative = debit).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LamportDelta(pub i64);

impl LamportDelta {
    /// Zero change.
    pub const ZERO: LamportDelta = LamportDelta(0);

    /// Value in SOL as a float (for reporting only).
    pub fn as_sol(&self) -> f64 {
        self.0 as f64 / LAMPORTS_PER_SOL as f64
    }

    /// True when this delta is a net credit.
    pub fn is_gain(&self) -> bool {
        self.0 > 0
    }

    /// Magnitude as unsigned lamports.
    pub fn magnitude(&self) -> Lamports {
        Lamports(self.0.unsigned_abs())
    }
}

impl Add for LamportDelta {
    type Output = LamportDelta;
    fn add(self, rhs: LamportDelta) -> LamportDelta {
        LamportDelta(self.0.checked_add(rhs.0).expect("delta overflow"))
    }
}

impl AddAssign for LamportDelta {
    fn add_assign(&mut self, rhs: LamportDelta) {
        *self = *self + rhs;
    }
}

impl Sub for LamportDelta {
    type Output = LamportDelta;
    fn sub(self, rhs: LamportDelta) -> LamportDelta {
        LamportDelta(self.0.checked_sub(rhs.0).expect("delta overflow"))
    }
}

impl Neg for LamportDelta {
    type Output = LamportDelta;
    fn neg(self) -> LamportDelta {
        LamportDelta(-self.0)
    }
}

impl Sum for LamportDelta {
    fn sum<I: Iterator<Item = LamportDelta>>(iter: I) -> LamportDelta {
        iter.fold(LamportDelta::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for LamportDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+} lamports", self.0)
    }
}

impl fmt::Debug for LamportDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LamportDelta({:+})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sol_conversion_roundtrip() {
        let l = Lamports::from_sol(1.5);
        assert_eq!(l.0, 1_500_000_000);
        assert!((l.as_sol() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn checked_arithmetic() {
        assert_eq!(Lamports(5).checked_sub(Lamports(10)), None);
        assert_eq!(Lamports(5).saturating_sub(Lamports(10)), Lamports::ZERO);
        assert_eq!(Lamports(u64::MAX).checked_add(Lamports(1)), None);
    }

    #[test]
    #[should_panic(expected = "lamport underflow")]
    fn sub_underflow_panics() {
        let _ = Lamports(1) - Lamports(2);
    }

    #[test]
    fn delta_sum_and_sign() {
        let deltas = [LamportDelta(10), LamportDelta(-4), LamportDelta(-3)];
        let total: LamportDelta = deltas.into_iter().sum();
        assert_eq!(total, LamportDelta(3));
        assert!(total.is_gain());
        assert_eq!((-total).magnitude(), Lamports(3));
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(BASE_FEE.0, 5_000);
        assert_eq!(MIN_JITO_TIP.0, 1_000);
        assert_eq!(DEFENSIVE_TIP_THRESHOLD.0, 100_000);
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&Lamports(42)).unwrap();
        assert_eq!(json, "42");
        let back: Lamports = serde_json::from_str("42").unwrap();
        assert_eq!(back, Lamports(42));
    }
}
