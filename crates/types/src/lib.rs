//! Primitive types shared by every crate in the Jito sandwich-MEV
//! measurement reproduction: lamport amounts, account addresses, signatures,
//! slots, and the from-scratch hashing/encoding they rest on.
//!
//! See the workspace `DESIGN.md` for how these map onto the paper's system.

#![warn(missing_docs)]

pub mod base58;
pub mod hash;
pub mod lamports;
pub mod pubkey;
pub mod schnorr;
pub mod signature;
pub mod slot;

pub use hash::Hash;
pub use lamports::{
    LamportDelta, Lamports, BASE_FEE, DEFENSIVE_TIP_THRESHOLD, LAMPORTS_PER_SOL, MIN_JITO_TIP,
};
pub use pubkey::{Keypair, Pubkey};
pub use signature::Signature;
pub use slot::{Slot, SlotClock, MEASUREMENT_DAYS, MS_PER_SLOT, SLOTS_PER_DAY};
