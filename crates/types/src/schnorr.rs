//! A toy Schnorr signature scheme over a 61-bit prime field.
//!
//! The real Solana uses ed25519. Implementing curve25519 from scratch is out
//! of scope for a measurement reproduction — the sandwich detector never
//! verifies signatures; it only reads signer identities. What the simulator
//! *does* need is a functional asymmetric scheme: transactions carry a public
//! key and a signature that anyone can verify without the secret, so the bank
//! can reject forged transactions in tests. Classic Schnorr over the
//! multiplicative group of Z_p with p = 2^61 - 1 provides exactly that
//! structure (keygen / sign / publicly verify) with ~61 bits of, frankly,
//! non-security. DESIGN.md documents this substitution.

use crate::hash::Hash;

/// The Mersenne prime 2^61 - 1; the group is Z_p^*.
pub const P: u64 = (1u64 << 61) - 1;

/// Group order used for exponent arithmetic (g^(P-1) = 1 by Fermat).
pub const ORDER: u64 = P - 1;

/// Fixed group base.
pub const G: u64 = 3;

/// Multiply modulo `P` without overflow.
pub fn mul_mod(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P as u128) as u64
}

/// Raise `base` to `exp` modulo `P`.
pub fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    base %= P;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

fn hash_to_u64(parts: &[&[u8]]) -> u64 {
    let h = Hash::digest_parts(parts);
    u64::from_le_bytes(h.0[..8].try_into().unwrap())
}

/// A secret scalar with its public group element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SigningKey {
    secret: u64,
    public: u64,
}

impl SigningKey {
    /// Derive a signing key deterministically from a 32-byte seed.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        // Reduce into [1, ORDER) so the key is never the identity.
        let secret = hash_to_u64(&[b"schnorr-sk", seed]) % (ORDER - 1) + 1;
        SigningKey {
            secret,
            public: pow_mod(G, secret),
        }
    }

    /// The public group element.
    pub fn public_element(&self) -> u64 {
        self.public
    }

    /// Produce a deterministic Schnorr signature over `msg`.
    pub fn sign(&self, msg: &[u8]) -> SchnorrSig {
        // Deterministic nonce (RFC6979-style in spirit).
        let k = hash_to_u64(&[b"schnorr-k", &self.secret.to_le_bytes(), msg]) % (ORDER - 1) + 1;
        let r = pow_mod(G, k);
        let e = challenge(r, self.public, msg);
        // s = k + e * secret  (mod ORDER)
        let s = ((k as u128 + (e as u128 * self.secret as u128) % ORDER as u128) % ORDER as u128)
            as u64;
        SchnorrSig { r, s }
    }
}

/// Fiat–Shamir challenge.
fn challenge(r: u64, public: u64, msg: &[u8]) -> u64 {
    hash_to_u64(&[b"schnorr-e", &r.to_le_bytes(), &public.to_le_bytes(), msg]) % ORDER
}

/// A Schnorr signature (commitment, response).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchnorrSig {
    /// Commitment R = g^k.
    pub r: u64,
    /// Response s = k + e·sk mod ORDER.
    pub s: u64,
}

impl SchnorrSig {
    /// Verify against a public element: g^s == R · pk^e (mod P).
    pub fn verify(&self, public: u64, msg: &[u8]) -> bool {
        if self.r == 0 || public == 0 {
            return false;
        }
        let e = challenge(self.r, public, msg);
        pow_mod(G, self.s) == mul_mod(self.r, pow_mod(public, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_mod_fermat() {
        // a^(P-1) = 1 for a != 0 mod P.
        for a in [2u64, 3, 12345, P - 2] {
            assert_eq!(pow_mod(a, ORDER), 1, "a = {a}");
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let sig = key.sign(b"transfer 5 SOL");
        assert!(sig.verify(key.public_element(), b"transfer 5 SOL"));
    }

    #[test]
    fn wrong_message_fails() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let sig = key.sign(b"transfer 5 SOL");
        assert!(!sig.verify(key.public_element(), b"transfer 6 SOL"));
    }

    #[test]
    fn wrong_key_fails() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let other = SigningKey::from_seed(&[8u8; 32]);
        let sig = key.sign(b"msg");
        assert!(!sig.verify(other.public_element(), b"msg"));
    }

    #[test]
    fn deterministic_signatures() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        assert_eq!(key.sign(b"m"), key.sign(b"m"));
    }

    #[test]
    fn tampered_signature_fails() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let mut sig = key.sign(b"m");
        sig.s = sig.s.wrapping_add(1) % ORDER;
        assert!(!sig.verify(key.public_element(), b"m"));
    }

    #[test]
    fn zero_commitment_rejected() {
        let sig = SchnorrSig { r: 0, s: 1 };
        assert!(!sig.verify(G, b"m"));
    }
}
