//! Base58 encoding with the Bitcoin/Solana alphabet.
//!
//! Used to render pubkeys, signatures and hashes the way Solana explorers do.

const ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// Encode `data` as a base58 string.
pub fn encode(data: &[u8]) -> String {
    // Count leading zero bytes: each encodes to '1'.
    let zeros = data.iter().take_while(|&&b| b == 0).count();

    // Big-number base conversion, digits little-endian in `digits`.
    let mut digits: Vec<u8> = Vec::with_capacity(data.len() * 138 / 100 + 1);
    for &byte in &data[zeros..] {
        let mut carry = byte as u32;
        for d in digits.iter_mut() {
            carry += (*d as u32) << 8;
            *d = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }

    let mut out = String::with_capacity(zeros + digits.len());
    for _ in 0..zeros {
        out.push('1');
    }
    for &d in digits.iter().rev() {
        out.push(ALPHABET[d as usize] as char);
    }
    out
}

fn digit_value(c: u8) -> Option<u32> {
    ALPHABET.iter().position(|&a| a == c).map(|p| p as u32)
}

/// Decode a base58 string; returns `None` on any non-alphabet character.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    let zeros = bytes.iter().take_while(|&&c| c == b'1').count();

    let mut out: Vec<u8> = Vec::with_capacity(s.len());
    for &c in &bytes[zeros..] {
        let mut carry = digit_value(c)?;
        for o in out.iter_mut() {
            carry += (*o as u32) * 58;
            *o = (carry & 0xff) as u8;
            carry >>= 8;
        }
        while carry > 0 {
            out.push((carry & 0xff) as u8);
            carry >>= 8;
        }
    }

    let mut result = vec![0u8; zeros];
    result.extend(out.iter().rev());
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"hello world"), "StV1DL6CwTryKyV");
        assert_eq!(encode(&[0, 0, 40, 127, 180, 205]), "11233QC4");
        assert_eq!(decode("StV1DL6CwTryKyV").unwrap(), b"hello world");
        assert_eq!(decode("11233QC4").unwrap(), vec![0, 0, 40, 127, 180, 205]);
    }

    #[test]
    fn leading_zeros_preserved() {
        let data = [0u8, 0, 0, 1, 2, 3];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_invalid_chars() {
        assert!(decode("0OIl").is_none());
        assert!(decode("abc!").is_none());
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_32_bytes() {
        let data: Vec<u8> = (0u8..32)
            .map(|i| i.wrapping_mul(7).wrapping_add(3))
            .collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
