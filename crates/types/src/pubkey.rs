//! Account addresses.
//!
//! A [`Pubkey`] is a 32-byte address rendered in base58, exactly like Solana.
//! For signing accounts the first eight bytes embed the Schnorr public group
//! element (see [`crate::schnorr`]) so that signatures are publicly
//! verifiable from the address alone; the remaining 24 bytes are a
//! deterministic tag that spreads addresses over the full display space.
//! Program and sysvar addresses are derived from a name and never sign.

use std::fmt;
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::base58;
use crate::hash::Hash;
use crate::schnorr;

/// Size of a public key in bytes.
pub const PUBKEY_BYTES: usize = 32;

/// A 32-byte account address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pubkey(pub [u8; PUBKEY_BYTES]);

impl Pubkey {
    /// Address for a signing key's public group element.
    pub fn from_element(element: u64) -> Self {
        let mut bytes = [0u8; PUBKEY_BYTES];
        bytes[..8].copy_from_slice(&element.to_le_bytes());
        let tag = Hash::digest_parts(&[b"pk-tag", &element.to_le_bytes()]);
        bytes[8..].copy_from_slice(&tag.0[..24]);
        Pubkey(bytes)
    }

    /// Deterministic non-signing address (programs, sysvars, tip accounts).
    pub fn derive(name: &str) -> Self {
        let h = Hash::digest_parts(&[b"derived-address", name.as_bytes()]);
        Pubkey(h.0)
    }

    /// Derived address namespaced under a parent (e.g. token accounts).
    pub fn derive_with(parent: &Pubkey, name: &str) -> Self {
        let h = Hash::digest_parts(&[b"derived-address", &parent.0, name.as_bytes()]);
        Pubkey(h.0)
    }

    /// The embedded Schnorr public element (only meaningful for signing keys).
    pub fn verifying_element(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().unwrap())
    }

    /// Verify a signature over `msg` allegedly produced by this address.
    pub fn verify(&self, msg: &[u8], sig: &crate::signature::Signature) -> bool {
        // A signing address embeds its element and a matching tag; forged or
        // derived addresses fail the tag check and can never verify.
        let expected = Pubkey::from_element(self.verifying_element());
        if expected != *self {
            return false;
        }
        sig.schnorr().verify(self.verifying_element(), msg)
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; PUBKEY_BYTES] {
        &self.0
    }

    /// Short display prefix (first eight base58 chars), handy in reports.
    pub fn short(&self) -> String {
        let s = self.to_string();
        s.chars().take(8).collect()
    }
}

impl fmt::Display for Pubkey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&base58::encode(&self.0))
    }
}

impl fmt::Debug for Pubkey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pubkey({})", self.short())
    }
}

impl FromStr for Pubkey {
    type Err = &'static str;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = base58::decode(s).ok_or("invalid base58")?;
        let arr: [u8; PUBKEY_BYTES] = bytes.try_into().map_err(|_| "wrong length")?;
        Ok(Pubkey(arr))
    }
}

impl Serialize for Pubkey {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Pubkey {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse().map_err(D::Error::custom)
    }
}

/// A signing identity: Schnorr secret plus its derived address.
#[derive(Clone, Copy, Debug)]
pub struct Keypair {
    signing: schnorr::SigningKey,
    pubkey: Pubkey,
}

impl Keypair {
    /// Deterministic keypair from a 32-byte seed.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let signing = schnorr::SigningKey::from_seed(seed);
        Keypair {
            signing,
            pubkey: Pubkey::from_element(signing.public_element()),
        }
    }

    /// Deterministic keypair from a label (testing and simulation agents).
    pub fn from_label(label: &str) -> Self {
        let seed = Hash::digest_parts(&[b"keypair-label", label.as_bytes()]);
        Keypair::from_seed(&seed.0)
    }

    /// Random keypair.
    pub fn generate<R: rand::Rng>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        Keypair::from_seed(&seed)
    }

    /// This identity's address.
    pub fn pubkey(&self) -> Pubkey {
        self.pubkey
    }

    /// Sign a message.
    pub fn sign(&self, msg: &[u8]) -> crate::signature::Signature {
        crate::signature::Signature::from_schnorr(self.signing.sign(msg), msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let kp = Keypair::from_label("alice");
        let s = kp.pubkey().to_string();
        assert_eq!(s.parse::<Pubkey>().unwrap(), kp.pubkey());
    }

    #[test]
    fn keypair_sign_verify() {
        let kp = Keypair::from_label("alice");
        let sig = kp.sign(b"hello");
        assert!(kp.pubkey().verify(b"hello", &sig));
        assert!(!kp.pubkey().verify(b"tampered", &sig));
    }

    #[test]
    fn different_labels_different_keys() {
        assert_ne!(
            Keypair::from_label("a").pubkey(),
            Keypair::from_label("b").pubkey()
        );
    }

    #[test]
    fn derived_addresses_never_verify() {
        let program = Pubkey::derive("system_program");
        let kp = Keypair::from_label("alice");
        let sig = kp.sign(b"msg");
        assert!(!program.verify(b"msg", &sig));
    }

    #[test]
    fn derive_is_stable_and_namespaced() {
        assert_eq!(Pubkey::derive("x"), Pubkey::derive("x"));
        assert_ne!(Pubkey::derive("x"), Pubkey::derive("y"));
        let parent = Pubkey::derive("mint");
        assert_ne!(Pubkey::derive_with(&parent, "x"), Pubkey::derive("x"));
    }

    #[test]
    fn serde_roundtrip() {
        let pk = Keypair::from_label("serde").pubkey();
        let json = serde_json::to_string(&pk).unwrap();
        let back: Pubkey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pk);
    }
}
