//! 64-byte transaction signatures.
//!
//! Layout: bytes 0..8 carry the Schnorr commitment R, bytes 8..16 the
//! response s, and the remaining 48 bytes are a deterministic digest of
//! (R, s, message) so each signature renders as a unique 64-byte base58
//! string — the same shape as Solana's ed25519 signatures, which double as
//! transaction ids.

use std::fmt;
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::base58;
use crate::hash::Hash;
use crate::schnorr::SchnorrSig;

/// Size of a signature in bytes.
pub const SIGNATURE_BYTES: usize = 64;

/// A 64-byte signature, also used as a transaction id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub [u8; SIGNATURE_BYTES]);

impl Default for Signature {
    fn default() -> Self {
        Signature([0u8; SIGNATURE_BYTES])
    }
}

impl Signature {
    /// Pack a Schnorr signature over `msg` into wire form.
    pub fn from_schnorr(sig: SchnorrSig, msg: &[u8]) -> Self {
        let mut bytes = [0u8; SIGNATURE_BYTES];
        bytes[..8].copy_from_slice(&sig.r.to_le_bytes());
        bytes[8..16].copy_from_slice(&sig.s.to_le_bytes());
        let tail =
            Hash::digest_parts(&[b"sig-tail", &sig.r.to_le_bytes(), &sig.s.to_le_bytes(), msg]);
        bytes[16..48].copy_from_slice(&tail.0);
        bytes[48..].copy_from_slice(&Hash::digest_parts(&[b"sig-tail2", &tail.0]).0[..16]);
        Signature(bytes)
    }

    /// Recover the algebraic part for verification.
    pub fn schnorr(&self) -> SchnorrSig {
        SchnorrSig {
            r: u64::from_le_bytes(self.0[..8].try_into().unwrap()),
            s: u64::from_le_bytes(self.0[8..16].try_into().unwrap()),
        }
    }

    /// Short display prefix for reports.
    pub fn short(&self) -> String {
        self.to_string().chars().take(8).collect()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&base58::encode(&self.0))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({})", self.short())
    }
}

impl FromStr for Signature {
    type Err = &'static str;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = base58::decode(s).ok_or("invalid base58")?;
        let arr: [u8; SIGNATURE_BYTES] = bytes.try_into().map_err(|_| "wrong length")?;
        Ok(Signature(arr))
    }
}

impl Serialize for Signature {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Signature {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubkey::Keypair;

    #[test]
    fn schnorr_roundtrips_through_bytes() {
        let kp = Keypair::from_label("sig-test");
        let sig = kp.sign(b"payload");
        let inner = sig.schnorr();
        assert!(inner.verify(kp.pubkey().verifying_element(), b"payload"));
    }

    #[test]
    fn distinct_messages_distinct_signatures() {
        let kp = Keypair::from_label("sig-test");
        assert_ne!(kp.sign(b"a"), kp.sign(b"b"));
    }

    #[test]
    fn display_parse_roundtrip() {
        let sig = Keypair::from_label("x").sign(b"m");
        assert_eq!(sig.to_string().parse::<Signature>().unwrap(), sig);
    }

    #[test]
    fn serde_roundtrip() {
        let sig = Keypair::from_label("x").sign(b"m");
        let json = serde_json::to_string(&sig).unwrap();
        let back: Signature = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sig);
    }
}
