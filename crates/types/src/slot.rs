//! Slots and the simulated measurement clock.
//!
//! Solana produces a block every 400 ms. The paper's measurement spans
//! 2025-02-09 → 2025-06-09 (120 days). [`SlotClock`] maps slots to wall-clock
//! milliseconds and to day indices within the measurement period so the
//! analysis can build the per-day series of Figures 1 and 2.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Milliseconds per slot (Solana's 400 ms block time).
pub const MS_PER_SLOT: u64 = 400;

/// Slots in a 24-hour day at 400 ms per slot.
pub const SLOTS_PER_DAY: u64 = 86_400_000 / MS_PER_SLOT; // 216,000

/// Length of the paper's measurement period in days (Feb 9 – Jun 9, 2025).
pub const MEASUREMENT_DAYS: u64 = 120;

/// A slot number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Slot(pub u64);

impl Slot {
    /// Genesis slot.
    pub const GENESIS: Slot = Slot(0);

    /// The next slot.
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }
}

impl Add<u64> for Slot {
    type Output = Slot;
    fn add(self, rhs: u64) -> Slot {
        Slot(self.0 + rhs)
    }
}

impl Sub<Slot> for Slot {
    type Output = u64;
    fn sub(self, rhs: Slot) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Slot({})", self.0)
    }
}

/// Maps slots to timestamps and measurement-day indices.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlotClock {
    /// Unix milliseconds at slot 0.
    pub genesis_unix_ms: u64,
}

/// Unix milliseconds for 2025-02-09T00:00:00Z, the paper's collection start.
pub const MEASUREMENT_START_UNIX_MS: u64 = 1_739_059_200_000;

impl Default for SlotClock {
    fn default() -> Self {
        SlotClock {
            genesis_unix_ms: MEASUREMENT_START_UNIX_MS,
        }
    }
}

impl SlotClock {
    /// Clock whose slot 0 begins at the given unix millisecond timestamp.
    pub fn new(genesis_unix_ms: u64) -> Self {
        SlotClock { genesis_unix_ms }
    }

    /// Wall-clock unix milliseconds at the start of `slot`.
    pub fn unix_ms(&self, slot: Slot) -> u64 {
        self.genesis_unix_ms + slot.0 * MS_PER_SLOT
    }

    /// Zero-based day index of `slot` within the measurement period.
    pub fn day_index(&self, slot: Slot) -> u64 {
        slot.0 / SLOTS_PER_DAY
    }

    /// First slot of day `day`.
    pub fn day_start(&self, day: u64) -> Slot {
        Slot(day * SLOTS_PER_DAY)
    }

    /// Slot range `[start, end)` covering day `day`.
    pub fn day_range(&self, day: u64) -> (Slot, Slot) {
        (self.day_start(day), self.day_start(day + 1))
    }

    /// Slot in progress at the given unix millisecond timestamp.
    pub fn slot_at_unix_ms(&self, unix_ms: u64) -> Slot {
        Slot(unix_ms.saturating_sub(self.genesis_unix_ms) / MS_PER_SLOT)
    }

    /// Human-readable date label "day N" plus the calendar offset in the
    /// 2025 measurement window, for report output.
    pub fn day_label(&self, day: u64) -> String {
        // Feb 9 2025 is day 0. Render a rough calendar date for readability.
        const CUM_DAYS: [(u64, &str); 5] = [
            (0, "Feb"),
            (20, "Mar"), // Feb 9 + 20 days = Mar 1 (2025 is not a leap year)
            (51, "Apr"),
            (81, "May"),
            (112, "Jun"),
        ];
        let mut month = "Feb";
        let mut month_start = 0u64;
        let mut day_of_month_base = 9u64; // starts Feb 9
        for &(start, name) in &CUM_DAYS {
            if day >= start {
                month = name;
                month_start = start;
                day_of_month_base = if start == 0 { 9 } else { 1 };
            }
        }
        format!("{month} {:02}", day_of_month_base + (day - month_start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_per_day_value() {
        assert_eq!(SLOTS_PER_DAY, 216_000);
    }

    #[test]
    fn day_index_boundaries() {
        let clock = SlotClock::default();
        assert_eq!(clock.day_index(Slot(0)), 0);
        assert_eq!(clock.day_index(Slot(SLOTS_PER_DAY - 1)), 0);
        assert_eq!(clock.day_index(Slot(SLOTS_PER_DAY)), 1);
    }

    #[test]
    fn unix_ms_and_back() {
        let clock = SlotClock::default();
        let slot = Slot(12_345);
        let ms = clock.unix_ms(slot);
        assert_eq!(clock.slot_at_unix_ms(ms), slot);
        // Mid-slot timestamps map to the in-progress slot.
        assert_eq!(clock.slot_at_unix_ms(ms + MS_PER_SLOT - 1), slot);
        assert_eq!(clock.slot_at_unix_ms(ms + MS_PER_SLOT), slot.next());
    }

    #[test]
    fn day_range_is_contiguous() {
        let clock = SlotClock::default();
        let (s0, e0) = clock.day_range(0);
        let (s1, _) = clock.day_range(1);
        assert_eq!(e0, s1);
        assert_eq!(e0 - s0, SLOTS_PER_DAY);
    }

    #[test]
    fn day_labels() {
        let clock = SlotClock::default();
        assert_eq!(clock.day_label(0), "Feb 09");
        assert_eq!(clock.day_label(19), "Feb 28");
        assert_eq!(clock.day_label(20), "Mar 01");
        assert_eq!(clock.day_label(119), "Jun 08");
    }
}
