//! Property tests for the from-scratch primitives.

use proptest::prelude::*;

use sandwich_types::hash::{Hash, Sha256};
use sandwich_types::{base58, Keypair, Lamports, Pubkey};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn base58_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let encoded = base58::encode(&data);
        prop_assert_eq!(base58::decode(&encoded).unwrap(), data);
    }

    #[test]
    fn base58_alphabet_is_clean(data in prop::collection::vec(any::<u8>(), 0..100)) {
        let encoded = base58::encode(&data);
        // Never contains the ambiguous characters excluded from base58.
        for c in ['0', 'O', 'I', 'l', '+', '/'] {
            prop_assert!(!encoded.contains(c));
        }
    }

    #[test]
    fn sha256_streaming_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        cut_points in prop::collection::vec(any::<u16>(), 0..8),
    ) {
        let mut h = Sha256::new();
        let mut cuts: Vec<usize> = cut_points.iter().map(|&c| c as usize % (data.len() + 1)).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        for w in cuts.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), Hash::digest(&data).0);
    }

    #[test]
    fn sha256_is_injective_in_practice(
        a in prop::collection::vec(any::<u8>(), 0..100),
        b in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        if a != b {
            prop_assert_ne!(Hash::digest(&a), Hash::digest(&b));
        }
    }

    #[test]
    fn signatures_verify_and_bind_to_message(
        seed in any::<[u8; 32]>(),
        msg in prop::collection::vec(any::<u8>(), 0..256),
        other in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let kp = Keypair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.pubkey().verify(&msg, &sig));
        if msg != other {
            prop_assert!(!kp.pubkey().verify(&other, &sig));
        }
    }

    #[test]
    fn signatures_bind_to_key(
        seed_a in any::<[u8; 32]>(),
        seed_b in any::<[u8; 32]>(),
        msg in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let a = Keypair::from_seed(&seed_a);
        let b = Keypair::from_seed(&seed_b);
        if a.pubkey() != b.pubkey() {
            let sig = a.sign(&msg);
            prop_assert!(!b.pubkey().verify(&msg, &sig));
        }
    }

    #[test]
    fn pubkey_display_roundtrips(seed in any::<[u8; 32]>()) {
        let pk = Keypair::from_seed(&seed).pubkey();
        let parsed: Pubkey = pk.to_string().parse().unwrap();
        prop_assert_eq!(parsed, pk);
    }

    #[test]
    fn lamport_arithmetic_never_wraps(
        a in 0u64..u64::MAX / 2,
        b in 0u64..u64::MAX / 2,
    ) {
        let sum = Lamports(a) + Lamports(b);
        prop_assert_eq!(sum.0, a + b);
        let diff = sum - Lamports(b);
        prop_assert_eq!(diff.0, a);
        prop_assert_eq!(Lamports(a).checked_sub(Lamports(a + b + 1)), None);
    }

    #[test]
    fn sol_conversion_is_monotone(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Lamports::from_sol(lo) <= Lamports::from_sol(hi));
    }
}
