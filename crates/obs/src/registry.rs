//! The metric registry and its point-in-time snapshot.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;

#[derive(Default)]
struct Inner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// A shared, cheap-to-clone collection of named metrics.
///
/// Clones share storage, so every layer of the pipeline can hold its own
/// handle while `GET /metrics` renders one coherent view. Lookup is a
/// read-lock on the name map; the returned `Arc` should be cached by hot
/// paths so steady-state recording is lock-free.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.inner.counters, name, || Arc::new(Counter::new()))
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.inner.gauges, name, || Arc::new(Gauge::new()))
    }

    /// Get or create the histogram `name` with the default latency buckets.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.inner.histograms, name, || {
            Arc::new(Histogram::latency())
        })
    }

    /// Get or create the histogram `name` with explicit bucket bounds.
    ///
    /// The bounds only apply on first creation; later calls return the
    /// existing histogram unchanged.
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        get_or_insert(&self.inner.histograms, name, || {
            Arc::new(Histogram::with_buckets(bounds))
        })
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .read()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                        buckets: h.bounds().iter().copied().zip(h.bucket_counts()).collect(),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

fn get_or_insert<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> Arc<T>,
) -> Arc<T> {
    if let Some(existing) = map.read().get(name) {
        return Arc::clone(existing);
    }
    let mut write = map.write();
    Arc::clone(write.entry(name.to_string()).or_insert_with(make))
}

/// Frozen histogram state inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// `(upper_bound, count)` per finite bucket (overflow bucket omitted;
    /// it is `count` minus the bucket counts' sum).
    pub buckets: Vec<(f64, u64)>,
}

/// A point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The counter's value, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge's value, if it exists.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram's summary, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Sum of all counters whose name starts with `prefix` — convenient for
    /// "any requests at all?" style assertions over per-endpoint counters.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|&(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);
        let clone = r.clone();
        clone.counter("a").inc();
        assert_eq!(r.snapshot().counter("a"), Some(3));
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("z.last").add(9);
        r.counter("a.first").inc();
        r.gauge("depth").set(-3);
        r.histogram("lat").observe(0.002);
        let snap = r.snapshot();
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
        assert_eq!(snap.gauge("depth"), Some(-3));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert_eq!(snap.counter_sum("a."), 1);
        assert_eq!(snap.counter_sum(""), 10);
    }

    #[test]
    fn histogram_buckets_fixed_at_creation() {
        let r = Registry::new();
        let h = r.histogram_with_buckets("h", &[1.0, 2.0]);
        let again = r.histogram_with_buckets("h", &[99.0]);
        assert_eq!(h.bounds(), again.bounds());
    }
}
