//! Scalar metrics: monotone counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// Increments are relaxed atomic adds; readers only ever see a value that
/// some interleaving of increments could have produced, which is all a
/// metrics snapshot needs.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways: queue depths, backlog sizes, in-flight
/// request counts.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn counter_concurrent_increments_all_land() {
        let counter = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
    }
}
