//! Well-known metric names for the storage and scan layers.
//!
//! Layers that share a registry must agree on names; most of the stack
//! uses ad-hoc string literals scoped to one module, but the store/scan
//! metrics are recorded from `sandwich-core` and asserted by the suite and
//! the benchmarks, so the names live here as constants.

/// Counter: segments sealed by the collector's store sink.
pub const STORE_SEGMENTS_SEALED: &str = "store.segments_sealed";

/// Counter: bytes of sealed segment files written (manifest excluded).
pub const STORE_BYTES_WRITTEN: &str = "store.bytes_written";

/// Counter: segments read and folded by scans (batch or streaming).
pub const SCAN_SEGMENTS_SCANNED: &str = "scan.segments_scanned";

/// Histogram: per-worker busy time inside one parallel scan, seconds.
pub const SCAN_WORKER_BUSY_SECONDS: &str = "scan.worker_busy_seconds";

/// Histogram: wall-clock duration of one whole parallel scan, seconds.
pub const SCAN_SECONDS: &str = "scan.seconds";

/// Counter: streaming partials folded as segments sealed mid-run.
pub const SCAN_PARTIALS_EMITTED: &str = "scan.partials_emitted";

/// Gauge: sandwiches detected so far by the streaming scan.
pub const SCAN_STREAMING_SANDWICHES: &str = "scan.streaming_sandwiches";

/// Counter: findings matched to a labeled sandwich by the conformance join.
pub const CONFORMANCE_TRUE_POSITIVES: &str = "conformance.true_positives";

/// Counter: findings whose label was not a sandwich (or missing).
pub const CONFORMANCE_FALSE_POSITIVES: &str = "conformance.false_positives";

/// Counter: labeled, detectable sandwiches the analysis did not find.
pub const CONFORMANCE_FALSE_NEGATIVES: &str = "conformance.false_negatives";

/// Counter: labeled near-miss bundles scored by the conformance join.
pub const CONFORMANCE_NEAR_MISSES_SCORED: &str = "conformance.near_misses_scored";

/// Counter: near-miss bundles wrongly flagged by the full detector.
pub const CONFORMANCE_NEAR_MISSES_FLAGGED: &str = "conformance.near_misses_flagged";

/// Counter: query indexes rebuilt from segments (a persisted-index reuse
/// shows up as zero rebuilds).
pub const QUERY_INDEX_REBUILDS: &str = "query.index.rebuilds";

/// Counter: query indexes loaded from a valid persisted file.
pub const QUERY_INDEX_LOADS: &str = "query.index.loads";

/// Counter: persisted index files rejected (bad magic, checksum, or stale
/// generation) and rebuilt instead of trusted.
pub const QUERY_INDEX_REJECTED: &str = "query.index.rejected";

/// Histogram: wall-clock seconds to build one query index from segments.
pub const QUERY_INDEX_BUILD_SECONDS: &str = "query.index.build_seconds";

/// Counter: query API requests served (all endpoints).
pub const QUERY_REQUESTS: &str = "query.requests";

/// Counter: responses answered from the response cache.
pub const QUERY_CACHE_HITS: &str = "query.cache.hits";

/// Counter: responses that had to be evaluated (cache miss).
pub const QUERY_CACHE_MISSES: &str = "query.cache.misses";

/// Counter: cache entries evicted by the per-shard LRU.
pub const QUERY_CACHE_EVICTIONS: &str = "query.cache.evictions";

/// Counter: requests that waited on an identical in-flight evaluation
/// instead of decoding again (single-flight dedup).
pub const QUERY_CACHE_SINGLE_FLIGHT_WAITS: &str = "query.cache.single_flight_waits";

/// Counter: engine reloads after a manifest generation change.
pub const QUERY_RELOADS: &str = "query.reloads";

/// Prefix for the per-endpoint latency histograms (seconds); the endpoint
/// name is appended, e.g. `query.seconds.summary`.
pub const QUERY_SECONDS_PREFIX: &str = "query.seconds.";

/// Counter: segments skipped by a degraded (coverage-accounted) scan
/// because they failed to read or verify.
pub const SCAN_SEGMENTS_FAILED: &str = "scan.segments_failed";

/// Counter: quarantined segments a degraded scan accounted for (never
/// read, reported in the coverage block).
pub const SCAN_SEGMENTS_QUARANTINED: &str = "scan.segments_quarantined";

/// Counter: segments an index build skipped because they failed to read
/// or verify (the index serves with a degraded coverage block).
pub const QUERY_INDEX_SEGMENTS_FAILED: &str = "query.index.segments_failed";

/// Counter: requests shed by admission control (503 + Retry-After)
/// because the bounded in-flight limit was reached.
pub const QUERY_SHED: &str = "query.shed";

/// Counter: scatter-gather fanouts executed by the shard router (one per
/// cache-missing API request).
pub const QUERY_SHARD_FANOUTS: &str = "query.shard.fanouts";

/// Histogram: shards contacted per fanout (the fanout width).
pub const QUERY_SHARD_FANOUT_WIDTH: &str = "query.shard.fanout_width";

/// Prefix for the per-shard request latency histograms (seconds); the
/// shard id is appended, e.g. `query.shard.latency.2`.
pub const QUERY_SHARD_LATENCY_PREFIX: &str = "query.shard.latency.";

/// Histogram: wall-clock seconds the router spent merging shard partials
/// and rendering the response (excludes the fanout itself).
pub const QUERY_SHARD_MERGE_SECONDS: &str = "query.shard.merge_seconds";

/// Counter: straggler shard responses (slower than twice the fastest
/// shard in the same fanout).
pub const QUERY_SHARD_STRAGGLERS: &str = "query.shard.stragglers";

/// Counter: fanouts that failed (a shard was unreachable, answered a
/// non-200, or disagreed on the store generation) and were answered 503.
pub const QUERY_SHARD_FANOUT_FAILURES: &str = "query.shard.fanout_failures";

/// Counter: generation changes where the delta was **not** foldable (a
/// covered segment left the serving or quarantine list) and the whole
/// index had to be rebuilt from segments. A live-tail deployment expects
/// this to stay at zero forever — seals only ever append.
pub const QUERY_INDEX_FULL_REBUILDS: &str = "query.index.full_rebuilds";

/// Counter: incremental index folds applied (one per generation change
/// absorbed by folding only the new segments into the live index).
pub const QUERY_INDEX_FOLDS: &str = "query.index.fold.applied";

/// Counter: segments scanned by incremental folds (only the manifest
/// delta, never the whole store).
pub const QUERY_INDEX_FOLD_SEGMENTS: &str = "query.index.fold.segments";

/// Histogram: wall-clock seconds to scan a manifest delta and fold it
/// into the live index (compare `query.index.build_seconds`).
pub const QUERY_INDEX_FOLD_SECONDS: &str = "query.index.fold.seconds";

/// Counter: `/api/live` requests served (page-poll and long-poll).
pub const QUERY_LIVE_REQUESTS: &str = "query.live.requests";

/// Counter: `/api/live` requests that asked to long-poll (`wait_ms` > 0).
pub const QUERY_LIVE_LONG_POLLS: &str = "query.live.long_polls";

/// Counter: sandwich rows streamed out over `/api/live`.
pub const QUERY_LIVE_ROWS: &str = "query.live.rows";

/// Histogram: seconds a long-poll actually waited before answering
/// (bounded by the request's `wait_ms`).
pub const QUERY_LIVE_WAIT_SECONDS: &str = "query.live.wait_seconds";

/// Counter: leader schedules derived from a store's validator spec (one
/// per index build or fold that attributed sandwiches to slot leaders).
pub const ATTRIB_SCHEDULE_BUILDS: &str = "attrib.schedule.builds";

/// Counter: sealed sandwiches joined to their slot leader during an
/// index build (the attribution join).
pub const ATTRIB_JOINS: &str = "attrib.joins";

/// Counter: sealed sandwiches with **no** leader attribution (the store
/// predates the validator spec, or a ref was folded from a pre-attribution
/// base index). These rows fall back to the unattributed decode path.
pub const ATTRIB_UNATTRIBUTED: &str = "attrib.unattributed_slots";

/// Counter: incremental folds refused because the persisted base index
/// was built under a different (or missing) validator spec than the
/// manifest now carries — the service rebuilds from segments instead of
/// folding attribution-stale rows forward.
pub const ATTRIB_SPEC_MISMATCH_REBUILDS: &str = "attrib.spec_mismatch_rebuilds";

/// Counter: `/api/validators` leaderboard requests served.
pub const QUERY_VALIDATORS_REQUESTS: &str = "query.validators.requests";

/// Counter: `/api/validator/{pubkey}` detail requests served.
pub const QUERY_VALIDATOR_DETAIL_REQUESTS: &str = "query.validators.detail_requests";
