//! Well-known metric names for the storage and scan layers.
//!
//! Layers that share a registry must agree on names; most of the stack
//! uses ad-hoc string literals scoped to one module, but the store/scan
//! metrics are recorded from `sandwich-core` and asserted by the suite and
//! the benchmarks, so the names live here as constants.

/// Counter: segments sealed by the collector's store sink.
pub const STORE_SEGMENTS_SEALED: &str = "store.segments_sealed";

/// Counter: bytes of sealed segment files written (manifest excluded).
pub const STORE_BYTES_WRITTEN: &str = "store.bytes_written";

/// Counter: segments read and folded by scans (batch or streaming).
pub const SCAN_SEGMENTS_SCANNED: &str = "scan.segments_scanned";

/// Histogram: per-worker busy time inside one parallel scan, seconds.
pub const SCAN_WORKER_BUSY_SECONDS: &str = "scan.worker_busy_seconds";

/// Histogram: wall-clock duration of one whole parallel scan, seconds.
pub const SCAN_SECONDS: &str = "scan.seconds";

/// Counter: streaming partials folded as segments sealed mid-run.
pub const SCAN_PARTIALS_EMITTED: &str = "scan.partials_emitted";

/// Gauge: sandwiches detected so far by the streaming scan.
pub const SCAN_STREAMING_SANDWICHES: &str = "scan.streaming_sandwiches";

/// Counter: findings matched to a labeled sandwich by the conformance join.
pub const CONFORMANCE_TRUE_POSITIVES: &str = "conformance.true_positives";

/// Counter: findings whose label was not a sandwich (or missing).
pub const CONFORMANCE_FALSE_POSITIVES: &str = "conformance.false_positives";

/// Counter: labeled, detectable sandwiches the analysis did not find.
pub const CONFORMANCE_FALSE_NEGATIVES: &str = "conformance.false_negatives";

/// Counter: labeled near-miss bundles scored by the conformance join.
pub const CONFORMANCE_NEAR_MISSES_SCORED: &str = "conformance.near_misses_scored";

/// Counter: near-miss bundles wrongly flagged by the full detector.
pub const CONFORMANCE_NEAR_MISSES_FLAGGED: &str = "conformance.near_misses_flagged";
