//! Process-local observability: named counters, gauges, and fixed-bucket
//! histograms behind a cheap-to-clone [`Registry`].
//!
//! Every layer of the measurement stack (HTTP service, collector, block
//! engine, bank, sim driver) records into a shared registry; the explorer's
//! `GET /metrics` endpoint and the figure binaries render the same
//! [`Snapshot`]. The crate deliberately has no external dependencies beyond
//! the workspace lock shim: metric hot paths are single atomic RMW
//! operations, and registration is a once-per-name lock acquisition.
//!
//! # Example
//!
//! ```
//! use sandwich_obs::Registry;
//!
//! let registry = Registry::new();
//! registry.counter("demo.requests").inc();
//! let latency = registry.histogram("demo.latency_seconds");
//! {
//!     let _timer = latency.start_timer(); // observes on drop
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo.requests"), Some(1));
//! ```

mod counter;
mod histogram;
pub mod names;
mod registry;
mod render;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, SpanTimer, DEFAULT_LATENCY_BUCKETS};
pub use registry::{HistogramSnapshot, Registry, Snapshot};
