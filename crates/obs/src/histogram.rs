//! Fixed-bucket histograms and the drop-to-observe span timer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default bucket upper bounds for latencies measured in seconds: 100µs up
/// to 10s, roughly ×2.5 apart. Matches the scales in play here — in-process
/// HTTP round trips at the bottom, multi-slot collector polls at the top.
pub const DEFAULT_LATENCY_BUCKETS: [f64; 12] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 0.5, 2.5, 10.0,
];

/// A histogram with fixed bucket upper bounds plus an implicit `+Inf`
/// overflow bucket. Observation is two relaxed atomic adds and one
/// compare-exchange loop (for the running sum); percentiles are estimated at
/// snapshot time by linear interpolation inside the target bucket.
#[derive(Debug)]
pub struct Histogram {
    /// Finite upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Total observation count.
    count: AtomicU64,
    /// Running sum, stored as `f64` bits.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given finite bucket bounds (must be strictly
    /// increasing and non-empty).
    pub fn with_buckets(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram buckets must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// A histogram with [`DEFAULT_LATENCY_BUCKETS`].
    pub fn latency() -> Self {
        Self::with_buckets(&DEFAULT_LATENCY_BUCKETS)
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts including the trailing overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from bucket counts.
    ///
    /// Within the target bucket the estimate interpolates linearly between
    /// the bucket's bounds; observations in the overflow bucket clamp to the
    /// largest finite bound (the histogram cannot see past it). Returns 0.0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let next = cumulative + c;
            if rank <= next as f64 || i == counts.len() - 1 {
                if i >= self.bounds.len() {
                    // Overflow bucket: the best we can say is "at least the
                    // largest finite bound".
                    return *self.bounds.last().unwrap();
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                if c == 0 {
                    return upper;
                }
                let within = (rank - cumulative as f64) / c as f64;
                return lower + within.clamp(0.0, 1.0) * (upper - lower);
            }
            cumulative = next;
        }
        *self.bounds.last().unwrap()
    }

    /// Start a timer that observes its elapsed seconds when dropped.
    pub fn start_timer(self: &Arc<Self>) -> SpanTimer {
        SpanTimer {
            histogram: Arc::clone(self),
            started: Instant::now(),
            armed: true,
        }
    }
}

/// Times a span of work and records the elapsed seconds into its histogram
/// on drop, so early returns and `?` propagation are still measured.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Arc<Histogram>,
    started: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Observe now and return the elapsed seconds; the drop no longer fires.
    pub fn stop(mut self) -> f64 {
        let elapsed = self.started.elapsed().as_secs_f64();
        self.histogram.observe(elapsed);
        self.armed = false;
        elapsed
    }

    /// Drop without recording anything.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.observe(self.started.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::with_buckets(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        // `<=` bound semantics: 1.0 goes in the first bucket.
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let h = Histogram::with_buckets(&[10.0, 20.0, 40.0]);
        for _ in 0..50 {
            h.observe(5.0); // first bucket
        }
        for _ in 0..50 {
            h.observe(15.0); // second bucket
        }
        let p50 = h.quantile(0.5);
        assert!((0.0..=10.0).contains(&p50), "p50 was {p50}");
        let p99 = h.quantile(0.99);
        assert!((10.0..=20.0).contains(&p99), "p99 was {p99}");
        // Everything beyond the last bound clamps to it.
        let h = Histogram::with_buckets(&[1.0, 2.0]);
        h.observe(1e9);
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::latency();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::latency();
        let mut v = 0.00005;
        for _ in 0..200 {
            h.observe(v);
            v *= 1.07;
        }
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = h.quantile(q);
            assert!(est >= prev, "quantile({q}) = {est} < {prev}");
            prev = est;
        }
    }

    #[test]
    fn span_timer_observes_on_drop_and_stop() {
        let h = Arc::new(Histogram::latency());
        {
            let _t = h.start_timer();
        }
        let elapsed = h.start_timer().stop();
        assert!(elapsed >= 0.0);
        h.start_timer().discard();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn concurrent_observations_preserve_count() {
        let h = Arc::new(Histogram::with_buckets(&[0.5]));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        h.observe(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 20_000);
        assert!((h.sum() - 20_000.0).abs() < 1e-6);
    }
}
