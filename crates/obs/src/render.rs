//! Text renderings of a [`Snapshot`]: Prometheus exposition format and a
//! plain JSON object. Both are hand-rolled so the crate stays free of
//! serialization dependencies; metric names are dot-separated identifiers,
//! so escaping needs are minimal.

use std::fmt::Write;

use crate::registry::Snapshot;

impl Snapshot {
    /// Prometheus text exposition format. Dots and dashes in metric names
    /// become underscores to satisfy the `[a-zA-Z_][a-zA-Z0-9_]*` rule.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for &(bound, count) in &h.buckets {
                cumulative += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cumulative}", fmt_f64(bound));
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", fmt_f64(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }

    /// A JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count, sum,
    /// p50, p95, p99}}}`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_string(name),
                h.count,
                fmt_f64(h.sum),
                fmt_f64(h.p50),
                fmt_f64(h.p95),
                fmt_f64(h.p99)
            );
        }
        out.push_str("}}");
        out
    }
}

/// Sanitize a dot-separated metric name into a Prometheus identifier.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// JSON-quote a metric name (names are ASCII identifiers, but stay safe).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats in a JSON-compatible spelling (`1.0`, not `1`).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let r = Registry::new();
        r.counter("http.requests").add(3);
        let h = r.histogram_with_buckets("http.latency", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(99.0);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE http_requests counter"));
        assert!(text.contains("http_requests 3"));
        assert!(text.contains("http_latency_bucket{le=\"1.0\"} 1"));
        assert!(text.contains("http_latency_bucket{le=\"2.0\"} 2"));
        assert!(text.contains("http_latency_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("http_latency_count 3"));
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(-2);
        r.histogram("h").observe(0.001);
        let json = r.snapshot().to_json_string();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"c\":1"));
        assert!(json.contains("\"g\":-2"));
        assert!(json.contains("\"count\":1"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Registry::new().snapshot();
        assert_eq!(
            snap.to_json_string(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(snap.to_prometheus_text(), "");
    }
}
