//! The simulated Jito Explorer: the undocumented HTTP API the paper
//! reverse-engineered, serving recent-bundle pages and batched transaction
//! details over a real TCP socket, with page caps, rate limiting, and
//! transient-fault injection.

#![warn(missing_docs)]

pub mod api;
pub mod faults;
pub mod service;
pub mod store;

pub use api::{
    BundleSummaryJson, RecentBundlesResponse, SolDeltaJson, TipPercentilesResponse, TokenDeltaJson,
    TxDetailJson, TxDetailsRequest, TxDetailsResponse,
};
pub use faults::{BurstConfig, FaultDecision, FaultPlan, FaultPlanConfig, LatencyConfig};
pub use service::{Explorer, ExplorerConfig};
pub use store::{BundleSummary, HistoryStore, RetentionPolicy, TxDetail};
