//! Deterministic, seeded fault-injection plan for the explorer service.
//!
//! Replaces the old single `transient_failure_rate` knob with the failure
//! modes a long-running collector actually meets: scheduled hard outages
//! (connection dropped before a byte is written), correlated 503 bursts
//! from a two-state (good/bad) Markov process, added latency, stalled
//! responses (headers sent, body never arrives), truncated and corrupt
//! JSON bodies, and 429s carrying `Retry-After`.
//!
//! Every decision is a pure function of `(seed, time bucket, request
//! ordinal within the bucket)`, where time is the *simulated* clock the
//! pipeline drives via `set_now_ms`. Two consequences matter:
//!
//! 1. Reruns of the same scenario see the same faults — the chaos matrix
//!    is reproducible.
//! 2. A collector resumed from a checkpoint replays the identical fault
//!    sequence for the ticks it re-polls, because each tick starts its
//!    bucket's ordinal count at zero in both runs.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sandwich_obs::{Counter, Registry};

/// Correlated-failure (two-state Markov) burst parameters.
///
/// The chain is advanced once per time bucket: in the good state it enters
/// the bad state with probability `enter`; in the bad state it exits with
/// probability `exit`. While bad, each request is 503'd with probability
/// `fail_rate` — failures cluster the way real backend incidents do.
#[derive(Clone, Copy, Debug)]
pub struct BurstConfig {
    /// Per-bucket probability of entering the bad state.
    pub enter: f64,
    /// Per-bucket probability of leaving the bad state.
    pub exit: f64,
    /// Per-request 503 probability while the chain is in the bad state.
    pub fail_rate: f64,
}

/// Latency-injection parameters (wall-clock, applied before serving).
#[derive(Clone, Copy, Debug)]
pub struct LatencyConfig {
    /// Fraction of requests that get extra latency.
    pub rate: f64,
    /// Minimum injected delay, milliseconds.
    pub min_ms: u64,
    /// Maximum injected delay, milliseconds.
    pub max_ms: u64,
}

/// The full fault plan. The default injects nothing.
#[derive(Clone, Debug)]
pub struct FaultPlanConfig {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Width of the decision bucket in simulated milliseconds. Must be no
    /// larger than the pipeline's tick so each polling epoch lands in its
    /// own bucket.
    pub bucket_ms: u64,
    /// Hard-outage windows `[start_ms, end_ms)` on the simulated clock;
    /// inside one, every connection is dropped without a response byte.
    pub outages_ms: Vec<(u64, u64)>,
    /// Correlated 503 bursts.
    pub burst: Option<BurstConfig>,
    /// Uncorrelated per-request 503s (the old `transient_failure_rate`).
    pub uniform_503_rate: f64,
    /// Fraction of requests answered 429 with a `Retry-After` pacing hint.
    pub rate_429: f64,
    /// Pacing hint carried by injected 429s, milliseconds.
    pub retry_after_ms: u64,
    /// Fraction of responses whose headers are sent but whose body never
    /// arrives (only a client deadline recovers).
    pub stall_rate: f64,
    /// Fraction of responses cut off mid-body (client sees EOF).
    pub truncate_rate: f64,
    /// Fraction of responses whose JSON body is corrupted (parses as
    /// garbage; a permanent, non-retryable client error).
    pub corrupt_rate: f64,
    /// Latency injection.
    pub latency: Option<LatencyConfig>,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            seed: 7,
            bucket_ms: 60_000,
            outages_ms: Vec::new(),
            burst: None,
            uniform_503_rate: 0.0,
            rate_429: 0.0,
            retry_after_ms: 250,
            stall_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            latency: None,
        }
    }
}

impl FaultPlanConfig {
    /// A plan with only the legacy uniform 503 knob set (what the old
    /// `transient_failure_rate` field expressed).
    pub fn uniform_503(rate: f64, seed: u64) -> Self {
        FaultPlanConfig {
            uniform_503_rate: rate,
            seed,
            ..FaultPlanConfig::default()
        }
    }

    /// True when `now_ms` falls inside a scheduled outage window.
    pub fn in_outage(&self, now_ms: u64) -> bool {
        self.outages_ms
            .iter()
            .any(|&(start, end)| now_ms >= start && now_ms < end)
    }
}

/// What the plan decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Serve normally, optionally after an injected delay (wall-clock ms).
    Serve {
        /// Injected latency before handling, milliseconds (0 = none).
        latency_ms: u64,
    },
    /// Drop the connection without writing anything (hard outage).
    Outage,
    /// Reject with a correlated-burst 503.
    Burst503,
    /// Reject with an uncorrelated 503.
    Uniform503,
    /// Reject with 429 + `Retry-After`.
    RateLimit429,
    /// Send headers, never the body.
    Stall,
    /// Cut the body off mid-write.
    Truncate,
    /// Serve a corrupted JSON body.
    Corrupt,
}

/// Cached counter handles, one per injected fault type
/// (`faults.injected.*`).
struct FaultMetrics {
    outage: Arc<Counter>,
    burst_503: Arc<Counter>,
    uniform_503: Arc<Counter>,
    rate_429: Arc<Counter>,
    stall: Arc<Counter>,
    truncate: Arc<Counter>,
    corrupt: Arc<Counter>,
    latency: Arc<Counter>,
}

impl FaultMetrics {
    fn new(registry: &Registry) -> Self {
        FaultMetrics {
            outage: registry.counter("faults.injected.outage"),
            burst_503: registry.counter("faults.injected.burst_503"),
            uniform_503: registry.counter("faults.injected.uniform_503"),
            rate_429: registry.counter("faults.injected.rate_429"),
            stall: registry.counter("faults.injected.stall"),
            truncate: registry.counter("faults.injected.truncate"),
            corrupt: registry.counter("faults.injected.corrupt"),
            latency: registry.counter("faults.injected.latency"),
        }
    }
}

/// Per-bucket mutable state: the Markov chain position and the request
/// ordinal, both advanced deterministically.
struct PlanState {
    /// Bucket the Markov chain has been advanced to (exclusive).
    chain_bucket: u64,
    /// Whether the chain is currently in the bad state.
    chain_bad: bool,
    /// Bucket the ordinal counter belongs to.
    ordinal_bucket: u64,
    /// Requests seen so far in `ordinal_bucket`.
    ordinal: u64,
}

/// The live fault plan the service consults once per request.
pub struct FaultPlan {
    config: FaultPlanConfig,
    state: Mutex<PlanState>,
    metrics: FaultMetrics,
}

fn mix(seed: u64, bucket: u64, ordinal: u64, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    (seed, bucket, ordinal, salt).hash(&mut h);
    h.finish()
}

impl FaultPlan {
    /// A plan recording its injections into `registry`.
    pub fn new(config: FaultPlanConfig, registry: &Registry) -> Self {
        FaultPlan {
            state: Mutex::new(PlanState {
                chain_bucket: 0,
                chain_bad: false,
                ordinal_bucket: 0,
                ordinal: 0,
            }),
            metrics: FaultMetrics::new(registry),
            config,
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    /// Decide the fate of one request arriving at simulated time `now_ms`.
    pub fn decide(&self, now_ms: u64) -> FaultDecision {
        if self.config.in_outage(now_ms) {
            self.metrics.outage.inc();
            return FaultDecision::Outage;
        }

        let bucket = now_ms / self.config.bucket_ms.max(1);
        let (ordinal, burst_bad) = {
            let mut st = self.state.lock();
            if st.ordinal_bucket != bucket {
                st.ordinal_bucket = bucket;
                st.ordinal = 0;
            }
            let ordinal = st.ordinal;
            st.ordinal += 1;
            let bad = self.advance_chain(&mut st, bucket);
            (ordinal, bad)
        };

        let mut rng = StdRng::seed_from_u64(mix(self.config.seed, bucket, ordinal, 0x0dec1de));
        if let Some(burst) = &self.config.burst {
            if burst_bad && rng.gen_bool(burst.fail_rate.clamp(0.0, 1.0)) {
                self.metrics.burst_503.inc();
                return FaultDecision::Burst503;
            }
        }
        if roll(&mut rng, self.config.uniform_503_rate) {
            self.metrics.uniform_503.inc();
            return FaultDecision::Uniform503;
        }
        if roll(&mut rng, self.config.rate_429) {
            self.metrics.rate_429.inc();
            return FaultDecision::RateLimit429;
        }
        if roll(&mut rng, self.config.stall_rate) {
            self.metrics.stall.inc();
            return FaultDecision::Stall;
        }
        if roll(&mut rng, self.config.truncate_rate) {
            self.metrics.truncate.inc();
            return FaultDecision::Truncate;
        }
        if roll(&mut rng, self.config.corrupt_rate) {
            self.metrics.corrupt.inc();
            return FaultDecision::Corrupt;
        }
        if let Some(lat) = &self.config.latency {
            if roll(&mut rng, lat.rate) {
                self.metrics.latency.inc();
                let hi = lat.max_ms.max(lat.min_ms);
                let ms = if hi > lat.min_ms {
                    rng.gen_range(lat.min_ms..hi + 1)
                } else {
                    lat.min_ms
                };
                return FaultDecision::Serve { latency_ms: ms };
            }
        }
        FaultDecision::Serve { latency_ms: 0 }
    }

    /// Advance the Markov chain up to `bucket` (inclusive) and report its
    /// state there. Transitions depend only on (seed, bucket), never on
    /// request count, so the trajectory is identical across reruns.
    fn advance_chain(&self, st: &mut PlanState, bucket: u64) -> bool {
        let Some(burst) = &self.config.burst else {
            return false;
        };
        while st.chain_bucket <= bucket {
            let mut rng =
                StdRng::seed_from_u64(mix(self.config.seed, st.chain_bucket, 0, 0x0b00_57ed));
            let p: f64 = rng.gen();
            st.chain_bad = if st.chain_bad {
                p >= burst.exit.clamp(0.0, 1.0)
            } else {
                p < burst.enter.clamp(0.0, 1.0)
            };
            st.chain_bucket += 1;
        }
        st.chain_bad
    }
}

fn roll(rng: &mut StdRng, rate: f64) -> bool {
    rate > 0.0 && rng.gen_bool(rate.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(plan: &FaultPlan, now_ms: u64, n: u64, pred: impl Fn(FaultDecision) -> bool) -> u64 {
        (0..n).filter(|_| pred(plan.decide(now_ms))).count() as u64
    }

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::new(FaultPlanConfig::default(), &Registry::new());
        for t in [0, 1_000, 86_400_000] {
            assert_eq!(plan.decide(t), FaultDecision::Serve { latency_ms: 0 });
        }
    }

    #[test]
    fn outage_windows_drop_everything() {
        let config = FaultPlanConfig {
            outages_ms: vec![(1_000, 2_000)],
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::new(config, &Registry::new());
        assert_eq!(plan.decide(999), FaultDecision::Serve { latency_ms: 0 });
        assert_eq!(plan.decide(1_000), FaultDecision::Outage);
        assert_eq!(plan.decide(1_999), FaultDecision::Outage);
        assert_eq!(plan.decide(2_000), FaultDecision::Serve { latency_ms: 0 });
    }

    #[test]
    fn decisions_are_deterministic_per_bucket_and_ordinal() {
        let config = FaultPlanConfig {
            uniform_503_rate: 0.5,
            ..FaultPlanConfig::default()
        };
        let a = FaultPlan::new(config.clone(), &Registry::new());
        let b = FaultPlan::new(config, &Registry::new());
        // Same request sequence → identical decisions.
        let seq_a: Vec<_> = (0..50).map(|i| a.decide(i * 61_000)).collect();
        let seq_b: Vec<_> = (0..50).map(|i| b.decide(i * 61_000)).collect();
        assert_eq!(seq_a, seq_b);
        // Both outcomes occur.
        assert!(seq_a.contains(&FaultDecision::Uniform503));
        assert!(seq_a.contains(&FaultDecision::Serve { latency_ms: 0 }));
    }

    #[test]
    fn burst_states_cluster_failures() {
        let config = FaultPlanConfig {
            burst: Some(BurstConfig {
                enter: 0.3,
                exit: 0.3,
                fail_rate: 1.0,
            }),
            bucket_ms: 1_000,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::new(config, &Registry::new());
        // With fail_rate 1.0, a bucket either fails every request or none:
        // failures are perfectly correlated within a bucket.
        let mut bad_buckets = 0;
        for bucket in 0..200u64 {
            let now = bucket * 1_000;
            let fails = count(&plan, now, 5, |d| d == FaultDecision::Burst503);
            assert!(fails == 0 || fails == 5, "bucket {bucket}: {fails}/5");
            if fails == 5 {
                bad_buckets += 1;
            }
        }
        assert!(
            bad_buckets > 10 && bad_buckets < 190,
            "chain never mixed: {bad_buckets}"
        );
    }

    #[test]
    fn chain_state_is_independent_of_request_volume() {
        let config = FaultPlanConfig {
            burst: Some(BurstConfig {
                enter: 0.4,
                exit: 0.4,
                fail_rate: 1.0,
            }),
            bucket_ms: 1_000,
            ..FaultPlanConfig::default()
        };
        // Plan A sees every bucket; plan B skips straight to bucket 120.
        let a = FaultPlan::new(config.clone(), &Registry::new());
        let b = FaultPlan::new(config, &Registry::new());
        for bucket in 0..=120u64 {
            a.decide(bucket * 1_000);
        }
        assert_eq!(a.decide(120_500), b.decide(120_500));
    }

    #[test]
    fn injected_faults_are_counted() {
        let registry = Registry::new();
        let config = FaultPlanConfig {
            uniform_503_rate: 1.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::new(config, &registry);
        for _ in 0..4 {
            plan.decide(0);
        }
        assert_eq!(
            registry.snapshot().counter("faults.injected.uniform_503"),
            Some(4)
        );
    }
}
