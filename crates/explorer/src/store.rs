//! The explorer's history store.
//!
//! Mirrors what the real Jito Explorer backend evidently keeps: per-bundle
//! summaries (bundle id, transaction ids, tip — "it does not provide the
//! full content of included transactions", paper §3.1) plus a
//! transaction-detail index served by a second endpoint.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sandwich_jito::{LandedBundle, SlotResult};
use sandwich_ledger::{TransactionId, TransactionMeta};
use sandwich_types::{Lamports, Slot, SlotClock};

use crate::api::BundleSummaryJson;

/// Which transactions keep full details in memory.
///
/// The real backend has everything; a 120-day simulated run bounds memory by
/// keeping details only where the paper's collector ever asks (length-3
/// bundles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetentionPolicy {
    /// Keep details for every bundled transaction.
    All,
    /// Keep details only for bundles of exactly this length.
    OnlyBundleLength(usize),
    /// Keep details for bundles whose length is in this set (extended
    /// lower-bound analysis fetches lengths 3–5).
    BundleLengths(&'static [usize]),
}

/// A stored per-bundle summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BundleSummary {
    /// The bundle id.
    pub bundle_id: sandwich_jito::BundleId,
    /// Slot it landed in.
    pub slot: Slot,
    /// Realized tip.
    pub tip: Lamports,
    /// Transaction ids in bundle order.
    pub tx_ids: Vec<TransactionId>,
}

/// Full detail for one bundled transaction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxDetail {
    /// The bundle the transaction landed in.
    pub bundle_id: sandwich_jito::BundleId,
    /// Landing slot.
    pub slot: Slot,
    /// Execution metadata (signer, fees, balance deltas).
    pub meta: TransactionMeta,
}

/// In-memory history of everything that landed through the block engine.
pub struct HistoryStore {
    clock: SlotClock,
    retention: RetentionPolicy,
    bundles: Vec<BundleSummary>,
    details: HashMap<TransactionId, TxDetail>,
}

impl HistoryStore {
    /// An empty store.
    pub fn new(clock: SlotClock, retention: RetentionPolicy) -> Self {
        HistoryStore {
            clock,
            retention,
            bundles: Vec::new(),
            details: HashMap::new(),
        }
    }

    /// The store's clock (slot → wall time).
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// Ingest one produced slot.
    pub fn record_slot(&mut self, result: &SlotResult) {
        for bundle in &result.bundles {
            self.record_bundle(bundle);
        }
    }

    /// Ingest one landed bundle.
    pub fn record_bundle(&mut self, bundle: &LandedBundle) {
        let keep_details = match self.retention {
            RetentionPolicy::All => true,
            RetentionPolicy::OnlyBundleLength(n) => bundle.len() == n,
            RetentionPolicy::BundleLengths(lens) => lens.contains(&bundle.len()),
        };
        if keep_details {
            for meta in &bundle.metas {
                self.details.insert(
                    meta.tx_id,
                    TxDetail {
                        bundle_id: bundle.bundle_id,
                        slot: bundle.slot,
                        meta: meta.clone(),
                    },
                );
            }
        }
        self.bundles.push(BundleSummary {
            bundle_id: bundle.bundle_id,
            slot: bundle.slot,
            tip: bundle.tip,
            tx_ids: bundle.metas.iter().map(|m| m.tx_id).collect(),
        });
    }

    /// Total bundles ever recorded (ground truth for completeness checks).
    pub fn total_bundles(&self) -> usize {
        self.bundles.len()
    }

    /// The most recent `limit` bundles, newest first — the shape of the
    /// explorer's recent-bundles endpoint.
    pub fn recent(&self, limit: usize) -> Vec<BundleSummaryJson> {
        self.bundles
            .iter()
            .rev()
            .take(limit)
            .map(|b| BundleSummaryJson::from_summary(b, &self.clock))
            .collect()
    }

    /// Like [`HistoryStore::recent`], but only bundles that landed strictly
    /// before `before_slot` — the cursor the collector's backfill uses to
    /// page deeper after a missed epoch.
    pub fn recent_before(&self, before_slot: u64, limit: usize) -> Vec<BundleSummaryJson> {
        self.bundles
            .iter()
            .rev()
            .filter(|b| b.slot.0 < before_slot)
            .take(limit)
            .map(|b| BundleSummaryJson::from_summary(b, &self.clock))
            .collect()
    }

    /// Look up details for a batch of transaction ids (None where the
    /// transaction is unknown or details were not retained).
    pub fn details_for(&self, ids: &[TransactionId]) -> Vec<Option<TxDetail>> {
        ids.iter().map(|id| self.details.get(id).cloned()).collect()
    }

    /// Average per-slot 95th-percentile tip over the most recent bundles —
    /// the figure Jito's public dashboard reports (paper §3.3).
    pub fn p95_tip_recent(&self, sample: usize) -> Lamports {
        let mut by_slot: HashMap<Slot, Vec<u64>> = HashMap::new();
        for b in self.bundles.iter().rev().take(sample) {
            by_slot.entry(b.slot).or_default().push(b.tip.0);
        }
        if by_slot.is_empty() {
            return Lamports::ZERO;
        }
        let mut sum = 0u128;
        let n = by_slot.len() as u128;
        for (_, mut tips) in by_slot {
            tips.sort_unstable();
            let idx = ((tips.len() as f64 - 1.0) * 0.95).round() as usize;
            sum += tips[idx] as u128;
        }
        Lamports((sum / n) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::Hash;

    fn meta(label: &str, n: u64) -> TransactionMeta {
        let kp = sandwich_types::Keypair::from_label(label);
        TransactionMeta {
            tx_id: kp.sign(&n.to_le_bytes()),
            signer: kp.pubkey(),
            fee: Lamports(5_000),
            priority_fee: Lamports::ZERO,
            success: true,
            error: None,
            sol_deltas: vec![],
            token_deltas: vec![],
        }
    }

    fn landed(len: usize, slot: u64, tip: u64, seed: u64) -> LandedBundle {
        LandedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            tip: Lamports(tip),
            metas: (0..len).map(|i| meta("m", seed * 100 + i as u64)).collect(),
        }
    }

    fn store() -> HistoryStore {
        HistoryStore::new(SlotClock::default(), RetentionPolicy::All)
    }

    #[test]
    fn recent_is_newest_first_and_limited() {
        let mut s = store();
        for i in 0..10 {
            s.record_bundle(&landed(1, i, 1_000, i));
        }
        let recent = s.recent(3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].slot, 9);
        assert_eq!(recent[2].slot, 7);
        assert_eq!(s.total_bundles(), 10);
    }

    #[test]
    fn details_respect_retention() {
        let mut s = HistoryStore::new(SlotClock::default(), RetentionPolicy::OnlyBundleLength(3));
        let b1 = landed(1, 1, 1_000, 1);
        let b3 = landed(3, 2, 1_000, 2);
        s.record_bundle(&b1);
        s.record_bundle(&b3);
        let got = s.details_for(&[b1.metas[0].tx_id, b3.metas[0].tx_id, b3.metas[2].tx_id]);
        assert!(got[0].is_none(), "len-1 detail not retained");
        assert!(got[1].is_some());
        assert!(got[2].is_some());
        assert_eq!(got[1].as_ref().unwrap().bundle_id, b3.bundle_id);
    }

    #[test]
    fn recent_before_pages_behind_a_cursor() {
        let mut s = store();
        for i in 0..10 {
            s.record_bundle(&landed(1, i, 1_000, i));
        }
        let page = s.recent_before(7, 3);
        assert_eq!(page.len(), 3);
        assert_eq!(page[0].slot, 6, "newest strictly before the cursor");
        assert_eq!(page[2].slot, 4);
        assert!(s.recent_before(0, 3).is_empty());
    }

    #[test]
    fn unknown_ids_come_back_none() {
        let s = store();
        let fake = sandwich_types::Keypair::from_label("x").sign(b"unknown");
        assert_eq!(s.details_for(&[fake]).len(), 1);
        assert!(s.details_for(&[fake])[0].is_none());
    }

    #[test]
    fn p95_tip_over_slots() {
        let mut s = store();
        // One slot with tips 1..100 → p95 ≈ 95.
        for i in 0..100u64 {
            s.record_bundle(&landed(1, 7, i + 1, i));
        }
        let p95 = s.p95_tip_recent(1_000);
        assert!((90..=100).contains(&p95.0), "p95 = {}", p95.0);
    }

    #[test]
    fn empty_store_p95_is_zero() {
        assert_eq!(store().p95_tip_recent(100), Lamports::ZERO);
    }
}
