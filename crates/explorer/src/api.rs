//! Wire types of the (reverse-engineered) explorer API.
//!
//! The paper isolated two undocumented endpoints: one returning the most
//! recent N bundles, one returning detailed data for batches of
//! transactions (§3.1). These JSON shapes are this reproduction's version
//! of that contract; the collector in `sandwich-core` speaks exactly this.
//!
//! Ground-truth labels (the simulator's `LabelBook`) deliberately never
//! appear here: the measurement pipeline must work from exactly what the
//! real explorer exposes, and the conformance oracle joins labels back by
//! bundle id only *after* analysis. A test below pins that blindness.

use serde::{Deserialize, Serialize};

use sandwich_ledger::{TransactionId, TransactionMeta};
use sandwich_types::{Lamports, Pubkey, Slot, SlotClock};

use crate::store::{BundleSummary, TxDetail};

/// One bundle in the recent-bundles page.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct BundleSummaryJson {
    /// The bundle id.
    pub bundle_id: sandwich_jito::BundleId,
    /// Landing slot.
    pub slot: u64,
    /// Wall-clock landing time (unix ms).
    pub timestamp_ms: u64,
    /// Realized tip in lamports.
    pub tip_lamports: u64,
    /// Transaction ids in bundle order.
    pub transactions: Vec<TransactionId>,
}

impl BundleSummaryJson {
    /// Render a stored summary onto the wire.
    pub fn from_summary(b: &BundleSummary, clock: &SlotClock) -> Self {
        BundleSummaryJson {
            bundle_id: b.bundle_id,
            slot: b.slot.0,
            timestamp_ms: clock.unix_ms(b.slot),
            tip_lamports: b.tip.0,
            transactions: b.tx_ids.clone(),
        }
    }

    /// Number of transactions bundled.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Bundles are never empty.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Typed tip.
    pub fn tip(&self) -> Lamports {
        Lamports(self.tip_lamports)
    }
}

/// Response of `GET /api/v1/bundles`.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct RecentBundlesResponse {
    /// Newest-first page of bundles.
    pub bundles: Vec<BundleSummaryJson>,
}

/// Request body of `POST /api/v1/transactions`.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct TxDetailsRequest {
    /// Transaction ids to resolve (capped server-side).
    pub tx_ids: Vec<TransactionId>,
}

/// One SOL balance change on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct SolDeltaJson {
    /// The account.
    pub account: Pubkey,
    /// Signed lamport change.
    pub delta: i64,
}

/// One token balance change on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct TokenDeltaJson {
    /// The owning wallet.
    pub owner: Pubkey,
    /// The mint.
    pub mint: Pubkey,
    /// Signed raw-unit change.
    pub delta: i128,
}

/// Full transaction detail on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct TxDetailJson {
    /// The transaction id.
    pub tx_id: TransactionId,
    /// Bundle it landed in.
    pub bundle_id: sandwich_jito::BundleId,
    /// Landing slot.
    pub slot: u64,
    /// Fee-paying signer.
    pub signer: Pubkey,
    /// Total fee in lamports.
    pub fee_lamports: u64,
    /// Priority-fee component.
    pub priority_fee_lamports: u64,
    /// Whether execution succeeded.
    pub success: bool,
    /// SOL balance changes.
    pub sol_deltas: Vec<SolDeltaJson>,
    /// Token balance changes.
    pub token_deltas: Vec<TokenDeltaJson>,
}

impl TxDetailJson {
    /// Render stored detail onto the wire.
    pub fn from_detail(d: &TxDetail) -> Self {
        TxDetailJson {
            tx_id: d.meta.tx_id,
            bundle_id: d.bundle_id,
            slot: d.slot.0,
            signer: d.meta.signer,
            fee_lamports: d.meta.fee.0,
            priority_fee_lamports: d.meta.priority_fee.0,
            success: d.meta.success,
            sol_deltas: d
                .meta
                .sol_deltas
                .iter()
                .map(|s| SolDeltaJson {
                    account: s.account,
                    delta: s.delta.0,
                })
                .collect(),
            token_deltas: d
                .meta
                .token_deltas
                .iter()
                .map(|t| TokenDeltaJson {
                    owner: t.owner,
                    mint: t.mint,
                    delta: t.delta,
                })
                .collect(),
        }
    }

    /// Reconstruct the execution meta the analysis side works with.
    pub fn to_meta(&self) -> TransactionMeta {
        TransactionMeta {
            tx_id: self.tx_id,
            signer: self.signer,
            fee: Lamports(self.fee_lamports),
            priority_fee: Lamports(self.priority_fee_lamports),
            success: self.success,
            error: None,
            sol_deltas: self
                .sol_deltas
                .iter()
                .map(|s| sandwich_ledger::SolDelta {
                    account: s.account,
                    delta: sandwich_types::LamportDelta(s.delta),
                })
                .collect(),
            token_deltas: self
                .token_deltas
                .iter()
                .map(|t| sandwich_ledger::TokenDelta {
                    owner: t.owner,
                    mint: t.mint,
                    delta: t.delta,
                })
                .collect(),
        }
    }

    /// Landing slot, typed.
    pub fn slot_typed(&self) -> Slot {
        Slot(self.slot)
    }
}

/// Response of `POST /api/v1/transactions`.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct TxDetailsResponse {
    /// Details aligned with the request order; `null` where unknown.
    pub transactions: Vec<Option<TxDetailJson>>,
}

/// Response of `GET /api/v1/tips/percentiles` (the "dashboard").
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct TipPercentilesResponse {
    /// Average per-slot 95th-percentile tip over the recent sample.
    pub p95_tip_lamports: u64,
    /// Bundles sampled.
    pub sample: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::Hash;

    #[test]
    fn detail_meta_roundtrip() {
        let kp = sandwich_types::Keypair::from_label("rt");
        let meta = TransactionMeta {
            tx_id: kp.sign(b"x"),
            signer: kp.pubkey(),
            fee: Lamports(5_500),
            priority_fee: Lamports(500),
            success: true,
            error: None,
            sol_deltas: vec![sandwich_ledger::SolDelta {
                account: kp.pubkey(),
                delta: sandwich_types::LamportDelta(-42),
            }],
            token_deltas: vec![sandwich_ledger::TokenDelta {
                owner: kp.pubkey(),
                mint: Pubkey::derive("m"),
                delta: 123_456_789_000,
            }],
        };
        let detail = TxDetail {
            bundle_id: Hash::digest(b"b"),
            slot: Slot(9),
            meta: meta.clone(),
        };
        let json = TxDetailJson::from_detail(&detail);
        let wire = serde_json::to_string(&json).unwrap();
        let back: TxDetailJson = serde_json::from_str(&wire).unwrap();
        assert_eq!(back.to_meta(), meta);
        assert_eq!(back.slot_typed(), Slot(9));
    }

    /// The wire contract is label-blind: ground truth must never leak to
    /// the collector, or the conformance oracle would be scoring the
    /// detector against information a real measurement cannot see.
    #[test]
    fn wire_carries_no_ground_truth_labels() {
        let summary = BundleSummaryJson {
            bundle_id: Hash::digest(b"b"),
            slot: 1,
            timestamp_ms: 2,
            tip_lamports: 3,
            transactions: vec![],
        };
        let wire = serde_json::to_string(&summary).unwrap();
        for field in ["label", "groundTruth", "sandwich", "nearMiss"] {
            assert!(!wire.contains(field), "label leak in {wire}");
        }
        let detail = TxDetailJson {
            tx_id: sandwich_types::Keypair::from_label("lb").sign(b"t"),
            bundle_id: Hash::digest(b"b"),
            slot: 1,
            signer: Pubkey::derive("s"),
            fee_lamports: 0,
            priority_fee_lamports: 0,
            success: true,
            sol_deltas: vec![],
            token_deltas: vec![],
        };
        let wire = serde_json::to_string(&detail).unwrap();
        for field in ["label", "groundTruth", "sandwich", "nearMiss"] {
            assert!(!wire.contains(field), "label leak in {wire}");
        }
    }

    #[test]
    fn wire_uses_camel_case() {
        let json = serde_json::to_string(&TipPercentilesResponse {
            p95_tip_lamports: 7,
            sample: 3,
        })
        .unwrap();
        assert!(json.contains("p95TipLamports"), "{json}");
    }
}
