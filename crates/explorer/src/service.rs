//! The explorer HTTP service: routing, page caps, rate limiting, and
//! plan-driven fault injection.
//!
//! The endpoint defaults mirror what the paper reverse-engineered: the
//! bundles page returns 200 by default and tops out at 50,000; detailed
//! transaction data is fetched in batches of at most 10,000 (§3.1). The
//! failure modes — outages, 503 bursts, latency, stalls, truncated and
//! corrupt bodies, 429s — come from the seeded [`FaultPlan`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use sandwich_net::{Method, Request, Response, Router, Server, TokenBucket, WireFault};
use sandwich_obs::{Counter, Histogram, Registry};

use crate::api::{
    RecentBundlesResponse, TipPercentilesResponse, TxDetailJson, TxDetailsRequest,
    TxDetailsResponse,
};
use crate::faults::{FaultDecision, FaultPlan, FaultPlanConfig};
use crate::store::HistoryStore;

/// Tunables for the explorer service.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Default page size of the bundles endpoint.
    pub default_page: usize,
    /// Maximum page size (the `limit` the paper raised from 200 to 50,000).
    pub max_page: usize,
    /// Maximum transaction ids per detail batch.
    pub max_tx_batch: usize,
    /// The fault-injection plan (replaces the old single
    /// `transient_failure_rate` knob).
    pub faults: FaultPlanConfig,
    /// Optional rate limit: (bucket capacity, refills per second).
    pub rate_limit: Option<(u32, f64)>,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            default_page: 200,
            max_page: 50_000,
            max_tx_batch: 10_000,
            faults: FaultPlanConfig::default(),
            rate_limit: None,
        }
    }
}

/// Cached metric handles for the request handlers (`explorer.` prefix).
struct ExplorerMetrics {
    bundles_requests: Arc<Counter>,
    transactions_requests: Arc<Counter>,
    percentiles_requests: Arc<Counter>,
    requests_rejected: Arc<Counter>,
    bundles_seconds: Arc<Histogram>,
    transactions_seconds: Arc<Histogram>,
    percentiles_seconds: Arc<Histogram>,
    page_size: Arc<Histogram>,
}

impl ExplorerMetrics {
    fn new(registry: &Registry) -> Self {
        ExplorerMetrics {
            bundles_requests: registry.counter("explorer.bundles_requests"),
            transactions_requests: registry.counter("explorer.transactions_requests"),
            percentiles_requests: registry.counter("explorer.percentiles_requests"),
            requests_rejected: registry.counter("explorer.requests_rejected"),
            bundles_seconds: registry.histogram("explorer.bundles_seconds"),
            transactions_seconds: registry.histogram("explorer.transactions_seconds"),
            percentiles_seconds: registry.histogram("explorer.percentiles_seconds"),
            page_size: registry.histogram_with_buckets(
                "explorer.page_size",
                &[1.0, 10.0, 50.0, 200.0, 1_000.0, 10_000.0, 50_000.0],
            ),
        }
    }
}

struct ServiceState {
    store: Arc<RwLock<HistoryStore>>,
    config: ExplorerConfig,
    limiter: Option<TokenBucket>,
    faults: FaultPlan,
    clock_ms: AtomicU64,
    requests_served: AtomicU64,
    metrics: ExplorerMetrics,
}

/// What `admit` decided for one request, after the rate limiter and the
/// fault plan both had their say.
enum Admission {
    /// Reject outright with this response (429 from the limiter, injected
    /// 503/429, connection drop).
    Reject(Response),
    /// Serve normally after `latency_ms` of injected delay, then apply
    /// `post` to the finished response.
    Serve { latency_ms: u64, post: PostFault },
}

/// A fault applied to an otherwise-correct response.
enum PostFault {
    None,
    /// Headers only; body withheld until shutdown.
    Stall,
    /// Body cut off mid-write.
    Truncate,
    /// Body bytes mangled into invalid JSON.
    Corrupt,
}

impl ServiceState {
    /// Advance the service's notion of "now" (drives the rate limiter and
    /// the fault plan on the simulated clock).
    fn now_ms(&self) -> u64 {
        self.clock_ms.load(Ordering::Relaxed)
    }

    fn admit(&self) -> Admission {
        if let Some(limiter) = &self.limiter {
            if !limiter.try_acquire(self.now_ms()) {
                self.metrics.requests_rejected.inc();
                return Admission::Reject(Response::text(429, "rate limited"));
            }
        }
        match self.faults.decide(self.now_ms()) {
            FaultDecision::Serve { latency_ms } => {
                self.requests_served.fetch_add(1, Ordering::Relaxed);
                Admission::Serve {
                    latency_ms,
                    post: PostFault::None,
                }
            }
            FaultDecision::Outage => {
                self.metrics.requests_rejected.inc();
                Admission::Reject(Response::text(503, "outage").with_wire_fault(WireFault::Drop))
            }
            FaultDecision::Burst503 | FaultDecision::Uniform503 => {
                self.metrics.requests_rejected.inc();
                Admission::Reject(Response::text(503, "transient backend error"))
            }
            FaultDecision::RateLimit429 => {
                self.metrics.requests_rejected.inc();
                let ms = self.faults.config().retry_after_ms;
                Admission::Reject(
                    Response::text(429, "rate limited")
                        .header("retry-after-ms", &ms.to_string())
                        .header("retry-after", &ms.div_ceil(1_000).to_string()),
                )
            }
            FaultDecision::Stall => Admission::Serve {
                latency_ms: 0,
                post: PostFault::Stall,
            },
            FaultDecision::Truncate => Admission::Serve {
                latency_ms: 0,
                post: PostFault::Truncate,
            },
            FaultDecision::Corrupt => Admission::Serve {
                latency_ms: 0,
                post: PostFault::Corrupt,
            },
        }
    }
}

/// Apply a post-serve fault to a finished response.
fn apply_post_fault(resp: Response, post: &PostFault) -> Response {
    match post {
        PostFault::None => resp,
        PostFault::Stall => resp.with_wire_fault(WireFault::StallAfterHeaders),
        PostFault::Truncate => {
            let n = resp.body.len() / 2;
            resp.with_wire_fault(WireFault::TruncateBody(n))
        }
        PostFault::Corrupt => {
            // Chop the JSON in half: valid HTTP framing, garbage payload —
            // a permanent decode error on the client.
            let body = resp.body[..resp.body.len() / 2].to_vec();
            let status = resp.status;
            Response::new(status, body).header("content-type", "application/json")
        }
    }
}

/// A handle to a running explorer service.
pub struct Explorer {
    state: Arc<ServiceState>,
    registry: Registry,
    server: Server,
}

impl Explorer {
    /// Start the service over `store` on an ephemeral local port, with a
    /// private metrics registry.
    pub async fn start(
        store: Arc<RwLock<HistoryStore>>,
        config: ExplorerConfig,
    ) -> std::io::Result<Explorer> {
        Explorer::start_with_registry(store, config, Registry::new()).await
    }

    /// Start the service recording into a caller-supplied registry, so its
    /// `explorer.` metrics land in the same snapshot as the rest of the
    /// pipeline. The registry is also mounted at `GET /metrics`.
    pub async fn start_with_registry(
        store: Arc<RwLock<HistoryStore>>,
        config: ExplorerConfig,
        registry: Registry,
    ) -> std::io::Result<Explorer> {
        let limiter = config
            .rate_limit
            .map(|(cap, per_sec)| TokenBucket::new(cap, per_sec, 0));
        let state = Arc::new(ServiceState {
            limiter,
            faults: FaultPlan::new(config.faults.clone(), &registry),
            clock_ms: AtomicU64::new(0),
            requests_served: AtomicU64::new(0),
            metrics: ExplorerMetrics::new(&registry),
            store,
            config,
        });
        let router = build_router(state.clone()).with_metrics(registry.clone());
        let server = Server::bind("127.0.0.1:0", router).await?;
        Ok(Explorer {
            state,
            registry,
            server,
        })
    }

    /// The registry this service records into (and serves at `/metrics`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The service's base address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Advance the simulated wall clock used by the rate limiter.
    pub fn set_now_ms(&self, now_ms: u64) {
        self.state.clock_ms.store(now_ms, Ordering::Relaxed);
    }

    /// The current simulated wall-clock reading.
    pub fn now_ms(&self) -> u64 {
        self.state.now_ms()
    }

    /// Requests successfully served (for the ethics/rate-limit bench).
    pub fn requests_served(&self) -> u64 {
        self.state.requests_served.load(Ordering::Relaxed)
    }

    /// Graceful shutdown.
    pub async fn shutdown(self) {
        self.server.shutdown().await;
    }
}

fn build_router(state: Arc<ServiceState>) -> Router {
    let s1 = state.clone();
    let s2 = state.clone();
    let s3 = state;

    Router::new()
        .route(Method::Get, "/api/v1/bundles", move |req: Request| {
            let state = s1.clone();
            async move { handle_bundles(&state, req).await }
        })
        .route(Method::Post, "/api/v1/transactions", move |req: Request| {
            let state = s2.clone();
            async move { handle_transactions(&state, req).await }
        })
        .route(
            Method::Get,
            "/api/v1/tips/percentiles",
            move |req: Request| {
                let state = s3.clone();
                async move { handle_percentiles(&state, req).await }
            },
        )
}

/// Run the admission gate, injected latency, handler body, and post-serve
/// fault for one request.
async fn handle_faulted(
    state: &ServiceState,
    body: impl FnOnce(&ServiceState) -> Response,
) -> Response {
    match state.admit() {
        Admission::Reject(resp) => resp,
        Admission::Serve { latency_ms, post } => {
            if latency_ms > 0 {
                tokio::time::sleep(Duration::from_millis(latency_ms)).await;
            }
            apply_post_fault(body(state), &post)
        }
    }
}

async fn handle_bundles(state: &ServiceState, req: Request) -> Response {
    state.metrics.bundles_requests.inc();
    let _timer = state.metrics.bundles_seconds.clone().start_timer();
    handle_faulted(state, move |state| {
        let limit = match req.query_param("limit") {
            None => state.config.default_page,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => n.min(state.config.max_page),
                _ => return Response::text(400, "invalid limit"),
            },
        };
        let before = match req.query_param("before") {
            None => None,
            Some(raw) => match raw.parse::<u64>() {
                Ok(slot) => Some(slot),
                Err(_) => return Response::text(400, "invalid before cursor"),
            },
        };
        let bundles = match before {
            Some(slot) => state.store.read().recent_before(slot, limit),
            None => state.store.read().recent(limit),
        };
        state.metrics.page_size.observe(bundles.len() as f64);
        Response::json(&RecentBundlesResponse { bundles })
    })
    .await
}

async fn handle_transactions(state: &ServiceState, req: Request) -> Response {
    state.metrics.transactions_requests.inc();
    let _timer = state.metrics.transactions_seconds.clone().start_timer();
    handle_faulted(state, move |state| {
        let body: TxDetailsRequest = match serde_json::from_slice(&req.body) {
            Ok(b) => b,
            Err(e) => return Response::text(400, format!("bad request body: {e}")),
        };
        if body.tx_ids.len() > state.config.max_tx_batch {
            return Response::text(
                400,
                format!(
                    "batch of {} exceeds limit {}",
                    body.tx_ids.len(),
                    state.config.max_tx_batch
                ),
            );
        }
        let details = state.store.read().details_for(&body.tx_ids);
        let transactions = details
            .iter()
            .map(|d| d.as_ref().map(TxDetailJson::from_detail))
            .collect();
        Response::json(&TxDetailsResponse { transactions })
    })
    .await
}

async fn handle_percentiles(state: &ServiceState, _req: Request) -> Response {
    state.metrics.percentiles_requests.inc();
    let _timer = state.metrics.percentiles_seconds.clone().start_timer();
    handle_faulted(state, |state| {
        let sample = 10_000;
        let p95 = state.store.read().p95_tip_recent(sample);
        Response::json(&TipPercentilesResponse {
            p95_tip_lamports: p95.0,
            sample,
        })
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RetentionPolicy;
    use sandwich_jito::LandedBundle;
    use sandwich_net::HttpClient;
    use sandwich_types::{Hash, Keypair, Lamports, Slot, SlotClock};

    fn landed(slot: u64, tip: u64, seed: u64) -> LandedBundle {
        let kp = Keypair::from_label("svc");
        LandedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            tip: Lamports(tip),
            metas: vec![sandwich_ledger::TransactionMeta {
                tx_id: kp.sign(&seed.to_le_bytes()),
                signer: kp.pubkey(),
                fee: Lamports(5_000),
                priority_fee: Lamports::ZERO,
                success: true,
                error: None,
                sol_deltas: vec![],
                token_deltas: vec![],
            }],
        }
    }

    fn filled_store(n: u64) -> Arc<RwLock<HistoryStore>> {
        let mut store = HistoryStore::new(SlotClock::default(), RetentionPolicy::All);
        for i in 0..n {
            store.record_bundle(&landed(i, 1_000 + i, i));
        }
        Arc::new(RwLock::new(store))
    }

    #[tokio::test]
    async fn bundles_endpoint_pages_and_caps() {
        let explorer = Explorer::start(
            filled_store(100),
            ExplorerConfig {
                max_page: 50,
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr());

        let page: RecentBundlesResponse =
            client.get_json("/api/v1/bundles?limit=10").await.unwrap();
        assert_eq!(page.bundles.len(), 10);
        assert_eq!(page.bundles[0].slot, 99, "newest first");

        // Requests above max_page are clamped, exactly like the paper's
        // 50,000 cap.
        let page: RecentBundlesResponse = client
            .get_json("/api/v1/bundles?limit=99999")
            .await
            .unwrap();
        assert_eq!(page.bundles.len(), 50);

        let resp = client.get("/api/v1/bundles?limit=abc").await.unwrap();
        assert_eq!(resp.status, 400);

        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn transactions_endpoint_resolves_batches() {
        let store = filled_store(5);
        let known_id = store.read().recent(1)[0].transactions[0];
        let explorer = Explorer::start(store, ExplorerConfig::default())
            .await
            .unwrap();
        let client = HttpClient::new(explorer.addr());

        let unknown = Keypair::from_label("nobody").sign(b"x");
        let resp: TxDetailsResponse = client
            .post_json(
                "/api/v1/transactions",
                &TxDetailsRequest {
                    tx_ids: vec![known_id, unknown],
                },
            )
            .await
            .unwrap();
        assert!(resp.transactions[0].is_some());
        assert!(resp.transactions[1].is_none());

        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn oversized_batch_rejected() {
        let explorer = Explorer::start(
            filled_store(1),
            ExplorerConfig {
                max_tx_batch: 2,
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr());
        let ids: Vec<_> = (0..3u64)
            .map(|i| Keypair::from_label("x").sign(&i.to_le_bytes()))
            .collect();
        let resp = client
            .post(
                "/api/v1/transactions",
                serde_json::to_vec(&TxDetailsRequest { tx_ids: ids }).unwrap(),
            )
            .await
            .unwrap();
        assert_eq!(resp.status, 400);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn fault_injection_returns_503s() {
        let explorer = Explorer::start(
            filled_store(10),
            ExplorerConfig {
                faults: FaultPlanConfig::uniform_503(1.0, 7),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr());
        let resp = client.get("/api/v1/bundles").await.unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(
            explorer
                .registry()
                .snapshot()
                .counter("faults.injected.uniform_503"),
            Some(1)
        );
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn injected_429_carries_retry_after() {
        let explorer = Explorer::start(
            filled_store(10),
            ExplorerConfig {
                faults: FaultPlanConfig {
                    rate_429: 1.0,
                    retry_after_ms: 350,
                    ..FaultPlanConfig::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr());
        let resp = client.get("/api/v1/bundles").await.unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header_value("retry-after-ms"), Some("350"));
        assert_eq!(resp.header_value("retry-after"), Some("1"));
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn outage_window_drops_connections() {
        let explorer = Explorer::start(
            filled_store(10),
            ExplorerConfig {
                faults: FaultPlanConfig {
                    outages_ms: vec![(0, 10_000)],
                    ..FaultPlanConfig::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr());
        // Inside the window the connection closes without a response.
        assert!(client.get("/api/v1/bundles").await.is_err());
        // After the window, service resumes.
        explorer.set_now_ms(10_000);
        assert_eq!(client.get("/api/v1/bundles").await.unwrap().status, 200);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn stalled_response_recovered_by_client_deadline() {
        use sandwich_net::ClientTimeouts;

        let explorer = Explorer::start(
            filled_store(10),
            ExplorerConfig {
                faults: FaultPlanConfig {
                    stall_rate: 1.0,
                    ..FaultPlanConfig::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr()).with_timeouts(ClientTimeouts {
            connect: Duration::from_millis(500),
            total: Duration::from_millis(200),
        });
        let start = std::time::Instant::now();
        let err = client.get("/api/v1/bundles").await.unwrap_err();
        assert!(
            matches!(err, sandwich_net::HttpError::TimedOut { .. }),
            "{err:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(5), "hung on stall");
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn corrupt_body_is_a_decode_error() {
        let explorer = Explorer::start(
            filled_store(10),
            ExplorerConfig {
                faults: FaultPlanConfig {
                    corrupt_rate: 1.0,
                    ..FaultPlanConfig::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr());
        let err = client
            .get_json::<RecentBundlesResponse>("/api/v1/bundles")
            .await
            .unwrap_err();
        assert!(
            matches!(err, sandwich_net::ClientError::Decode(_)),
            "{err:?}"
        );
        assert!(!err.is_transient());
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn truncated_body_is_a_transport_error() {
        let explorer = Explorer::start(
            filled_store(10),
            ExplorerConfig {
                faults: FaultPlanConfig {
                    truncate_rate: 1.0,
                    ..FaultPlanConfig::default()
                },
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr());
        let err = client
            .get_json::<RecentBundlesResponse>("/api/v1/bundles")
            .await
            .unwrap_err();
        assert!(
            err.is_transient(),
            "truncation should be retryable: {err:?}"
        );
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn bundles_before_cursor_pages_deeper() {
        let explorer = Explorer::start(filled_store(100), ExplorerConfig::default())
            .await
            .unwrap();
        let client = HttpClient::new(explorer.addr());
        let page: RecentBundlesResponse = client
            .get_json("/api/v1/bundles?limit=10&before=50")
            .await
            .unwrap();
        assert_eq!(page.bundles.len(), 10);
        assert_eq!(page.bundles[0].slot, 49, "newest strictly before cursor");
        let resp = client.get("/api/v1/bundles?before=abc").await.unwrap();
        assert_eq!(resp.status, 400);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn rate_limit_enforced_on_simulated_clock() {
        let explorer = Explorer::start(
            filled_store(10),
            ExplorerConfig {
                rate_limit: Some((2, 1.0)),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        let client = HttpClient::new(explorer.addr());
        assert_eq!(client.get("/api/v1/bundles").await.unwrap().status, 200);
        assert_eq!(client.get("/api/v1/bundles").await.unwrap().status, 200);
        assert_eq!(client.get("/api/v1/bundles").await.unwrap().status, 429);
        // Advance simulated time: tokens refill.
        explorer.set_now_ms(2_000);
        assert_eq!(client.get("/api/v1/bundles").await.unwrap().status, 200);
        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn metrics_endpoint_reports_request_counts() {
        let explorer = Explorer::start(filled_store(20), ExplorerConfig::default())
            .await
            .unwrap();
        let client = HttpClient::new(explorer.addr());
        for _ in 0..3 {
            assert_eq!(
                client.get("/api/v1/bundles?limit=5").await.unwrap().status,
                200
            );
        }

        let resp = client.get("/metrics").await.unwrap();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("\"explorer.bundles_requests\":3"), "{body}");

        let snap = explorer.registry().snapshot();
        assert_eq!(snap.counter("explorer.bundles_requests"), Some(3));
        assert_eq!(snap.histogram("explorer.page_size").unwrap().count, 3);
        assert_eq!(snap.histogram("explorer.bundles_seconds").unwrap().count, 3);

        explorer.shutdown().await;
    }

    #[tokio::test]
    async fn percentile_endpoint_serves_dashboard_number() {
        let explorer = Explorer::start(filled_store(100), ExplorerConfig::default())
            .await
            .unwrap();
        let client = HttpClient::new(explorer.addr());
        let resp: TipPercentilesResponse =
            client.get_json("/api/v1/tips/percentiles").await.unwrap();
        assert!(resp.p95_tip_lamports >= 1_000);
        explorer.shutdown().await;
    }

    /// Regression: malformed input — bad query strings, percent-encoded
    /// junk, invalid JSON bodies — must come back as 4xx responses, never
    /// kill the connection task or the server.
    #[tokio::test]
    async fn malformed_requests_never_kill_the_server() {
        let explorer = Explorer::start(filled_store(20), ExplorerConfig::default())
            .await
            .unwrap();
        let client = HttpClient::new(explorer.addr());

        for bad in [
            "/api/v1/bundles?limit=banana",
            "/api/v1/bundles?limit=-1",
            "/api/v1/bundles?limit=99999999999999999999999999",
            "/api/v1/bundles?before=not-a-slot",
            "/api/v1/bundles?limit=%zz%2&before=%",
        ] {
            let resp = client.get(bad).await.unwrap();
            assert_eq!(resp.status, 400, "{bad} must be rejected, not fatal");
        }

        // Invalid and non-JSON bodies on the POST endpoint.
        for body in [&b"not json"[..], &b"{\"tx_ids\": 7}"[..], &[0xff, 0xfe]] {
            let resp = client
                .post("/api/v1/transactions", body.to_vec())
                .await
                .unwrap();
            assert_eq!(resp.status, 400, "bad body must be a 400");
        }

        // The server is still healthy after every rejection.
        let resp = client.get("/api/v1/bundles?limit=5").await.unwrap();
        assert_eq!(resp.status, 200);
        explorer.shutdown().await;
    }
}
