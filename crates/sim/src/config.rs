//! Scenario configuration and calibration.
//!
//! Defaults are calibrated to the paper's published aggregates (DESIGN.md
//! §5): bundle volume and length mix, the decaying sandwich rate, the
//! growing defensive-bundling rate, tip distributions, and the SOL price.
//! `volume_scale` shrinks absolute counts while preserving every proportion
//! the figures depend on.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Full configuration of a measurement-period simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// RNG seed for full reproducibility.
    pub seed: u64,
    /// Days simulated (the paper measured 120).
    pub days: u64,
    /// Ticks per day; each tick produces one block. 720 ticks = one block
    /// per two simulated minutes, matching the collector's polling cadence.
    pub ticks_per_day: u64,
    /// Fraction of mainnet volume to simulate (1.0 = 14.8M bundles/day).
    pub volume_scale: f64,
    /// Full-scale bundles per day (paper §3.1: 14.8M).
    pub bundles_per_day_full_scale: f64,
    /// Bundle-length mix for lengths 1–5. Length-3 is the paper's 2.77%;
    /// length-1 is the majority (Figure 1).
    pub length_mix: [f64; 5],
    /// Full-scale sandwiches/day at the start of the period (Figure 2: ~15k).
    pub sandwiches_day_first: f64,
    /// Full-scale sandwiches/day at the end of the period (Figure 2: ~1k).
    pub sandwiches_day_last: f64,
    /// Fraction of sandwiches on pools with no SOL leg (§4.1: 28%).
    pub non_sol_sandwich_fraction: f64,
    /// Defensive fraction of length-1 bundles on day 0 (grows to the value
    /// below; period average must come out near 86%, §4.2).
    pub defensive_fraction_first: f64,
    /// Defensive fraction of length-1 bundles on the last day.
    pub defensive_fraction_last: f64,
    /// Probability that a second attacker contends for the same victim
    /// (exercises the auction-conflict path that drives tips up).
    pub rival_attacker_probability: f64,
    /// Probability a sandwich is *disguised* by appending an unrelated
    /// transaction (length-4 bundle). The paper's length-3 methodology
    /// misses these — its counts are a lower bound (§3.2).
    pub disguised_sandwich_probability: f64,
    /// Number of token mints with SOL pools.
    pub sol_pool_count: usize,
    /// Number of token–token pools (for non-SOL sandwiches).
    pub token_pool_count: usize,
    /// Trader population size.
    pub trader_count: usize,
    /// Attacker (searcher) population size.
    pub attacker_count: usize,
    /// Defensive-bundler population size.
    pub defender_count: usize,
    /// Validators in the stake-weighted leader schedule.
    pub validator_count: u32,
    /// Fraction of validators that forward their mempool view to the
    /// private channel ("colluders"). Sandwiches can only land in slots
    /// led by a colluder, which is what makes attribution causally
    /// meaningful: the leaderboard hot-spots *are* the colluders.
    pub colluder_fraction: f64,
    /// Explorer downtime windows as inclusive day ranges (Figure 1's
    /// shaded gaps). The chain keeps running; the explorer drops every
    /// connection, so the collector's polls fail and its breaker opens.
    pub downtime_days: Vec<(u64, u64)>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 20250209,
            days: 120,
            ticks_per_day: 720,
            volume_scale: 1.0 / 2_000.0,
            bundles_per_day_full_scale: 14_800_000.0,
            length_mix: [0.6200, 0.2450, 0.0277, 0.0700, 0.0373],
            sandwiches_day_first: 15_000.0,
            sandwiches_day_last: 1_000.0,
            non_sol_sandwich_fraction: 0.28,
            defensive_fraction_first: 0.82,
            defensive_fraction_last: 0.90,
            rival_attacker_probability: 0.05,
            disguised_sandwich_probability: 0.06,
            sol_pool_count: 40,
            token_pool_count: 14,
            trader_count: 300,
            attacker_count: 8,
            defender_count: 500,
            validator_count: 24,
            colluder_fraction: 0.25,
            downtime_days: vec![(27, 29), (56, 57), (84, 86)],
        }
    }
}

impl ScenarioConfig {
    /// A tiny scenario for unit/integration tests: 3 days at a very small
    /// scale, same proportions.
    pub fn tiny() -> Self {
        ScenarioConfig {
            days: 3,
            ticks_per_day: 48,
            volume_scale: 1.0 / 8_000.0,
            // Keep enough attack events for assertions to be stable at the
            // tiny scale (≈ 25 expected over the run).
            sandwiches_day_first: 100_000.0,
            sandwiches_day_last: 40_000.0,
            sol_pool_count: 8,
            token_pool_count: 4,
            trader_count: 40,
            attacker_count: 3,
            defender_count: 60,
            downtime_days: vec![(1, 1)],
            ..Default::default()
        }
    }

    /// Scaled bundles per day.
    pub fn bundles_per_day(&self) -> f64 {
        self.bundles_per_day_full_scale * self.volume_scale
    }

    /// Scaled sandwiches per day on `day` — exponential decay between the
    /// calibrated endpoints, matching Figure 2's shape.
    pub fn sandwiches_on_day(&self, day: u64) -> f64 {
        let t = if self.days <= 1 {
            0.0
        } else {
            day as f64 / (self.days - 1) as f64
        };
        let first = self.sandwiches_day_first.max(1e-9);
        let last = self.sandwiches_day_last.max(1e-9);
        let rate = first * (last / first).powf(t);
        rate * self.volume_scale
    }

    /// Defensive fraction of length-1 bundles on `day` — linear growth.
    pub fn defensive_fraction_on_day(&self, day: u64) -> f64 {
        let t = if self.days <= 1 {
            0.0
        } else {
            day as f64 / (self.days - 1) as f64
        };
        self.defensive_fraction_first
            + (self.defensive_fraction_last - self.defensive_fraction_first) * t
    }

    /// Scaled bundles per day of a given length (1-indexed).
    pub fn bundles_of_length_per_day(&self, len: usize) -> f64 {
        assert!((1..=5).contains(&len));
        self.bundles_per_day() * self.length_mix[len - 1]
    }

    /// True when the collector is down on `day`.
    pub fn is_downtime(&self, day: u64) -> bool {
        self.downtime_days
            .iter()
            .any(|&(a, b)| day >= a && day <= b)
    }

    /// The downtime day ranges as `[start_ms, end_ms)` windows on `clock`
    /// — the shape the explorer's fault plan consumes, so scheduled
    /// downtime is injected server-side instead of the collector politely
    /// skipping polls.
    pub fn downtime_windows_ms(&self, clock: &sandwich_types::SlotClock) -> Vec<(u64, u64)> {
        self.downtime_days
            .iter()
            .map(|&(a, b)| {
                let start = clock.unix_ms(clock.day_start(a));
                let end = clock.unix_ms(clock.day_start(b + 1));
                (start, end)
            })
            .collect()
    }

    /// Slot of (day, tick): blocks are spread uniformly over the day.
    pub fn slot_for(&self, day: u64, tick: u64) -> sandwich_types::Slot {
        let per_tick = sandwich_types::SLOTS_PER_DAY / self.ticks_per_day;
        sandwich_types::Slot(day * sandwich_types::SLOTS_PER_DAY + tick * per_tick)
    }

    /// The validator spec this scenario's leader schedule derives from.
    /// Reuses the scenario seed, so a seed fully reproduces the rotation.
    pub fn validator_spec(&self) -> sandwich_attrib::ValidatorSpec {
        sandwich_attrib::ValidatorSpec::new(self.seed, self.validator_count)
    }

    /// Ground-truth colluder flags for this scenario's validator set,
    /// indexed like the schedule's validators. Sim-side only — recorded in
    /// the label book, never shipped with the measured data.
    pub fn colluder_flags(&self) -> Vec<bool> {
        sandwich_attrib::colluder_flags(&self.validator_spec(), self.colluder_fraction)
    }
}

/// Sample a Poisson-distributed count (Knuth for small λ, normal
/// approximation above 30).
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical safety
            }
        }
    } else {
        let sample: f64 = lambda + lambda.sqrt() * standard_normal(rng);
        sample.max(0.0).round() as u64
    }
}

/// Standard normal via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a log-normal value with the given *median* and log-σ, clamped.
pub fn lognormal_clamped<R: Rng>(rng: &mut R, median: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    let v = median * (sigma * standard_normal(rng)).exp();
    v.clamp(lo, hi)
}

/// Weighted choice over items.
pub fn weighted_choice<'a, R: Rng, T>(rng: &mut R, items: &'a [(T, f64)]) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen::<f64>() * total;
    for (item, w) in items {
        roll -= w;
        if roll <= 0.0 {
            return item;
        }
    }
    &items[items.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_mix_sums_to_one() {
        let c = ScenarioConfig::default();
        let sum: f64 = c.length_mix.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "mix sums to {sum}");
        assert!((c.length_mix[2] - 0.0277).abs() < 1e-9, "len-3 is 2.77%");
    }

    #[test]
    fn sandwich_rate_decays_between_endpoints() {
        let c = ScenarioConfig::default();
        let first = c.sandwiches_on_day(0);
        let mid = c.sandwiches_on_day(60);
        let last = c.sandwiches_on_day(119);
        assert!(first > mid && mid > last);
        assert!((first - 15_000.0 * c.volume_scale).abs() < 1e-6);
        assert!((last - 1_000.0 * c.volume_scale).abs() < 1e-6);
    }

    #[test]
    fn defensive_fraction_grows() {
        let c = ScenarioConfig::default();
        assert!(c.defensive_fraction_on_day(0) < c.defensive_fraction_on_day(119));
        // Period average lands near the paper's 86%.
        let avg: f64 = (0..120)
            .map(|d| c.defensive_fraction_on_day(d))
            .sum::<f64>()
            / 120.0;
        assert!(
            (avg - 0.86).abs() < 0.01,
            "average defensive fraction {avg}"
        );
    }

    #[test]
    fn downtime_windows() {
        let c = ScenarioConfig::default();
        assert!(c.is_downtime(28));
        assert!(!c.is_downtime(30));
    }

    #[test]
    fn downtime_windows_convert_to_clock_ms() {
        let c = ScenarioConfig::tiny(); // downtime day 1 (inclusive)
        let clock = sandwich_types::SlotClock::default();
        let windows = c.downtime_windows_ms(&clock);
        assert_eq!(windows.len(), 1);
        let (start, end) = windows[0];
        assert_eq!(start, clock.unix_ms(clock.day_start(1)));
        assert_eq!(end, clock.unix_ms(clock.day_start(2)));
        assert_eq!(end - start, 86_400_000, "one full day");
        // Window boundaries: last slot of day 0 is outside, first of day 1
        // inside, first of day 2 outside again.
        let inside = clock.unix_ms(c.slot_for(1, 0));
        assert!((start..end).contains(&inside));
        let before = clock.unix_ms(c.slot_for(0, 47));
        assert!(!(start..end).contains(&before));
    }

    #[test]
    fn slots_monotonic_within_day() {
        let c = ScenarioConfig::default();
        let a = c.slot_for(0, 0);
        let b = c.slot_for(0, 1);
        let d1 = c.slot_for(1, 0);
        assert!(b.0 > a.0);
        assert!(d1.0 >= a.0 + sandwich_types::SLOTS_PER_DAY);
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for &lambda in &[0.5, 5.0, 50.0] {
            let n = 4_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1,
                "λ={lambda}, mean={mean}"
            );
        }
    }

    #[test]
    fn lognormal_respects_clamps() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = lognormal_clamped(&mut rng, 5_000.0, 1.0, 1_000.0, 100_000.0);
            assert!((1_000.0..=100_000.0).contains(&v));
        }
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [("a", 0.9), ("b", 0.1)];
        let a_count = (0..1_000)
            .filter(|_| *weighted_choice(&mut rng, &items) == "a")
            .count();
        assert!(a_count > 800, "a chosen {a_count} times");
    }
}
