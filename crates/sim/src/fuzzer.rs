//! Adversarial near-miss generator.
//!
//! Starts from a randomized *true* sandwich (front-run, victim, back-run as
//! executed transaction metas) and mutates it along exactly one criterion
//! boundary per family, plus metamorphic variants (permuted order, split
//! across bundles, zero-delta padding). The detector must reject every
//! mutant while still catching the unmutated original — the conformance
//! suite and `conformance_bench` assert exactly that, per family.
//!
//! The generator is fully seeded: the same seed yields the same cases, so
//! failures reproduce and the bench snapshot is stable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sandwich_jito::tip_account;
use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_types::{Keypair, LamportDelta, Lamports, Pubkey};

use crate::labels::NearMissFamily;

/// One generated case: the true sandwich and its mutants.
#[derive(Clone, Debug)]
pub struct NearMissCase {
    /// The family every mutant belongs to.
    pub family: NearMissFamily,
    /// The unmutated true sandwich (three metas, bundle order).
    pub original: Vec<TransactionMeta>,
    /// The mutants, each inner vec one bundle's worth of metas. Most
    /// families produce a single length-3 bundle; `SplitAcrossBundles`
    /// produces two bundles, `ZeroDeltaPadding` one length-4 bundle, and
    /// `PermutedOrder` one bundle per non-identity permutation.
    pub mutated: Vec<Vec<TransactionMeta>>,
}

/// Seeded generator of [`NearMissCase`]s.
pub struct NearMissFuzzer {
    rng: StdRng,
    seed: u64,
    counter: u64,
}

impl NearMissFuzzer {
    /// A fuzzer that will generate the same cases for the same seed.
    pub fn new(seed: u64) -> Self {
        NearMissFuzzer {
            rng: StdRng::seed_from_u64(seed),
            seed,
            counter: 0,
        }
    }

    /// Generate `per_family` cases for every family, in family order.
    pub fn cases(&mut self, per_family: usize) -> Vec<NearMissCase> {
        let mut out = Vec::with_capacity(per_family * NearMissFamily::all().len());
        for family in NearMissFamily::all() {
            for _ in 0..per_family {
                out.push(self.case(family));
            }
        }
        out
    }

    /// Generate one case of the given family.
    pub fn case(&mut self, family: NearMissFamily) -> NearMissCase {
        let s = self.sandwich_shape();
        let original = vec![
            self.swap_meta(
                &s.attacker,
                -(s.front_sol as i64),
                s.tokens as i128,
                s.mint,
                0,
            ),
            self.swap_meta(
                &s.victim,
                -(s.victim_sol as i64),
                s.tokens as i128,
                s.mint,
                0,
            ),
            self.swap_meta(
                &s.attacker,
                s.back_sol as i64,
                -(s.tokens as i128),
                s.mint,
                s.tip,
            ),
        ];

        let mutated: Vec<Vec<TransactionMeta>> = match family {
            NearMissFamily::DifferentOuterSigner => {
                // The profitable back-run is signed by a third party: the
                // price action is identical, only criterion 1 can object.
                let third = self.keypair("third");
                vec![vec![
                    original[0].clone(),
                    original[1].clone(),
                    self.swap_meta(
                        &third,
                        s.back_sol as i64,
                        -(s.tokens as i128),
                        s.mint,
                        s.tip,
                    ),
                ]]
            }
            NearMissFamily::DisjointCurrencies => {
                // The exit leg sells a *different* token for the same SOL
                // proceeds: front/victim still match (criteria 1, 3, 4 all
                // hold) but the final currency set is disjoint.
                let other_mint = self.fresh_mint("other");
                vec![vec![
                    original[0].clone(),
                    original[1].clone(),
                    self.swap_meta(
                        &s.attacker,
                        s.back_sol as i64,
                        -(s.tokens as i128),
                        other_mint,
                        s.tip,
                    ),
                ]]
            }
            NearMissFamily::RateMovedForVictim => {
                // The victim pays *less* per token than the front-run — the
                // rate moved for them, so there is no sandwich. Everything
                // else (signers, currencies, attacker profit) still holds.
                let better_sol = (s.front_sol as f64 * (0.55 + self.rng.gen::<f64>() * 0.4)) as u64;
                vec![vec![
                    original[0].clone(),
                    self.swap_meta(
                        &s.victim,
                        -(better_sol.max(2_000) as i64),
                        s.tokens as i128,
                        s.mint,
                        0,
                    ),
                    original[2].clone(),
                ]]
            }
            NearMissFamily::UnprofitableAttacker => {
                // The exit recovers less SOL than the entry paid: both
                // profit branches of criterion 4 fail, everything else holds.
                let loss_sol = (s.front_sol as f64 * (0.5 + self.rng.gen::<f64>() * 0.45)) as u64;
                vec![vec![
                    original[0].clone(),
                    original[1].clone(),
                    self.swap_meta(
                        &s.attacker,
                        loss_sol.max(2_000) as i64,
                        -(s.tokens as i128),
                        s.mint,
                        s.tip,
                    ),
                ]]
            }
            NearMissFamily::TipOnlyFinal => {
                // The app-bundler pattern: front-run-shaped buy, victim-
                // shaped buy, and a final transaction that only tips. The
                // naive bundle-level reading of criteria 1–4 flags it (the
                // first signer holds appreciated inventory); criterion 5
                // exists to exclude exactly this.
                vec![vec![
                    original[0].clone(),
                    original[1].clone(),
                    self.tip_only_meta(&s.attacker, s.tip),
                ]]
            }
            NearMissFamily::PermutedOrder => {
                // Every non-identity order of the true sandwich.
                [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]]
                    .iter()
                    .map(|perm| perm.iter().map(|&i| original[i].clone()).collect())
                    .collect()
            }
            NearMissFamily::SplitAcrossBundles => {
                // Front + victim land in one bundle, the back-run in another:
                // no single bundle contains the triple.
                vec![
                    vec![original[0].clone(), original[1].clone()],
                    vec![original[2].clone()],
                ]
            }
            NearMissFamily::ZeroDeltaPadding => {
                // A zero-market-effect transaction wedged before the back-
                // run makes the bundle length-4: the paper's length-3
                // methodology never fetches it (the extended scan must
                // still find the embedded triple at [0, 1, 3]).
                let bystander = self.keypair("bystander");
                vec![vec![
                    original[0].clone(),
                    original[1].clone(),
                    self.zero_delta_meta(&bystander),
                    original[2].clone(),
                ]]
            }
        };

        NearMissCase {
            family,
            original,
            mutated,
        }
    }

    // ----- shape sampling and meta construction --------------------------

    fn sandwich_shape(&mut self) -> Shape {
        let case = self.counter;
        let front_sol = self.rng.gen_range(1_000_000_000u64..200_000_000_000);
        // Victim pays 5–50% more per token; attacker exits 2–20% up.
        let victim_sol = (front_sol as f64 * (1.05 + self.rng.gen::<f64>() * 0.45)) as u64;
        let back_sol = (front_sol as f64 * (1.02 + self.rng.gen::<f64>() * 0.18)) as u64;
        let tokens = self.rng.gen_range(10_000u64..10_000_000);
        let tip = self.rng.gen_range(150_000u64..5_000_000);
        Shape {
            attacker: self.keypair(&format!("attacker-{case}")),
            victim: self.keypair(&format!("victim-{case}")),
            mint: self.fresh_mint("pool"),
            front_sol,
            victim_sol,
            back_sol,
            tokens,
            tip,
        }
    }

    fn keypair(&mut self, role: &str) -> Keypair {
        self.counter += 1;
        Keypair::from_label(&format!("fuzz-{}-{role}-{}", self.seed, self.counter))
    }

    fn fresh_mint(&mut self, tag: &str) -> Pubkey {
        self.counter += 1;
        Pubkey::derive(&format!("fuzz-mint-{}-{tag}-{}", self.seed, self.counter))
    }

    fn next_id(&mut self, kp: &Keypair) -> sandwich_ledger::TransactionId {
        self.counter += 1;
        kp.sign(&self.counter.to_le_bytes())
    }

    /// A swap meta: the signer's SOL moves by `sol_trade` (before fee/tip)
    /// and their `mint` balance by `tokens`.
    fn swap_meta(
        &mut self,
        kp: &Keypair,
        sol_trade: i64,
        tokens: i128,
        mint: Pubkey,
        tip: u64,
    ) -> TransactionMeta {
        let fee = 5_000i64;
        let mut sol_deltas = vec![SolDelta {
            account: kp.pubkey(),
            delta: LamportDelta(sol_trade - fee - tip as i64),
        }];
        if tip > 0 {
            sol_deltas.push(SolDelta {
                account: tip_account(self.counter),
                delta: LamportDelta(tip as i64),
            });
        }
        TransactionMeta {
            tx_id: self.next_id(kp),
            signer: kp.pubkey(),
            fee: Lamports(fee as u64),
            priority_fee: Lamports::ZERO,
            success: true,
            error: None,
            sol_deltas,
            token_deltas: if tokens != 0 {
                vec![TokenDelta {
                    owner: kp.pubkey(),
                    mint,
                    delta: tokens,
                }]
            } else {
                vec![]
            },
        }
    }

    /// A transaction whose only effect is a Jito tip (plus fee).
    fn tip_only_meta(&mut self, kp: &Keypair, tip: u64) -> TransactionMeta {
        self.swap_meta(kp, 0, 0, Pubkey::derive("unused"), tip.max(1_000))
    }

    /// A transaction with no market effect at all (fee only).
    fn zero_delta_meta(&mut self, kp: &Keypair) -> TransactionMeta {
        let fee = 5_000i64;
        TransactionMeta {
            tx_id: self.next_id(kp),
            signer: kp.pubkey(),
            fee: Lamports(fee as u64),
            priority_fee: Lamports::ZERO,
            success: true,
            error: None,
            sol_deltas: vec![SolDelta {
                account: kp.pubkey(),
                delta: LamportDelta(-fee),
            }],
            token_deltas: vec![],
        }
    }
}

struct Shape {
    attacker: Keypair,
    victim: Keypair,
    mint: Pubkey,
    front_sol: u64,
    victim_sol: u64,
    back_sol: u64,
    tokens: u64,
    tip: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<_> = NearMissFuzzer::new(7).cases(2);
        let b: Vec<_> = NearMissFuzzer::new(7).cases(2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.family, y.family);
            assert_eq!(
                x.original.iter().map(|m| m.tx_id).collect::<Vec<_>>(),
                y.original.iter().map(|m| m.tx_id).collect::<Vec<_>>()
            );
        }
        let c = NearMissFuzzer::new(8).case(NearMissFamily::TipOnlyFinal);
        let d = NearMissFuzzer::new(9).case(NearMissFamily::TipOnlyFinal);
        assert_ne!(c.original[0].tx_id, d.original[0].tx_id, "seeds differ");
    }

    #[test]
    fn every_family_produced_with_expected_shapes() {
        let mut fuzzer = NearMissFuzzer::new(3);
        for family in NearMissFamily::all() {
            let case = fuzzer.case(family);
            assert_eq!(case.family, family);
            assert_eq!(case.original.len(), 3);
            match family {
                NearMissFamily::PermutedOrder => assert_eq!(case.mutated.len(), 5),
                NearMissFamily::SplitAcrossBundles => {
                    assert_eq!(case.mutated.len(), 2);
                    assert_eq!(case.mutated[0].len(), 2);
                    assert_eq!(case.mutated[1].len(), 1);
                }
                NearMissFamily::ZeroDeltaPadding => {
                    assert_eq!(case.mutated.len(), 1);
                    assert_eq!(case.mutated[0].len(), 4);
                }
                _ => {
                    assert_eq!(case.mutated.len(), 1);
                    assert_eq!(case.mutated[0].len(), 3);
                }
            }
        }
    }
}
