//! The scenario driver: generates the 120-day bundle stream.
//!
//! Each tick builds the period-appropriate mix of bundles — defensive
//! self-bundles, priority bundles, app bundles, decoy length-3 bundles, and
//! genuine sandwich attacks planned with the DEX math — and lands them
//! through the Jito block engine. Ground truth is recorded per day so the
//! detector's precision/recall can be validated, something the paper could
//! not do against mainnet.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sandwich_dex::{plan_optimal, swap_ix, victim_min_out, PoolState};
use sandwich_jito::{tip_ix, BlockEngine, Bundle, BundleId, SlotResult};
use sandwich_ledger::{native_sol_mint, Transaction, TransactionBuilder};
use sandwich_types::{Lamports, Pubkey, SlotClock};

use crate::config::{lognormal_clamped, poisson, weighted_choice, ScenarioConfig};
use crate::labels::{
    BenignKind, BundleLabel, BundleProvenance, LabelBook, NearMissFamily, SandwichLabel,
};
use crate::population::Population;
use crate::universe::{PoolRef, Universe};

/// Ground truth for one day.
#[derive(Clone, Debug, Default)]
pub struct DayTruth {
    /// Landed bundles by length (index 0 = length 1).
    pub bundles_by_len: [u64; 5],
    /// Landed sandwich bundles.
    pub sandwiches: u64,
    /// Landed sandwiches with no SOL leg.
    pub non_sol_sandwiches: u64,
    /// Landed sandwiches disguised as length-4 bundles.
    pub disguised_sandwiches: u64,
    /// Landed defensive length-1 bundles.
    pub defensive: u64,
    /// Lamports spent on defensive tips.
    pub defensive_tips_lamports: u64,
    /// Victim losses (SOL-legged sandwiches only), lamports.
    pub victim_loss_lamports: u64,
    /// Attacker gains after tips (SOL-legged only), lamports.
    pub attacker_gain_lamports: i128,
    /// Bundles dropped by the engine (conflicts, failures).
    pub dropped: u64,
}

impl DayTruth {
    /// Total landed bundles.
    pub fn total_bundles(&self) -> u64 {
        self.bundles_by_len.iter().sum()
    }
}

/// Ground truth for the whole run.
#[derive(Default)]
pub struct GroundTruth {
    /// Per-day aggregates.
    pub per_day: Vec<DayTruth>,
    /// Bundle ids of every landed sandwich.
    pub sandwich_ids: HashSet<BundleId>,
    /// Subset of `sandwich_ids` with no SOL leg.
    pub non_sol_sandwich_ids: HashSet<BundleId>,
    /// Bundle ids of every landed defensive bundle.
    pub defensive_ids: HashSet<BundleId>,
    /// Bundle ids of landed disguised (length-4) sandwiches.
    pub disguised_sandwich_ids: HashSet<BundleId>,
}

impl GroundTruth {
    /// Landed sandwiches across all days.
    pub fn total_sandwiches(&self) -> u64 {
        self.per_day.iter().map(|d| d.sandwiches).sum()
    }

    /// Landed defensive bundles across all days.
    pub fn total_defensive(&self) -> u64 {
        self.per_day.iter().map(|d| d.defensive).sum()
    }

    /// Total victim losses in lamports (SOL-legged only).
    pub fn total_victim_loss_lamports(&self) -> u64 {
        self.per_day.iter().map(|d| d.victim_loss_lamports).sum()
    }
}

/// Output of one simulation tick.
pub struct TickOutcome {
    /// Day index.
    pub day: u64,
    /// Tick within the day.
    pub tick: u64,
    /// Everything the engine produced for the tick's slot.
    pub result: SlotResult,
}

/// Cached metric handles for the tick loop.
struct SimMetrics {
    ticks: Arc<sandwich_obs::Counter>,
    slots_produced: Arc<sandwich_obs::Counter>,
    bundles_submitted: Arc<sandwich_obs::Counter>,
    tick_seconds: Arc<sandwich_obs::Histogram>,
}

impl SimMetrics {
    fn new(registry: &sandwich_obs::Registry) -> Self {
        SimMetrics {
            ticks: registry.counter("sim.ticks"),
            slots_produced: registry.counter("sim.slots_produced"),
            bundles_submitted: registry.counter("sim.bundles_submitted"),
            tick_seconds: registry.histogram("sim.tick_seconds"),
        }
    }
}

/// The running simulation.
pub struct Simulation {
    config: ScenarioConfig,
    universe: Universe,
    population: Population,
    engine: BlockEngine,
    rng: StdRng,
    clock: SlotClock,
    tick: u64,
    metrics: Option<SimMetrics>,
    pub(crate) truth: GroundTruth,
    labels: LabelBook,
    colluder_flags: Vec<bool>,
    colluder_ticks_today: u64,
}

impl Simulation {
    /// Build the universe, provision agents, and stand ready to step.
    pub fn new(config: ScenarioConfig) -> Simulation {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut universe = Universe::setup(&config, &mut rng);
        let population = Population::provision(
            &mut universe,
            config.trader_count,
            config.attacker_count,
            config.defender_count,
        );
        let engine =
            BlockEngine::new(universe.bank.clone()).with_schedule(universe.schedule.clone());
        let truth = GroundTruth {
            per_day: vec![DayTruth::default(); config.days as usize],
            ..Default::default()
        };
        let colluder_flags = config.colluder_flags();
        Simulation {
            config,
            universe,
            population,
            engine,
            rng,
            clock: SlotClock::default(),
            tick: 0,
            metrics: None,
            truth,
            labels: LabelBook::new(),
            colluder_flags,
            colluder_ticks_today: 0,
        }
    }

    /// Record driver progress (ticks, slots, submitted bundles, wall-clock
    /// tick durations) into `registry` under the `sim.` prefix, and wire
    /// the block engine (`engine.`) and bank (`bank.`) into the same
    /// registry so one snapshot covers the whole producing side.
    pub fn attach_registry(&mut self, registry: &sandwich_obs::Registry) {
        self.metrics = Some(SimMetrics::new(registry));
        self.engine.attach_metrics(registry);
        self.universe.bank.attach_metrics(registry);
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The slot↔wall-clock mapping used by this run.
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// Ground truth accumulated so far.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Per-bundle labels of every *landed* bundle so far. The labels never
    /// travel through the explorer/collector path — the measured system is
    /// blind to them; consumers join on the bundle id after analysis.
    pub fn labels(&self) -> &LabelBook {
        &self.labels
    }

    /// Current day (the day the *next* tick belongs to).
    pub fn current_day(&self) -> u64 {
        self.tick / self.config.ticks_per_day
    }

    /// Advance one tick; `None` once the measurement period is complete.
    pub fn step(&mut self) -> Option<TickOutcome> {
        let day = self.tick / self.config.ticks_per_day;
        if day >= self.config.days {
            return None;
        }
        let tick_in_day = self.tick % self.config.ticks_per_day;
        if tick_in_day == 0 {
            self.population.top_up(&self.universe);
            // How many of today's slots a colluder leads — the day's
            // sandwich budget is spread over exactly these ticks.
            self.colluder_ticks_today = (0..self.config.ticks_per_day)
                .filter(|&t| {
                    let s = self.config.slot_for(day, t);
                    self.colluder_flags[self.universe.schedule.leader_index_at(s)]
                })
                .count() as u64;
        }

        let slot = self.config.slot_for(day, tick_in_day);
        let leader_index = self.universe.schedule.leader_index_at(slot);
        let leader_is_colluder = self.colluder_flags[leader_index];

        let tpd = self.config.ticks_per_day as f64;
        let mut bundles: Vec<Bundle> = Vec::new();
        let mut pending: HashMap<BundleId, BundleLabel> = HashMap::new();
        let regular: Vec<Transaction> = Vec::new();

        // Sandwiches (they are length-3 bundles; decoys fill the rest).
        // Attackers can only front-run what they can see: sandwiches land
        // exclusively in slots whose leader forwards its mempool view to
        // the private channel. The day's budget is divided over colluder
        // ticks so the expected daily totals match the calibration even
        // though the attacks are concentrated in colluder blocks.
        let sandwich_rate = if leader_is_colluder && self.colluder_ticks_today > 0 {
            self.config.sandwiches_on_day(day) / self.colluder_ticks_today as f64
        } else {
            0.0
        };
        let n_sandwich = poisson(&mut self.rng, sandwich_rate);
        // Concentrating the day's budget into colluder ticks makes
        // multi-sandwich ticks common; each pool is attacked at most once
        // per slot, since a second plan against the same pool would be
        // stale the moment the first bundle executes.
        let mut attacked_pools: HashSet<(Pubkey, Pubkey)> = HashSet::new();
        for _ in 0..n_sandwich {
            self.build_sandwich(&mut bundles, &mut pending, &mut attacked_pools);
        }

        // Length-1: defensive vs priority.
        let n1 = poisson(
            &mut self.rng,
            self.config.bundles_of_length_per_day(1) / tpd,
        );
        let defensive_frac = self.config.defensive_fraction_on_day(day);
        for _ in 0..n1 {
            if self.rng.gen::<f64>() < defensive_frac {
                self.build_defensive(&mut bundles, &mut pending);
            } else {
                self.build_priority(&mut bundles, &mut pending);
            }
        }

        // Length-2 app bundles.
        let n2 = poisson(
            &mut self.rng,
            self.config.bundles_of_length_per_day(2) / tpd,
        );
        for _ in 0..n2 {
            self.build_len2(&mut bundles, &mut pending);
        }

        // Length-3 decoys (length-3 volume minus the sandwich rate).
        let decoy_rate = (self.config.bundles_of_length_per_day(3) / tpd - sandwich_rate).max(0.0);
        let n3 = poisson(&mut self.rng, decoy_rate);
        for _ in 0..n3 {
            self.build_len3_decoy(&mut bundles, &mut pending);
        }

        // Lengths 4 and 5.
        for len in [4usize, 5] {
            let n = poisson(
                &mut self.rng,
                self.config.bundles_of_length_per_day(len) / tpd,
            );
            for _ in 0..n {
                self.build_batch(len, &mut bundles, &mut pending);
            }
        }

        let tick_started = std::time::Instant::now();
        let submitted = bundles.len() as u64;
        let result = self.engine.produce_slot(slot, bundles, regular);
        let provenance = BundleProvenance {
            leader: result.block.leader,
            colluder: leader_is_colluder,
        };
        self.account_truth(day, &pending, &result, provenance);
        if let Some(m) = &self.metrics {
            m.ticks.inc();
            m.slots_produced.inc();
            m.bundles_submitted.add(submitted);
            m.tick_seconds.observe(tick_started.elapsed().as_secs_f64());
        }

        self.tick += 1;
        Some(TickOutcome {
            day,
            tick: tick_in_day,
            result,
        })
    }

    /// Run to completion, feeding every tick to `sink`.
    pub fn run_to_completion<F: FnMut(&TickOutcome)>(&mut self, mut sink: F) {
        while let Some(outcome) = self.step() {
            sink(&outcome);
        }
    }

    fn account_truth(
        &mut self,
        day: u64,
        pending: &HashMap<BundleId, BundleLabel>,
        result: &SlotResult,
        provenance: BundleProvenance,
    ) {
        let truth = &mut self.truth.per_day[day as usize];
        truth.dropped += result.dropped.len() as u64;
        for lb in &result.bundles {
            let len = lb.len().min(5);
            truth.bundles_by_len[len - 1] += 1;
            let label = pending
                .get(&lb.bundle_id)
                .cloned()
                .unwrap_or(BundleLabel::Benign(BenignKind::Batch));
            match &label {
                BundleLabel::Sandwich(intent) => {
                    truth.sandwiches += 1;
                    self.truth.sandwich_ids.insert(lb.bundle_id);
                    if intent.disguised {
                        truth.disguised_sandwiches += 1;
                        self.truth.disguised_sandwich_ids.insert(lb.bundle_id);
                    }
                    if intent.sol_legged {
                        truth.victim_loss_lamports += intent.expected_loss_lamports;
                        truth.attacker_gain_lamports += intent.expected_gain_lamports;
                    } else {
                        truth.non_sol_sandwiches += 1;
                        self.truth.non_sol_sandwich_ids.insert(lb.bundle_id);
                    }
                }
                BundleLabel::Defensive => {
                    truth.defensive += 1;
                    truth.defensive_tips_lamports += lb.tip.0;
                    self.truth.defensive_ids.insert(lb.bundle_id);
                }
                BundleLabel::Benign(_) | BundleLabel::NearMiss(_) => {}
            }
            self.labels.insert(lb.bundle_id, label);
            self.labels.insert_provenance(lb.bundle_id, provenance);
        }
    }

    // ----- agent picks and samplers -------------------------------------

    fn pick(rng: &mut StdRng, agents: &[crate::population::Agent]) -> usize {
        rng.gen_range(0..agents.len())
    }

    fn slippage_bps(&mut self) -> u32 {
        *weighted_choice(
            &mut self.rng,
            &[
                (50u32, 0.22),
                (100, 0.36),
                (200, 0.26),
                (500, 0.13),
                (1_000, 0.03),
            ],
        )
    }

    // ----- bundle builders ----------------------------------------------

    /// Build a sandwich bundle (and occasionally a rival's competing one).
    ///
    /// Not every sampled victim is profitably attackable (tight slippage,
    /// deep pool, small trade) — exactly as on mainnet — so this retries
    /// with fresh samples a few times before giving the event up.
    fn build_sandwich(
        &mut self,
        bundles: &mut Vec<Bundle>,
        pending: &mut HashMap<BundleId, BundleLabel>,
        attacked_pools: &mut HashSet<(Pubkey, Pubkey)>,
    ) {
        // Decide the pool class once so retries cannot skew the SOL /
        // non-SOL mix (SOL plans fail more often than token plans).
        let non_sol = self.rng.gen::<f64>() < self.config.non_sol_sandwich_fraction;
        for _ in 0..8 {
            if self.try_build_sandwich(non_sol, bundles, pending, attacked_pools) {
                return;
            }
        }
    }

    fn try_build_sandwich(
        &mut self,
        non_sol: bool,
        bundles: &mut Vec<Bundle>,
        pending: &mut HashMap<BundleId, BundleLabel>,
        attacked_pools: &mut HashSet<(Pubkey, Pubkey)>,
    ) -> bool {
        let pool_ref: PoolRef = if non_sol && !self.universe.token_pools.is_empty() {
            let i = self.rng.gen_range(0..self.universe.token_pools.len());
            self.universe.token_pools[i].clone()
        } else {
            let i = self.rng.gen_range(0..self.universe.sol_pools.len());
            self.universe.sol_pools[i].clone()
        };
        if attacked_pools.contains(&(pool_ref.mint_a, pool_ref.mint_b)) {
            return false; // already attacked this slot; retry resamples
        }
        let pool = self.universe.pool(&pool_ref);
        let (mint_in, mint_out) = if pool_ref.has_sol_leg {
            (native_sol_mint(), pool_ref.token_of_sol_pool())
        } else if self.rng.gen::<bool>() {
            (pool.mint_x, pool.mint_y)
        } else {
            (pool.mint_y, pool.mint_x)
        };
        let (r_in, _) = match pool.reserves_for(&mint_in) {
            Some(r) => r,
            None => return false,
        };

        let victim_idx = Self::pick(&mut self.rng, &self.population.traders);
        let victim_pk = self.population.traders[victim_idx].pubkey();
        let victim_in = if pool_ref.has_sol_leg {
            // Log-normal sizes, capped at 5% of the reserve and at what
            // the victim can afford. Trades below the pool's profitability
            // threshold (~0.6% of the reserve with a 30 bps LP fee) simply
            // fail planning and the retry loop resamples — attackers skip
            // unattractive victims rather than inflating their size.
            let sol = lognormal_clamped(&mut self.rng, 0.35, 1.6, 0.02, 300.0);
            let affordable = self.universe.bank.lamports(&victim_pk).0 / 2;
            ((sol * 1e9) as u64)
                .min(r_in / 12)
                .min(affordable)
                .max(1_000_000)
        } else {
            let frac = lognormal_clamped(&mut self.rng, 0.012, 0.8, 0.002, 0.04);
            let affordable = self.universe.bank.token_balance(&victim_pk, &mint_in) / 2;
            let amount = ((r_in as f64 * frac) as u64).min(affordable);
            if amount < 1_000 {
                return false;
            }
            amount
        };
        let slippage = self.slippage_bps();
        let min_out = match victim_min_out(&pool, &mint_in, victim_in, slippage) {
            Some(m) if m > 0 => m,
            _ => return false,
        };

        let attacker_idx = Self::pick(&mut self.rng, &self.population.attackers);

        let victim_nonce = self.population.traders[victim_idx].next_nonce();
        let victim_tx = TransactionBuilder::new(self.population.traders[victim_idx].keypair)
            .nonce(victim_nonce)
            .recent_blockhash(self.universe.bank.latest_blockhash())
            .instruction(swap_ix(mint_in, mint_out, victim_in, min_out))
            .build();

        let primary = self.plan_attack(
            &pool,
            &pool_ref,
            mint_in,
            mint_out,
            victim_in,
            min_out,
            &victim_tx,
            attacker_idx,
            1.0,
        );
        let Some((bundle, mut intent)) = primary else {
            return false;
        };
        // Occasionally disguise the attack behind an appended unrelated
        // transaction — a length-4 bundle the paper's length-3 methodology
        // cannot see (its counts are explicitly a lower bound, §3.2).
        let bundle = if self.rng.gen::<f64>() < self.config.disguised_sandwich_probability {
            let from = Self::pick(&mut self.rng, &self.population.traders);
            let to = Self::pick(&mut self.rng, &self.population.traders);
            let to_pk = self.population.traders[to].pubkey();
            let blockhash = self.universe.bank.latest_blockhash();
            let agent = &mut self.population.traders[from];
            let nonce = agent.next_nonce();
            let extra = TransactionBuilder::new(agent.keypair)
                .nonce(nonce)
                .recent_blockhash(blockhash)
                .transfer(to_pk, Lamports(2_000_000))
                .build();
            let mut txs = bundle.transactions.clone();
            txs.push(extra);
            match Bundle::new(txs) {
                Ok(disguised) => {
                    intent.disguised = true;
                    disguised
                }
                Err(_) => bundle,
            }
        } else {
            bundle
        };
        pending.insert(bundle.id(), BundleLabel::Sandwich(intent));
        bundles.push(bundle);
        attacked_pools.insert((pool_ref.mint_a, pool_ref.mint_b));

        // Occasionally a rival contends for the same victim with a smaller
        // bankroll and its own tip — only one can land.
        if self.rng.gen::<f64>() < self.config.rival_attacker_probability
            && self.population.attackers.len() > 1
        {
            let mut rival_idx = Self::pick(&mut self.rng, &self.population.attackers);
            if rival_idx == attacker_idx {
                rival_idx = (rival_idx + 1) % self.population.attackers.len();
            }
            if let Some((bundle, intent)) = self.plan_attack(
                &pool, &pool_ref, mint_in, mint_out, victim_in, min_out, &victim_tx, rival_idx,
                0.25,
            ) {
                pending.insert(bundle.id(), BundleLabel::Sandwich(intent));
                bundles.push(bundle);
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_attack(
        &mut self,
        pool: &PoolState,
        pool_ref: &PoolRef,
        mint_in: Pubkey,
        mint_out: Pubkey,
        victim_in: u64,
        min_out: u64,
        victim_tx: &Transaction,
        attacker_idx: usize,
        bankroll_fraction: f64,
    ) -> Option<(Bundle, SandwichLabel)> {
        let attacker_pk = self.population.attackers[attacker_idx].pubkey();
        let bankroll_full = if mint_in == native_sol_mint() {
            self.universe
                .bank
                .lamports(&attacker_pk)
                .saturating_sub(Lamports::from_sol(10.0))
                .0
        } else {
            self.universe.bank.token_balance(&attacker_pk, &mint_in)
        };
        let bankroll = (bankroll_full as f64 * bankroll_fraction) as u64;
        let min_profit: i128 = if pool_ref.has_sol_leg { 100_000 } else { 1 };
        let plan = plan_optimal(pool, &mint_in, victim_in, min_out, bankroll, min_profit)?;

        // Tip: a share of expected profit for SOL pools (bid shading); a
        // heavy log-normal for unpriceable token pools. This is what makes
        // sandwich tips sit orders of magnitude above app-bundle tips
        // (Figure 4).
        let tip = if pool_ref.has_sol_leg {
            let share = 0.08 + self.rng.gen::<f64>() * 0.22;
            let t = (plan.gross_profit as f64 * share) as u64;
            t.clamp(
                150_000,
                (plan.gross_profit as u64)
                    .saturating_sub(50_000)
                    .max(150_000),
            )
        } else {
            lognormal_clamped(&mut self.rng, 2_200_000.0, 0.8, 300_000.0, 60_000_000.0) as u64
        };

        // Some attackers dump extra inventory in the back-run, selling more
        // than the front-run bought (the paper's footnote 7). That is why
        // mainnet attacker gains exceed victim losses in aggregate.
        let mut back_sell = plan.front_run_out;
        let mut gross_gain = plan.gross_profit;
        if pool_ref.has_sol_leg && self.rng.gen::<f64>() < 0.10 {
            let extra_frac = 0.05 + self.rng.gen::<f64>() * 0.3;
            let extra = ((plan.front_run_out as f64 * extra_frac) as u64)
                .min(self.universe.bank.token_balance(&attacker_pk, &mint_out) / 2);
            if extra > 0 {
                let mut p2 = pool.clone();
                p2.apply(&mint_in, plan.front_run_in, plan.front_run_out);
                p2.apply(&mint_in, victim_in, plan.victim_out);
                if let Some(total_out) = p2.quote(&mint_out, plan.front_run_out + extra) {
                    back_sell = plan.front_run_out + extra;
                    gross_gain = total_out as i128 - plan.front_run_in as i128;
                }
            }
        }

        let blockhash = self.universe.bank.latest_blockhash();
        let attacker = &mut self.population.attackers[attacker_idx];
        let front = TransactionBuilder::new(attacker.keypair)
            .nonce(attacker.next_nonce())
            .recent_blockhash(blockhash)
            .instruction(swap_ix(mint_in, mint_out, plan.front_run_in, 0))
            .build();
        let back_nonce = attacker.next_nonce();
        let back = TransactionBuilder::new(attacker.keypair)
            .nonce(back_nonce)
            .recent_blockhash(blockhash)
            .instruction(swap_ix(mint_out, mint_in, back_sell, 0))
            .instruction(tip_ix(Lamports(tip), back_nonce))
            .build();

        let victim_pk = victim_tx.signer();
        let bundle = Bundle::new(vec![front, victim_tx.clone(), back]).ok()?;
        let intent = if pool_ref.has_sol_leg {
            // Same methodology as the paper's quantification (§4.1): the
            // attacker's realized rate times the victim's volume is the
            // price the victim would have paid unsandwiched.
            let rate_a = plan.front_run_in as f64 / plan.front_run_out.max(1) as f64;
            let loss = (victim_in as f64 - rate_a * plan.victim_out as f64).max(0.0);
            SandwichLabel {
                attacker: attacker_pk,
                victim: victim_pk,
                sol_legged: true,
                disguised: false,
                expected_loss_lamports: loss as u64,
                expected_gain_lamports: gross_gain - tip as i128,
            }
        } else {
            SandwichLabel {
                attacker: attacker_pk,
                victim: victim_pk,
                sol_legged: false,
                disguised: false,
                expected_loss_lamports: 0,
                expected_gain_lamports: 0,
            }
        };
        Some((bundle, intent))
    }

    /// A defensive self-bundle: one transaction, tiny tip (≤ 100k lamports).
    fn build_defensive(
        &mut self,
        bundles: &mut Vec<Bundle>,
        pending: &mut HashMap<BundleId, BundleLabel>,
    ) {
        let idx = Self::pick(&mut self.rng, &self.population.defenders);
        let tip = lognormal_clamped(&mut self.rng, 7_000.0, 1.0, 1_000.0, 100_000.0) as u64;
        let do_swap = self.rng.gen::<f64>() < 0.3;
        let blockhash = self.universe.bank.latest_blockhash();

        let (swap_instr, transfer_to) = if do_swap {
            let p = &self.universe.sol_pools[self.rng.gen_range(0..self.universe.sol_pools.len())];
            let amount = (lognormal_clamped(&mut self.rng, 0.05, 1.0, 0.001, 2.0) * 1e9) as u64;
            (
                Some(swap_ix(native_sol_mint(), p.token_of_sol_pool(), amount, 0)),
                None,
            )
        } else {
            let other = Self::pick(&mut self.rng, &self.population.defenders);
            let amount = (lognormal_clamped(&mut self.rng, 0.01, 1.0, 0.0005, 0.5) * 1e9) as u64;
            (
                None,
                Some((self.population.defenders[other].pubkey(), amount)),
            )
        };

        let agent = &mut self.population.defenders[idx];
        let nonce = agent.next_nonce();
        let mut b = TransactionBuilder::new(agent.keypair)
            .nonce(nonce)
            .recent_blockhash(blockhash);
        if let Some(ix) = swap_instr {
            b = b.instruction(ix);
        }
        if let Some((to, amount)) = transfer_to {
            b = b.transfer(to, Lamports(amount));
        }
        let tx = b.instruction(tip_ix(Lamports(tip), nonce)).build();
        if let Ok(bundle) = Bundle::new(vec![tx]) {
            pending.insert(bundle.id(), BundleLabel::Defensive);
            bundles.push(bundle);
        }
    }

    /// A priority length-1 bundle: real tip above the defensive threshold.
    fn build_priority(
        &mut self,
        bundles: &mut Vec<Bundle>,
        pending: &mut HashMap<BundleId, BundleLabel>,
    ) {
        let idx = Self::pick(&mut self.rng, &self.population.traders);
        let tip = lognormal_clamped(&mut self.rng, 500_000.0, 1.2, 100_001.0, 30_000_000.0) as u64;
        let p = &self.universe.sol_pools[self.rng.gen_range(0..self.universe.sol_pools.len())];
        let token = p.token_of_sol_pool();
        let amount = (lognormal_clamped(&mut self.rng, 0.5, 1.2, 0.01, 50.0) * 1e9) as u64;
        let blockhash = self.universe.bank.latest_blockhash();
        let agent = &mut self.population.traders[idx];
        let nonce = agent.next_nonce();
        let tx = TransactionBuilder::new(agent.keypair)
            .nonce(nonce)
            .recent_blockhash(blockhash)
            .instruction(swap_ix(native_sol_mint(), token, amount, 0))
            .instruction(tip_ix(Lamports(tip), nonce))
            .build();
        if let Ok(bundle) = Bundle::new(vec![tx]) {
            pending.insert(bundle.id(), BundleLabel::Benign(BenignKind::Priority));
            bundles.push(bundle);
        }
    }

    /// A length-2 app bundle: user action plus a separate tip transaction.
    fn build_len2(
        &mut self,
        bundles: &mut Vec<Bundle>,
        pending: &mut HashMap<BundleId, BundleLabel>,
    ) {
        let idx = Self::pick(&mut self.rng, &self.population.traders);
        let p = &self.universe.sol_pools[self.rng.gen_range(0..self.universe.sol_pools.len())];
        let token = p.token_of_sol_pool();
        let amount = (lognormal_clamped(&mut self.rng, 0.2, 1.0, 0.005, 20.0) * 1e9) as u64;
        let tip = lognormal_clamped(&mut self.rng, 1_500.0, 0.8, 1_000.0, 20_000.0) as u64;
        let blockhash = self.universe.bank.latest_blockhash();
        let agent = &mut self.population.traders[idx];
        let n1 = agent.next_nonce();
        let n2 = agent.next_nonce();
        let swap_tx = TransactionBuilder::new(agent.keypair)
            .nonce(n1)
            .recent_blockhash(blockhash)
            .instruction(swap_ix(native_sol_mint(), token, amount, 0))
            .build();
        let tip_tx = TransactionBuilder::new(agent.keypair)
            .nonce(n2)
            .recent_blockhash(blockhash)
            .instruction(tip_ix(Lamports(tip), n2))
            .build();
        if let Ok(bundle) = Bundle::new(vec![swap_tx, tip_tx]) {
            pending.insert(bundle.id(), BundleLabel::Benign(BenignKind::AppPair));
            bundles.push(bundle);
        }
    }

    /// Length-3 bundles that are *not* sandwiches, in the proportions that
    /// exercise each detection criterion (DESIGN.md §4 ablation).
    fn build_len3_decoy(
        &mut self,
        bundles: &mut Vec<Bundle>,
        pending: &mut HashMap<BundleId, BundleLabel>,
    ) {
        let kind = *weighted_choice(
            &mut self.rng,
            &[
                ("swap_swap_tip", 0.40),
                ("three_unrelated", 0.22),
                ("unprofitable_exit", 0.12),
                ("disjoint_exit", 0.10),
                ("third_party_backrun", 0.08),
                ("rate_for_victim", 0.08),
            ],
        );
        let blockhash = self.universe.bank.latest_blockhash();
        let tip = lognormal_clamped(&mut self.rng, 900.0, 0.6, 1_000.0, 10_000.0) as u64;
        let pool_count = self.universe.sol_pools.len();

        let swap_tx =
            |sim: &mut Self, trader_idx: usize, pool_idx: usize, buy: bool, amount_sol: f64| {
                let p = &sim.universe.sol_pools[pool_idx];
                let token = p.token_of_sol_pool();
                let agent = &mut sim.population.traders[trader_idx];
                let nonce = agent.next_nonce();
                let ix = if buy {
                    swap_ix(native_sol_mint(), token, (amount_sol * 1e9) as u64, 0)
                } else {
                    // Sell a small stock of the token.
                    let held = sim
                        .universe
                        .bank
                        .token_balance(&agent.keypair.pubkey(), &token);
                    swap_ix(token, native_sol_mint(), (held / 1_000).max(1_000), 0)
                };
                TransactionBuilder::new(agent.keypair)
                    .nonce(nonce)
                    .recent_blockhash(blockhash)
                    .instruction(ix)
                    .build()
            };

        let (txs, label) = match kind {
            "swap_swap_tip" => {
                // Two swaps by different users; final transaction is ONLY a
                // tip — criterion 5 must exclude this.
                let t1 = Self::pick(&mut self.rng, &self.population.traders);
                let mut t2 = Self::pick(&mut self.rng, &self.population.traders);
                if t2 == t1 {
                    t2 = (t2 + 1) % self.population.traders.len();
                }
                let p1 = self.rng.gen_range(0..pool_count);
                let a = swap_tx(self, t1, p1, true, 0.1);
                let b = swap_tx(self, t2, p1, true, 0.05);
                let agent = &mut self.population.traders[t1];
                let nonce = agent.next_nonce();
                let c = TransactionBuilder::new(agent.keypair)
                    .nonce(nonce)
                    .recent_blockhash(blockhash)
                    .instruction(tip_ix(Lamports(tip), nonce))
                    .build();
                (
                    vec![a, b, c],
                    BundleLabel::NearMiss(NearMissFamily::TipOnlyFinal),
                )
            }
            "three_unrelated" => {
                // Three different signers, three different pools — fails
                // criterion 1 (and 2). Tip rides on the last swap.
                let mut txs = Vec::new();
                for k in 0..3 {
                    let t = Self::pick(&mut self.rng, &self.population.traders);
                    let p = self.rng.gen_range(0..pool_count);
                    let mut tx = swap_tx(self, t, p, true, 0.05 + 0.01 * k as f64);
                    if k == 2 {
                        // Rebuild with tip appended.
                        let agent_idx = self
                            .population
                            .traders
                            .iter()
                            .position(|a| a.pubkey() == tx.signer())
                            .unwrap();
                        let agent = &mut self.population.traders[agent_idx];
                        let nonce = agent.next_nonce();
                        tx = TransactionBuilder::new(agent.keypair)
                            .nonce(nonce)
                            .recent_blockhash(blockhash)
                            .instruction(tx.message.instructions[0].clone())
                            .instruction(tip_ix(Lamports(tip), nonce))
                            .build();
                    }
                    txs.push(tx);
                }
                (txs, BundleLabel::Benign(BenignKind::UnrelatedSwaps))
            }
            "disjoint_exit" => {
                // A buys pool 1, B buys pool 1 at a worse rate, then A exits
                // by selling a *different* pool's token for more SOL than the
                // entry cost. Signers match, the rate moved against B, and
                // the exit is profitable — only the traded-currency-set
                // criterion (2) rejects it.
                let t_a = Self::pick(&mut self.rng, &self.population.traders);
                let mut t_b = Self::pick(&mut self.rng, &self.population.traders);
                if t_b == t_a {
                    t_b = (t_b + 1) % self.population.traders.len();
                }
                let p1 = self.rng.gen_range(0..pool_count);
                let mut p2 = self.rng.gen_range(0..pool_count);
                if p2 == p1 {
                    p2 = (p2 + 1) % pool_count;
                }
                let entry = 20_000_000u64; // 0.02 SOL
                let a1 = swap_tx(self, t_a, p1, true, entry as f64 / 1e9);
                let b = swap_tx(self, t_b, p1, true, 0.05);
                let sol = native_sol_mint();
                let token2 = self.universe.sol_pools[p2].token_of_sol_pool();
                let pool2 = self.universe.pool(&self.universe.sol_pools[p2].clone());
                let agent = &mut self.population.traders[t_a];
                let held = self
                    .universe
                    .bank
                    .token_balance(&agent.keypair.pubkey(), &token2);
                // Size the sell so SOL proceeds comfortably clear the entry
                // cost plus fees and tip; quote is monotone, so double until
                // it does (bounded by half the held stock).
                let needed = entry + tip + 20_000;
                let (r_sol2, r_tok2) = pool2.reserves_for(&sol).unwrap_or((1, 1));
                let mut sell =
                    ((needed as f64 * 3.0) * r_tok2 as f64 / r_sol2.max(1) as f64) as u64;
                sell = sell.clamp(1_000, (held / 2).max(1_000));
                for _ in 0..4 {
                    match pool2.quote(&token2, sell) {
                        Some(q) if q >= needed * 2 => break,
                        _ => sell = sell.saturating_mul(2).min((held / 2).max(1_000)),
                    }
                }
                let nonce = agent.next_nonce();
                let a2 = TransactionBuilder::new(agent.keypair)
                    .nonce(nonce)
                    .recent_blockhash(blockhash)
                    .instruction(swap_ix(token2, sol, sell, 0))
                    .instruction(tip_ix(Lamports(tip), nonce))
                    .build();
                (
                    vec![a1, b, a2],
                    BundleLabel::NearMiss(NearMissFamily::DisjointCurrencies),
                )
            }
            "third_party_backrun" => {
                // Two different buyers followed by an unrelated profit-
                // taking seller — sandwich-shaped price action with three
                // distinct signers. Only criterion 1 rejects it.
                let t1 = Self::pick(&mut self.rng, &self.population.traders);
                let mut t2 = Self::pick(&mut self.rng, &self.population.traders);
                if t2 == t1 {
                    t2 = (t2 + 1) % self.population.traders.len();
                }
                let mut t3 = Self::pick(&mut self.rng, &self.population.traders);
                while t3 == t1 || t3 == t2 {
                    t3 = (t3 + 1) % self.population.traders.len();
                }
                let p1 = self.rng.gen_range(0..pool_count);
                let pool = self.universe.pool(&self.universe.sol_pools[p1].clone());
                let sol = native_sol_mint();
                let (r_sol, _) = pool.reserves_for(&sol).unwrap();
                let a1 = (r_sol / 500).max(1_000_000); // small first buy
                let q1 = pool.quote(&sol, a1).unwrap_or(1_000);
                let a2 = r_sol / 10; // big middle buy pumps the price

                let token = self.universe.sol_pools[p1].token_of_sol_pool();
                let tx1 = {
                    let agent = &mut self.population.traders[t1];
                    let nonce = agent.next_nonce();
                    TransactionBuilder::new(agent.keypair)
                        .nonce(nonce)
                        .recent_blockhash(blockhash)
                        .instruction(swap_ix(sol, token, a1, 0))
                        .build()
                };
                let tx2 = {
                    let agent = &mut self.population.traders[t2];
                    let nonce = agent.next_nonce();
                    TransactionBuilder::new(agent.keypair)
                        .nonce(nonce)
                        .recent_blockhash(blockhash)
                        .instruction(swap_ix(sol, token, a2, 0))
                        .build()
                };
                let tx3 = {
                    let agent = &mut self.population.traders[t3];
                    let held = self
                        .universe
                        .bank
                        .token_balance(&agent.keypair.pubkey(), &token);
                    let sell = ((q1 as f64 * 0.9) as u64).min(held / 2).max(1_000);
                    let nonce = agent.next_nonce();
                    TransactionBuilder::new(agent.keypair)
                        .nonce(nonce)
                        .recent_blockhash(blockhash)
                        .instruction(swap_ix(token, sol, sell, 0))
                        .instruction(tip_ix(Lamports(tip), nonce))
                        .build()
                };
                (
                    vec![tx1, tx2, tx3],
                    BundleLabel::NearMiss(NearMissFamily::DifferentOuterSigner),
                )
            }
            "rate_for_victim" => {
                // A *sells* first — improving B's subsequent buy rate — then
                // B buys, then A re-buys more tokens than it sold. A ends the
                // bundle inventory-positive (profitable by the proceeds
                // branch), so only the rate-direction criterion (3) rejects
                // it: the first trade moved the rate *for* the victim.
                let t_a = Self::pick(&mut self.rng, &self.population.traders);
                let mut t_b = Self::pick(&mut self.rng, &self.population.traders);
                if t_b == t_a {
                    t_b = (t_b + 1) % self.population.traders.len();
                }
                let p1 = self.rng.gen_range(0..pool_count);
                let sol = native_sol_mint();
                let token = self.universe.sol_pools[p1].token_of_sol_pool();
                let pool = self.universe.pool(&self.universe.sol_pools[p1].clone());
                let (r_sol, r_tok) = pool.reserves_for(&sol).unwrap_or((1, 1));
                let agent_pk = self.population.traders[t_a].pubkey();
                let held = self.universe.bank.token_balance(&agent_pk, &token);
                let sold = (r_tok / 2_000).clamp(1_000, (held / 2).max(1_000));
                // Spend enough SOL to re-buy strictly more than was sold,
                // with headroom for the LP fee and B's price push.
                let mut spend = ((sold as f64 * 1.3) * r_sol as f64 / r_tok.max(1) as f64) as u64;
                spend = spend.clamp(1_000_000, 20_000_000_000);
                for _ in 0..4 {
                    match pool.quote(&sol, spend) {
                        Some(q) if q > sold + sold / 10 => break,
                        _ => spend = spend.saturating_mul(2).min(20_000_000_000),
                    }
                }
                let a1 = {
                    let agent = &mut self.population.traders[t_a];
                    let nonce = agent.next_nonce();
                    TransactionBuilder::new(agent.keypair)
                        .nonce(nonce)
                        .recent_blockhash(blockhash)
                        .instruction(swap_ix(token, sol, sold, 0))
                        .build()
                };
                let b = swap_tx(self, t_b, p1, true, 0.05);
                let agent = &mut self.population.traders[t_a];
                let nonce = agent.next_nonce();
                let a2 = TransactionBuilder::new(agent.keypair)
                    .nonce(nonce)
                    .recent_blockhash(blockhash)
                    .instruction(swap_ix(sol, token, spend, 0))
                    .instruction(tip_ix(Lamports(tip), nonce))
                    .build();
                (
                    vec![a1, b, a2],
                    BundleLabel::NearMiss(NearMissFamily::RateMovedForVictim),
                )
            }
            _ => {
                // "unprofitable_exit": sandwich-shaped — A buys, B buys at a
                // worse rate, A sells — but A dumps only a third of the
                // acquired inventory, so the SOL proceeds sit far below the
                // entry cost. Both profit branches of criterion 4 fail;
                // everything else holds.
                let t_a = Self::pick(&mut self.rng, &self.population.traders);
                let mut t_b = Self::pick(&mut self.rng, &self.population.traders);
                if t_b == t_a {
                    t_b = (t_b + 1) % self.population.traders.len();
                }
                let p1 = self.rng.gen_range(0..pool_count);
                let sol = native_sol_mint();
                let token = self.universe.sol_pools[p1].token_of_sol_pool();
                let pool = self.universe.pool(&self.universe.sol_pools[p1].clone());
                let entry = 60_000_000u64; // 0.06 SOL
                let q_est = pool.quote(&sol, entry).unwrap_or(3_000);
                let a1 = swap_tx(self, t_a, p1, true, entry as f64 / 1e9);
                let b = swap_tx(self, t_b, p1, true, 0.05);
                let agent = &mut self.population.traders[t_a];
                let nonce = agent.next_nonce();
                let a2 = TransactionBuilder::new(agent.keypair)
                    .nonce(nonce)
                    .recent_blockhash(blockhash)
                    .instruction(swap_ix(token, sol, (q_est / 3).max(1_000), 0))
                    .instruction(tip_ix(Lamports(tip), nonce))
                    .build();
                (
                    vec![a1, b, a2],
                    BundleLabel::NearMiss(NearMissFamily::UnprofitableAttacker),
                )
            }
        };

        if let Ok(bundle) = Bundle::new(txs) {
            pending.insert(bundle.id(), label);
            bundles.push(bundle);
        }
    }

    /// Length-4/5 app batches: transfers plus a tip on the first move.
    fn build_batch(
        &mut self,
        len: usize,
        bundles: &mut Vec<Bundle>,
        pending: &mut HashMap<BundleId, BundleLabel>,
    ) {
        let tip = lognormal_clamped(&mut self.rng, 2_000.0, 0.8, 1_000.0, 50_000.0) as u64;
        let blockhash = self.universe.bank.latest_blockhash();
        let mut txs = Vec::with_capacity(len);
        for k in 0..len {
            let from = Self::pick(&mut self.rng, &self.population.traders);
            let to = Self::pick(&mut self.rng, &self.population.traders);
            let to_pk = self.population.traders[to].pubkey();
            let agent = &mut self.population.traders[from];
            let nonce = agent.next_nonce();
            let mut b = TransactionBuilder::new(agent.keypair)
                .nonce(nonce)
                .recent_blockhash(blockhash)
                .transfer(to_pk, Lamports(1_000_000 + nonce % 1_000));
            if k == 0 {
                b = b.instruction(tip_ix(Lamports(tip), nonce));
            }
            txs.push(b.build());
        }
        if let Ok(bundle) = Bundle::new(txs) {
            pending.insert(bundle.id(), BundleLabel::Benign(BenignKind::Batch));
            bundles.push(bundle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_runs_and_produces_everything() {
        let config = ScenarioConfig::tiny();
        let days = config.days;
        let mut sim = Simulation::new(config);
        let mut ticks = 0u64;
        let mut landed_bundles = 0u64;
        sim.run_to_completion(|o| {
            ticks += 1;
            landed_bundles += o.result.bundles.len() as u64;
        });
        assert_eq!(ticks, days * sim.config().ticks_per_day);

        let truth = sim.truth();
        assert_eq!(truth.per_day.len(), days as usize);
        let total: u64 = truth.per_day.iter().map(|d| d.total_bundles()).sum();
        assert_eq!(total, landed_bundles);
        assert!(truth.total_sandwiches() > 0, "some sandwiches landed");
        assert!(truth.total_defensive() > 0, "some defensive bundles landed");
        assert!(truth.total_victim_loss_lamports() > 0);

        // Length-1 dominates, as in Figure 1.
        let by_len: [u64; 5] = truth.per_day.iter().fold([0; 5], |mut acc, d| {
            for (slot, count) in acc.iter_mut().zip(d.bundles_by_len) {
                *slot += count;
            }
            acc
        });
        assert!(by_len[0] > total / 2, "len-1 majority: {by_len:?}");
        // Length-3 present, includes sandwiches and decoys.
        assert!(by_len[2] >= truth.total_sandwiches());
    }

    #[test]
    fn sandwich_rate_decays_across_days() {
        let mut config = ScenarioConfig::tiny();
        config.days = 2;
        config.volume_scale = 1.0 / 1_000.0;
        config.sandwiches_day_first = 12_000.0;
        config.sandwiches_day_last = 1_000.0;
        let mut sim = Simulation::new(config);
        sim.run_to_completion(|_| {});
        let truth = sim.truth();
        assert!(
            truth.per_day[0].sandwiches > truth.per_day[1].sandwiches,
            "day0={} day1={}",
            truth.per_day[0].sandwiches,
            truth.per_day[1].sandwiches
        );
    }

    #[test]
    fn sandwiches_only_land_in_colluder_led_slots() {
        let config = ScenarioConfig::tiny();
        let flags = config.colluder_flags();
        let mut sim = Simulation::new(config);
        let mut sandwich_slots: Vec<sandwich_types::Slot> = Vec::new();
        let mut colluder_blocks = 0u64;
        let mut honest_blocks = 0u64;
        let schedule = sim.universe.schedule.clone();
        while let Some(outcome) = sim.step() {
            let slot = outcome.result.block.slot;
            if flags[schedule.leader_index_at(slot)] {
                colluder_blocks += 1;
            } else {
                honest_blocks += 1;
            }
            for lb in &outcome.result.bundles {
                if sim.labels().get(&lb.bundle_id).unwrap().is_sandwich() {
                    sandwich_slots.push(slot);
                }
            }
        }
        assert!(
            colluder_blocks > 0 && honest_blocks > 0,
            "both leader kinds produced"
        );
        assert!(!sandwich_slots.is_empty(), "some sandwiches landed");
        for slot in sandwich_slots {
            assert!(
                flags[schedule.leader_index_at(slot)],
                "sandwich landed in honest-led {slot}"
            );
        }
        // Provenance is recorded for every landed sandwich and names the
        // scheduled leader of its slot.
        for id in sim.truth().sandwich_ids.iter() {
            let prov = sim.labels().provenance(id).expect("provenance recorded");
            assert!(prov.colluder);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut config = ScenarioConfig::tiny();
            config.days = 1;
            config.seed = seed;
            let mut sim = Simulation::new(config);
            sim.run_to_completion(|_| {});
            (
                sim.truth().total_sandwiches(),
                sim.truth().total_defensive(),
                sim.truth().total_victim_loss_lamports(),
            )
        };
        assert_eq!(run(42), run(42));
    }
}
