//! The market universe: token mints and AMM pools on a fresh bank.

use std::sync::Arc;

use rand::Rng;

use sandwich_attrib::LeaderSchedule;
use sandwich_dex::{create_pool_ix, AmmProgram, PoolState};
use sandwich_ledger::{native_sol_mint, Bank, Instruction, TokenInstruction, TransactionBuilder};
use sandwich_types::{Keypair, Lamports, Pubkey, Slot};

use crate::config::{lognormal_clamped, ScenarioConfig};

/// One tradable pool: its pair and whether it has a SOL leg.
#[derive(Clone, Debug)]
pub struct PoolRef {
    /// One side of the pair.
    pub mint_a: Pubkey,
    /// The other side.
    pub mint_b: Pubkey,
    /// Whether either side is native SOL.
    pub has_sol_leg: bool,
}

impl PoolRef {
    /// The non-SOL mint of a SOL pool.
    pub fn token_of_sol_pool(&self) -> Pubkey {
        if self.mint_a == native_sol_mint() {
            self.mint_b
        } else {
            self.mint_a
        }
    }
}

/// The world the agents trade in.
pub struct Universe {
    /// The bank every transaction executes against.
    pub bank: Arc<Bank>,
    /// The stake-weighted leader schedule over the scenario's validators.
    pub schedule: Arc<LeaderSchedule>,
    /// All token mints.
    pub mints: Vec<Pubkey>,
    /// SOL/token pools.
    pub sol_pools: Vec<PoolRef>,
    /// Token/token pools.
    pub token_pools: Vec<PoolRef>,
    /// The authority that created all mints (can top up agents).
    pub authority: Keypair,
    nonce: u64,
}

impl Universe {
    /// Build mints and pools per the scenario config.
    ///
    /// The validator identity set is schedule-driven: the scenario seed and
    /// `validator_count` derive a stake-weighted set via `sandwich-attrib`,
    /// replacing the old single hard-coded `leader-validator` keypair. The
    /// bank's fee destination is the leader of slot 0.
    ///
    /// Signature verification is disabled on the bank: forging is not in
    /// the measured threat model, and a 120-day run executes millions of
    /// transactions.
    pub fn setup<R: Rng>(config: &ScenarioConfig, rng: &mut R) -> Universe {
        let schedule = Arc::new(LeaderSchedule::new(&config.validator_spec()));
        let validator = schedule.leader_at(Slot::GENESIS);
        let bank = Arc::new(Bank::new(validator).with_signature_verification(false));
        bank.register_program(Arc::new(AmmProgram));

        let authority = Keypair::from_label("universe-authority");
        bank.airdrop(authority.pubkey(), Lamports::from_sol(100_000_000.0));

        let mut u = Universe {
            bank,
            schedule,
            mints: Vec::new(),
            sol_pools: Vec::new(),
            token_pools: Vec::new(),
            authority,
            nonce: 0,
        };

        let mint_count = config.sol_pool_count.max(2);
        for i in 0..mint_count {
            u.create_mint(&format!("TOK{i:03}"));
        }

        // SOL pools with log-normally distributed liquidity. Memecoin pools
        // are shallow (tens of SOL) — that shallowness is what makes
        // sandwiching profitable: with a 30 bps LP fee, an attack only pays
        // when the victim trades more than ~0.6% of the reserve.
        for i in 0..config.sol_pool_count {
            let mint = u.mints[i];
            let sol_liq = lognormal_clamped(rng, 30.0, 1.0, 3.0, 600.0);
            let sol_reserve = (sol_liq * 1e9) as u64;
            let token_reserve =
                (sol_reserve as f64 * lognormal_clamped(rng, 50.0, 1.0, 2.0, 5_000.0)) as u64;
            u.create_pool(native_sol_mint(), sol_reserve, mint, token_reserve);
            u.sol_pools.push(PoolRef {
                mint_a: native_sol_mint(),
                mint_b: mint,
                has_sol_leg: true,
            });
        }

        // Token–token pools over random distinct mint pairs.
        let mut made = std::collections::HashSet::new();
        while u.token_pools.len() < config.token_pool_count && u.mints.len() >= 2 {
            let i = rng.gen_range(0..u.mints.len());
            let j = rng.gen_range(0..u.mints.len());
            if i == j {
                continue;
            }
            let (a, b) = PoolState::canonical_pair(u.mints[i], u.mints[j]);
            if !made.insert((a, b)) {
                continue;
            }
            let reserve_a = (lognormal_clamped(rng, 1e12, 1.0, 1e10, 1e14)) as u64;
            let reserve_b = (lognormal_clamped(rng, 1e12, 1.0, 1e10, 1e14)) as u64;
            u.create_pool(a, reserve_a, b, reserve_b);
            u.token_pools.push(PoolRef {
                mint_a: a,
                mint_b: b,
                has_sol_leg: false,
            });
        }

        u
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce += 1;
        self.nonce
    }

    fn create_mint(&mut self, symbol: &str) {
        let mint = Pubkey::derive(&format!("mint:{symbol}"));
        let nonce = self.next_nonce();
        let tx = TransactionBuilder::new(self.authority)
            .nonce(nonce)
            .instruction(Instruction::Token(TokenInstruction::CreateMint {
                mint,
                decimals: 6,
                symbol: symbol.to_string(),
            }))
            .instruction(Instruction::Token(TokenInstruction::MintTo {
                mint,
                to: self.authority.pubkey(),
                amount: u64::MAX / 4,
            }))
            .build();
        let meta = self.bank.execute_transaction(&tx).expect("mint setup");
        assert!(meta.success, "mint setup failed: {:?}", meta.error);
        self.mints.push(mint);
    }

    fn create_pool(&mut self, mint_a: Pubkey, amount_a: u64, mint_b: Pubkey, amount_b: u64) {
        let nonce = self.next_nonce();
        let tx = TransactionBuilder::new(self.authority)
            .nonce(nonce)
            .instruction(create_pool_ix(mint_a, amount_a, mint_b, amount_b, 30))
            .build();
        let meta = self.bank.execute_transaction(&tx).expect("pool setup");
        assert!(meta.success, "pool setup failed: {:?}", meta.error);
    }

    /// Current state of a pool.
    pub fn pool(&self, r: &PoolRef) -> PoolState {
        sandwich_dex::pool_state(&self.bank, &r.mint_a, &r.mint_b).expect("pool exists")
    }

    /// Give `who` SOL and a stock of every token (agent provisioning).
    pub fn provision(&mut self, who: Pubkey, sol: f64, tokens_each: u64) {
        self.bank.airdrop(who, Lamports::from_sol(sol));
        if tokens_each > 0 {
            let mints = self.mints.clone();
            for chunk in mints.chunks(8) {
                let nonce = self.next_nonce();
                let mut b = TransactionBuilder::new(self.authority).nonce(nonce);
                for mint in chunk {
                    b = b.token_transfer(*mint, who, tokens_each);
                }
                let meta = self
                    .bank
                    .execute_transaction(&b.build())
                    .expect("provision");
                assert!(meta.success, "provision failed: {:?}", meta.error);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn setup_builds_pools() {
        let config = ScenarioConfig::tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let u = Universe::setup(&config, &mut rng);
        assert_eq!(u.sol_pools.len(), config.sol_pool_count);
        assert_eq!(u.token_pools.len(), config.token_pool_count);
        for p in &u.sol_pools {
            let state = u.pool(p);
            assert!(state.has_sol_leg());
            assert!(state.reserve_x > 0 && state.reserve_y > 0);
        }
        for p in &u.token_pools {
            assert!(!u.pool(p).has_sol_leg());
        }
    }

    #[test]
    fn universe_schedule_matches_config_spec() {
        let config = ScenarioConfig::tiny();
        let mut rng = StdRng::seed_from_u64(3);
        let u = Universe::setup(&config, &mut rng);
        assert_eq!(
            u.schedule.validators().len(),
            config.validator_count as usize
        );
        // The bank's fee destination is the genesis-slot leader, and the
        // schedule is the one the config spec derives.
        let expect = LeaderSchedule::new(&config.validator_spec());
        assert_eq!(u.bank.validator(), expect.leader_at(Slot::GENESIS));
        assert_eq!(
            u.schedule.leader_at(Slot(4_000)),
            expect.leader_at(Slot(4_000))
        );
    }

    #[test]
    fn provision_funds_agent() {
        let config = ScenarioConfig::tiny();
        let mut rng = StdRng::seed_from_u64(2);
        let mut u = Universe::setup(&config, &mut rng);
        let agent = Keypair::from_label("agent").pubkey();
        u.provision(agent, 50.0, 1_000_000);
        assert_eq!(u.bank.lamports(&agent), Lamports::from_sol(50.0));
        for mint in &u.mints {
            assert_eq!(u.bank.token_balance(&agent, mint), 1_000_000);
        }
    }
}
