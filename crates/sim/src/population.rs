//! Agent populations: traders, attackers (searchers), defensive bundlers.

use sandwich_types::{Keypair, Lamports, Pubkey};

use crate::universe::Universe;

/// One acting identity with a nonce counter.
#[derive(Clone, Debug)]
pub struct Agent {
    /// The signing identity.
    pub keypair: Keypair,
    nonce: u64,
}

impl Agent {
    /// Deterministic agent from a role and index.
    pub fn new(role: &str, index: usize) -> Self {
        Agent {
            keypair: Keypair::from_label(&format!("{role}-{index}")),
            nonce: 0,
        }
    }

    /// This agent's address.
    pub fn pubkey(&self) -> Pubkey {
        self.keypair.pubkey()
    }

    /// The next unique nonce.
    pub fn next_nonce(&mut self) -> u64 {
        self.nonce += 1;
        self.nonce
    }
}

/// All agent groups of the scenario.
pub struct Population {
    /// Normal traders — sandwich victims and priority users.
    pub traders: Vec<Agent>,
    /// Sandwich attackers with access to a private mempool.
    pub attackers: Vec<Agent>,
    /// Users who defensively self-bundle.
    pub defenders: Vec<Agent>,
}

impl Population {
    /// Create and provision all agents.
    pub fn provision(
        universe: &mut Universe,
        trader_count: usize,
        attacker_count: usize,
        defender_count: usize,
    ) -> Population {
        let traders: Vec<Agent> = (0..trader_count).map(|i| Agent::new("trader", i)).collect();
        let attackers: Vec<Agent> = (0..attacker_count)
            .map(|i| Agent::new("attacker", i))
            .collect();
        let defenders: Vec<Agent> = (0..defender_count)
            .map(|i| Agent::new("defender", i))
            .collect();

        for t in &traders {
            universe.provision(t.pubkey(), 2_000.0, 1_000_000_000_000);
        }
        for a in &attackers {
            universe.provision(a.pubkey(), 20_000.0, 4_000_000_000_000_000);
        }
        for d in &defenders {
            universe.provision(d.pubkey(), 200.0, 0);
        }

        Population {
            traders,
            attackers,
            defenders,
        }
    }

    /// Daily top-up so long scenarios never strand an agent below fees.
    pub fn top_up(&self, universe: &Universe) {
        let floor = Lamports::from_sol(100.0);
        let refill = Lamports::from_sol(1_000.0);
        for agent in self
            .traders
            .iter()
            .chain(&self.attackers)
            .chain(&self.defenders)
        {
            if universe.bank.lamports(&agent.pubkey()) < floor {
                universe.bank.airdrop(agent.pubkey(), refill);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agents_are_deterministic_and_distinct() {
        let a = Agent::new("trader", 0);
        let b = Agent::new("trader", 0);
        let c = Agent::new("trader", 1);
        assert_eq!(a.pubkey(), b.pubkey());
        assert_ne!(a.pubkey(), c.pubkey());
    }

    #[test]
    fn nonces_increment() {
        let mut a = Agent::new("x", 0);
        assert_eq!(a.next_nonce(), 1);
        assert_eq!(a.next_nonce(), 2);
    }

    #[test]
    fn provision_and_top_up() {
        let config = ScenarioConfig::tiny();
        let mut rng = StdRng::seed_from_u64(5);
        let mut u = Universe::setup(&config, &mut rng);
        let pop = Population::provision(&mut u, 2, 1, 2);
        assert_eq!(
            u.bank.lamports(&pop.traders[0].pubkey()),
            Lamports::from_sol(2_000.0)
        );

        // Drain one defender below the floor, then top up.
        let poor = pop.defenders[0].pubkey();
        u.bank
            .set_account(poor, sandwich_ledger::Account::wallet(Lamports(1)));
        pop.top_up(&u);
        assert!(u.bank.lamports(&poor) > Lamports::from_sol(999.0));
    }
}
