//! Per-bundle ground-truth labels.
//!
//! The simulator knows what every bundle it submits *is* — a genuine
//! sandwich, a defensive self-bundle, benign app traffic, or a near-miss
//! decoy engineered against one detection criterion. That knowledge is the
//! one thing the paper could never have on mainnet, and it is what makes an
//! exact per-bundle precision/recall oracle possible here.
//!
//! Labels ride *alongside* the measured system, never inside it: nothing in
//! the explorer wire formats, the collector, or the segment store carries a
//! label. The [`LabelBook`] is keyed by the bundle id (the hash of the
//! ordered transaction ids, [`sandwich_jito::bundle_id_of`]), so analysis
//! output joins back to ground truth only after the fact.

use std::collections::HashMap;

use sandwich_jito::BundleId;
use sandwich_types::Pubkey;

/// The near-miss families: each one mutates a true sandwich along exactly
/// one criterion boundary (or a metamorphic axis) so that the full detector
/// must reject it while the matching `without_criterion(n)` ablation admits
/// it — the proof that each criterion is load-bearing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NearMissFamily {
    /// Criterion 1 boundary: sandwich-shaped price action but the back-run
    /// is signed by a third party, not the front-runner.
    DifferentOuterSigner,
    /// Criterion 2 boundary: front and victim trade the same pair, but the
    /// "attacker" exits through a different token (disjoint currency set in
    /// the final leg).
    DisjointCurrencies,
    /// Criterion 3 boundary: the first trade moves the rate *for* the
    /// victim (a sell improving the victim's buy), not against them.
    RateMovedForVictim,
    /// Criterion 4 boundary: sandwich-shaped but the "attacker" exits at a
    /// loss (sells only part of the inventory, proceeds below cost).
    UnprofitableAttacker,
    /// Criterion 5 boundary: two swaps by different users plus a pure tip
    /// transaction by the first — the app-bundler pattern.
    TipOnlyFinal,
    /// Metamorphic: a true sandwich with its transactions permuted.
    PermutedOrder,
    /// Metamorphic: a true sandwich split across two bundles.
    SplitAcrossBundles,
    /// Metamorphic: a true sandwich padded with a zero-market-effect
    /// transaction (length 4 — invisible to the paper's length-3 scan, but
    /// the extended scan must still find the embedded triple).
    ZeroDeltaPadding,
}

impl NearMissFamily {
    /// All families, criterion-targeting first.
    pub fn all() -> [NearMissFamily; 8] {
        [
            NearMissFamily::DifferentOuterSigner,
            NearMissFamily::DisjointCurrencies,
            NearMissFamily::RateMovedForVictim,
            NearMissFamily::UnprofitableAttacker,
            NearMissFamily::TipOnlyFinal,
            NearMissFamily::PermutedOrder,
            NearMissFamily::SplitAcrossBundles,
            NearMissFamily::ZeroDeltaPadding,
        ]
    }

    /// The detection criterion (1–5) this family probes, if any.
    pub fn criterion(&self) -> Option<u8> {
        match self {
            NearMissFamily::DifferentOuterSigner => Some(1),
            NearMissFamily::DisjointCurrencies => Some(2),
            NearMissFamily::RateMovedForVictim => Some(3),
            NearMissFamily::UnprofitableAttacker => Some(4),
            NearMissFamily::TipOnlyFinal => Some(5),
            _ => None,
        }
    }

    /// The family probing criterion `n` (1–5).
    pub fn for_criterion(n: u8) -> Option<NearMissFamily> {
        NearMissFamily::all()
            .into_iter()
            .find(|f| f.criterion() == Some(n))
    }

    /// Stable snake_case name (used in reports and JSON snapshots).
    pub fn name(&self) -> &'static str {
        match self {
            NearMissFamily::DifferentOuterSigner => "different_outer_signer",
            NearMissFamily::DisjointCurrencies => "disjoint_currencies",
            NearMissFamily::RateMovedForVictim => "rate_moved_for_victim",
            NearMissFamily::UnprofitableAttacker => "unprofitable_attacker",
            NearMissFamily::TipOnlyFinal => "tip_only_final",
            NearMissFamily::PermutedOrder => "permuted_order",
            NearMissFamily::SplitAcrossBundles => "split_across_bundles",
            NearMissFamily::ZeroDeltaPadding => "zero_delta_padding",
        }
    }
}

impl std::fmt::Display for NearMissFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Ground truth for one landed sandwich bundle.
#[derive(Clone, Copy, Debug)]
pub struct SandwichLabel {
    /// The attacker (signer of the outer transactions).
    pub attacker: Pubkey,
    /// The victim (signer of the middle transaction).
    pub victim: Pubkey,
    /// Victim loss at the pre-attack rate, lamports (0 when unpriceable).
    pub expected_loss_lamports: u64,
    /// Attacker gain after tip, lamports (0 when unpriceable).
    pub expected_gain_lamports: i128,
    /// Whether one traded leg is SOL (only these are priced).
    pub sol_legged: bool,
    /// Disguised as a length-4 bundle (invisible to the paper's scan).
    pub disguised: bool,
}

/// Benign (non-attack, non-defensive) bundle sub-kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenignKind {
    /// Length-1 priority bundle (tip above the defensive threshold).
    Priority,
    /// Length-2 app bundle (action + separate tip transaction).
    AppPair,
    /// Length-3 bundle of unrelated swaps (no single criterion boundary).
    UnrelatedSwaps,
    /// Length-4/5 transfer batch.
    Batch,
}

/// What one landed bundle *is*, per the simulator.
#[derive(Clone, Debug)]
pub enum BundleLabel {
    /// A genuine sandwich attack.
    Sandwich(SandwichLabel),
    /// A defensive self-bundle (length 1, tiny tip).
    Defensive,
    /// Benign traffic.
    Benign(BenignKind),
    /// A near-miss decoy engineered against one criterion boundary.
    NearMiss(NearMissFamily),
}

impl BundleLabel {
    /// True for sandwich labels.
    pub fn is_sandwich(&self) -> bool {
        matches!(self, BundleLabel::Sandwich(_))
    }

    /// True for defensive labels.
    pub fn is_defensive(&self) -> bool {
        matches!(self, BundleLabel::Defensive)
    }
}

/// Ground-truth provenance of one landed bundle: which validator led the
/// slot it landed in, and whether that leader is a colluder (forwards its
/// mempool view to the private channel).
///
/// Like every other label, provenance never crosses the explorer wire —
/// the measured system must recompute leaders from the public validator
/// spec and *infer* colluders from attribution counts; this record is what
/// the conformance oracle scores that inference against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BundleProvenance {
    /// Leader of the slot the bundle landed in.
    pub leader: Pubkey,
    /// Whether that leader is a ground-truth colluder.
    pub colluder: bool,
}

/// Per-bundle ground truth for a whole run, keyed by bundle id.
#[derive(Debug, Default)]
pub struct LabelBook {
    labels: HashMap<BundleId, BundleLabel>,
    provenance: HashMap<BundleId, BundleProvenance>,
}

impl LabelBook {
    /// An empty book.
    pub fn new() -> Self {
        LabelBook::default()
    }

    /// Record the label of a landed bundle.
    pub fn insert(&mut self, id: BundleId, label: BundleLabel) {
        self.labels.insert(id, label);
    }

    /// Record which validator led the slot bundle `id` landed in.
    pub fn insert_provenance(&mut self, id: BundleId, provenance: BundleProvenance) {
        self.provenance.insert(id, provenance);
    }

    /// Look up a bundle's label.
    pub fn get(&self, id: &BundleId) -> Option<&BundleLabel> {
        self.labels.get(id)
    }

    /// Look up a bundle's slot-leader provenance.
    pub fn provenance(&self, id: &BundleId) -> Option<&BundleProvenance> {
        self.provenance.get(id)
    }

    /// Number of labeled bundles.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no bundle has been labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate over all (id, label) pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&BundleId, &BundleLabel)> {
        self.labels.iter()
    }

    /// Iterate over all (id, provenance) pairs (unordered). The oracle
    /// derives the ground-truth colluder set from these — a validator is
    /// a colluder iff any bundle landed in its slots says so.
    pub fn provenances(&self) -> impl Iterator<Item = (&BundleId, &BundleProvenance)> {
        self.provenance.iter()
    }

    /// Ids of all labeled sandwiches.
    pub fn sandwich_ids(&self) -> impl Iterator<Item = &BundleId> {
        self.labels
            .iter()
            .filter(|(_, l)| l.is_sandwich())
            .map(|(id, _)| id)
    }

    /// Count of labels per near-miss family.
    pub fn near_miss_counts(&self) -> HashMap<NearMissFamily, u64> {
        let mut counts = HashMap::new();
        for label in self.labels.values() {
            if let BundleLabel::NearMiss(family) = label {
                *counts.entry(*family).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::Hash;

    #[test]
    fn families_cover_all_criteria() {
        for n in 1..=5u8 {
            let family = NearMissFamily::for_criterion(n).expect("family per criterion");
            assert_eq!(family.criterion(), Some(n));
        }
        assert_eq!(NearMissFamily::PermutedOrder.criterion(), None);
        let mut names: Vec<_> = NearMissFamily::all().iter().map(|f| f.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8, "names are distinct");
    }

    #[test]
    fn book_insert_lookup_counts() {
        let mut book = LabelBook::new();
        assert!(book.is_empty());
        let id1 = Hash::digest(b"b1");
        let id2 = Hash::digest(b"b2");
        let id3 = Hash::digest(b"b3");
        book.insert(
            id1,
            BundleLabel::Sandwich(SandwichLabel {
                attacker: Pubkey::derive("a"),
                victim: Pubkey::derive("v"),
                expected_loss_lamports: 7,
                expected_gain_lamports: 5,
                sol_legged: true,
                disguised: false,
            }),
        );
        book.insert(id2, BundleLabel::NearMiss(NearMissFamily::TipOnlyFinal));
        book.insert(id3, BundleLabel::Defensive);
        assert_eq!(book.len(), 3);
        assert!(book.get(&id1).unwrap().is_sandwich());
        assert!(book.get(&id3).unwrap().is_defensive());
        assert_eq!(book.sandwich_ids().count(), 1);
        assert_eq!(book.near_miss_counts()[&NearMissFamily::TipOnlyFinal], 1);
    }

    #[test]
    fn provenance_joins_on_bundle_id() {
        let mut book = LabelBook::new();
        let id = Hash::digest(b"b1");
        let prov = BundleProvenance {
            leader: Pubkey::derive("leader"),
            colluder: true,
        };
        book.insert(id, BundleLabel::Defensive);
        book.insert_provenance(id, prov);
        assert_eq!(book.provenance(&id), Some(&prov));
        assert_eq!(book.provenance(&Hash::digest(b"other")), None);
    }
}
