//! Agent-based workload generation: the 120-day measurement-period
//! scenario, calibrated to the paper's published aggregates, producing a
//! stream of landed Jito bundles with per-day ground truth.

#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod fuzzer;
pub mod labels;
pub mod population;
pub mod universe;

pub use config::{lognormal_clamped, poisson, standard_normal, weighted_choice, ScenarioConfig};
pub use driver::{DayTruth, GroundTruth, Simulation, TickOutcome};
pub use fuzzer::{NearMissCase, NearMissFuzzer};
pub use labels::{
    BenignKind, BundleLabel, BundleProvenance, LabelBook, NearMissFamily, SandwichLabel,
};
pub use population::{Agent, Population};
pub use universe::{PoolRef, Universe};
