//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary runs the same full measurement pipeline (simulated chain →
//! explorer HTTP API → collector → analysis) at a configurable scale, then
//! prints its figure. Scale and length are overridable via environment
//! variables so the default stays laptop-friendly:
//!
//! * `SANDWICH_DAYS`  — days to simulate (default 120, the paper's period)
//! * `SANDWICH_SCALE` — denominator of the volume scale (default 4000,
//!   i.e. 1/4000 of mainnet's 14.8M bundles/day)
//! * `SANDWICH_SEED`  — RNG seed (default the paper's start date)

pub mod scale;

use sandwich_core::{
    AnalysisConfig, AnalysisReport, CollectorConfig, MeasurementRun, PipelineConfig,
};
use sandwich_sim::{DayTruth, ScenarioConfig, Simulation};
use sandwich_types::SlotClock;

/// Everything a figure binary needs.
pub struct FigureRun {
    /// The scenario that ran.
    pub scenario: ScenarioConfig,
    /// The collector's output and stats.
    pub run: MeasurementRun,
    /// The analysis over the collected dataset.
    pub report: AnalysisReport,
    /// Per-day simulator ground truth.
    pub truth_per_day: Vec<DayTruth>,
    /// Total ground-truth sandwiches landed.
    pub truth_sandwiches: u64,
    /// The shared slot clock.
    pub clock: SlotClock,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The scenario used by all figure binaries.
pub fn figure_scenario() -> ScenarioConfig {
    let days = env_u64("SANDWICH_DAYS", 120);
    let scale_denominator = env_u64("SANDWICH_SCALE", 4_000).max(1);
    let seed = env_u64("SANDWICH_SEED", 20_250_209);
    ScenarioConfig {
        days,
        seed,
        volume_scale: 1.0 / scale_denominator as f64,
        ..Default::default()
    }
}

/// Run the full pipeline for the figure scenario.
pub fn run_figure_pipeline() -> FigureRun {
    run_pipeline_with(figure_scenario())
}

/// Run the full pipeline for an explicit scenario.
pub fn run_pipeline_with(scenario: ScenarioConfig) -> FigureRun {
    let days = scenario.days;
    let page_limit = sandwich_core::scaled_page_limit(&scenario, 1);
    eprintln!(
        "[bench] {} days at 1/{:.0} volume (≈{:.0} bundles/day, page limit {page_limit})",
        days,
        1.0 / scenario.volume_scale,
        scenario.bundles_per_day(),
    );
    let started = std::time::Instant::now();
    let mut sim = Simulation::new(scenario.clone());
    let pipeline = PipelineConfig {
        collector: CollectorConfig {
            page_limit,
            ..Default::default()
        },
        ..Default::default()
    };
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let run = runtime
        .block_on(sandwich_core::run_measurement(&mut sim, pipeline))
        .expect("pipeline");
    eprintln!(
        "[bench] simulated + collected {} bundles in {:.1}s (overlap {:.1}%)",
        run.dataset.len(),
        started.elapsed().as_secs_f64(),
        run.dataset.overlap_rate() * 100.0,
    );
    eprintln!("[bench] metrics {}", run.metrics.to_json_string());
    let report = run.analyze(&AnalysisConfig::paper_defaults(days));
    let clock = run.clock;
    let truth = sim.truth();
    FigureRun {
        scenario,
        report,
        truth_per_day: truth.per_day.clone(),
        truth_sandwiches: truth.total_sandwiches(),
        run,
        clock,
    }
}
