//! `scale_gen`: deterministic synthesis of mainnet-scale bundle stores.
//!
//! The simulator pipeline tops out around tens of thousands of bundles per
//! minute of wall clock because it simulates the chain, the explorer HTTP
//! API, and the collector faithfully. Benchmarking the *scan* at the
//! paper's scale (~14.8M bundles/day) needs stores three orders of
//! magnitude larger, so this module fabricates segments directly: seeded
//! RNG, zipfian attacker/pool skew, configurable sandwich density, records
//! shaped exactly like collector output (tips, swap-shaped balance deltas,
//! derived bundle ids) but with fabricated signatures.
//!
//! Everything is a pure function of [`ScaleConfig`], so two runs with the
//! same config produce byte-identical stores — the property that lets
//! `scan_bench` and `check.sh` compare scan paths across processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sandwich_jito::{bundle_id_of, tip_account};
use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_store::{CollectedBundle, CollectedDetail, StoreWriter};
use sandwich_types::{LamportDelta, Lamports, Pubkey, Signature, Slot};

/// Slots per measurement day (matches `SlotClock`'s default cadence).
pub const SLOTS_PER_DAY: u64 = 216_000;

/// Parameters of a synthetic store. Every field participates in the
/// deterministic stream — change one and the whole store changes.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Total bundles to synthesize.
    pub bundles: u64,
    /// Bundles per sealed segment.
    pub segment_bundles: usize,
    /// Fraction of all bundles that are detectable length-3 sandwiches
    /// (with their three details stored).
    pub sandwich_density: f64,
    /// Fraction of all bundles that are length-3 *near misses*: details
    /// present, but the trio fails a detector criterion.
    pub near_miss_density: f64,
    /// RNG seed.
    pub seed: u64,
    /// Size of the zipf-skewed attacker population.
    pub attackers: usize,
    /// Size of the zipf-skewed pool (mint) population.
    pub pools: usize,
    /// Measurement days the slots span.
    pub days: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            bundles: 1_000_000,
            segment_bundles: 8_192,
            sandwich_density: 0.02,
            near_miss_density: 0.02,
            seed: 20_250_209,
            attackers: 64,
            pools: 512,
            days: 8,
        }
    }
}

/// What `generate` reports back.
#[derive(Clone, Debug)]
pub struct ScaleStats {
    /// Bundles written.
    pub bundles: u64,
    /// Detail records written.
    pub details: u64,
    /// Detectable sandwiches planted.
    pub sandwiches: u64,
    /// Near-miss trios planted (details present, detector must reject).
    pub near_misses: u64,
    /// Segments sealed.
    pub segments: u64,
}

/// Zipf(s=1) sampler over ranks `0..n`: cumulative harmonic weights,
/// binary-searched per draw. Rank 0 is the heaviest.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for a population of `n` ranks.
    pub fn new(n: usize) -> Zipf {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut acc = 0.0;
        for i in 0..n.max(1) {
            acc += 1.0 / (i + 1) as f64;
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen::<f64>() * self.cumulative.last().copied().unwrap_or(1.0);
        self.cumulative.partition_point(|&c| c < u)
    }
}

fn fab_signature(rng: &mut StdRng) -> Signature {
    let mut bytes = [0u8; 64];
    rng.fill(&mut bytes);
    Signature(bytes)
}

fn fab_pubkey(rng: &mut StdRng) -> Pubkey {
    let mut bytes = [0u8; 32];
    rng.fill(&mut bytes);
    Pubkey(bytes)
}

/// A swap-shaped meta: the signer's SOL delta nets the trade against fee
/// and tip (the shape trade extraction expects), plus one token leg.
fn swap_meta(
    tx_id: Signature,
    signer: Pubkey,
    mint: Pubkey,
    sol_delta_trade: i64,
    tokens: i128,
    tip: u64,
) -> TransactionMeta {
    let fee = 5_000i64;
    let mut sol_deltas = vec![SolDelta {
        account: signer,
        delta: LamportDelta(sol_delta_trade - fee - tip as i64),
    }];
    if tip > 0 {
        sol_deltas.push(SolDelta {
            account: tip_account(0),
            delta: LamportDelta(tip as i64),
        });
    }
    TransactionMeta {
        tx_id,
        signer,
        fee: Lamports(fee as u64),
        priority_fee: Lamports::ZERO,
        success: true,
        error: None,
        sol_deltas,
        token_deltas: vec![TokenDelta {
            owner: signer,
            mint,
            delta: tokens,
        }],
    }
}

enum Shape {
    Plain(usize),
    Sandwich,
    NearMiss,
}

/// Synthesize the whole store into `writer`, one segment at a time (the
/// resident set never exceeds one segment's records).
pub fn generate(writer: &mut StoreWriter, config: &ScaleConfig) -> std::io::Result<ScaleStats> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let attacker_zipf = Zipf::new(config.attackers);
    let pool_zipf = Zipf::new(config.pools);
    let attackers: Vec<Pubkey> = (0..config.attackers.max(1))
        .map(|i| Pubkey::derive(&format!("scale:attacker:{i}")))
        .collect();
    let pools: Vec<Pubkey> = (0..config.pools.max(1))
        .map(|i| Pubkey::derive(&format!("scale:pool:{i}")))
        .collect();

    // Slots advance so the store spans exactly `days` measurement days.
    let total_slots = config.days.max(1) * SLOTS_PER_DAY;
    let mut stats = ScaleStats {
        bundles: 0,
        details: 0,
        sandwiches: 0,
        near_misses: 0,
        segments: 0,
    };

    let mut bundles = Vec::with_capacity(config.segment_bundles);
    let mut details = Vec::new();
    let mut n: u64 = 0;
    while n < config.bundles {
        let slot = Slot(n * total_slots / config.bundles.max(1));
        let timestamp_ms = slot.0 * 400;
        // Bundle-length mix, roughly the paper's: length 1 dominates.
        let u: f64 = rng.gen();
        let shape = if u < config.sandwich_density {
            Shape::Sandwich
        } else if u < config.sandwich_density + config.near_miss_density {
            Shape::NearMiss
        } else {
            let v: f64 = rng.gen();
            Shape::Plain(if v < 0.78 {
                1
            } else if v < 0.84 {
                2
            } else if v < 0.94 {
                3
            } else if v < 0.98 {
                4
            } else {
                5
            })
        };

        match shape {
            Shape::Plain(len) => {
                let tx_ids: Vec<Signature> = (0..len).map(|_| fab_signature(&mut rng)).collect();
                // Length-1 tips: ~85% at or under the defensive threshold,
                // the rest priority-sized — reproduces the paper's
                // defensive fraction at scale.
                let tip = if len == 1 {
                    if rng.gen_bool(0.85) {
                        rng.gen_range(1_000u64..100_001)
                    } else {
                        rng.gen_range(100_001u64..10_000_000)
                    }
                } else {
                    rng.gen_range(10_000u64..5_000_000)
                };
                bundles.push(CollectedBundle {
                    bundle_id: bundle_id_of(&tx_ids),
                    slot,
                    timestamp_ms,
                    tip: Lamports(tip),
                    tx_ids,
                });
            }
            Shape::Sandwich | Shape::NearMiss => {
                let attacker = attackers[attacker_zipf.sample(&mut rng)];
                let mint = pools[pool_zipf.sample(&mut rng)];
                let victim = fab_pubkey(&mut rng);
                let tx_ids: Vec<Signature> = (0..3).map(|_| fab_signature(&mut rng)).collect();
                let tip = rng.gen_range(100_000u64..20_000_000);
                let sol_in = rng.gen_range(1_000_000_000i64..100_000_000_000);
                let tokens = rng.gen_range(1_000i64..1_000_000) as i128;
                let victim_sol = sol_in + rng.gen_range(sol_in / 10..sol_in / 2);
                let profit = rng.gen_range(sol_in / 100..sol_in / 10);
                let near_miss = matches!(shape, Shape::NearMiss);
                // A near miss alternates between a criterion-1 failure (a
                // third signer closes the trio — the columnar C1 bit stays
                // clear, so the fast path skips it) and a criterion-3
                // failure (attacker sells first — every column bit is set,
                // so the fast path must decode and let the detector say no).
                let c1_miss = near_miss && rng.gen_bool(0.5);
                let c3_miss = near_miss && !c1_miss;
                let back_signer = if c1_miss {
                    fab_pubkey(&mut rng)
                } else {
                    attacker
                };
                let (front_sol, front_tok, back_sol, back_tok) = if c3_miss {
                    // Attacker sells first, re-buys after: rate improves
                    // for the victim, criterion 3 rejects.
                    (sol_in, -tokens, -(sol_in - profit), tokens)
                } else {
                    (-sol_in, tokens, sol_in + profit, -tokens)
                };
                let front = swap_meta(tx_ids[0], attacker, mint, front_sol, front_tok, 0);
                let mid = swap_meta(tx_ids[1], victim, mint, -victim_sol, tokens, 0);
                let back = swap_meta(tx_ids[2], back_signer, mint, back_sol, back_tok, tip);
                let bundle_id = bundle_id_of(&tx_ids);
                for meta in [front, mid, back] {
                    details.push(CollectedDetail {
                        bundle_id,
                        slot,
                        meta,
                    });
                    stats.details += 1;
                }
                if near_miss {
                    stats.near_misses += 1;
                } else {
                    stats.sandwiches += 1;
                }
                bundles.push(CollectedBundle {
                    bundle_id,
                    slot,
                    timestamp_ms,
                    tip: Lamports(tip),
                    tx_ids,
                });
            }
        }

        n += 1;
        stats.bundles += 1;
        if bundles.len() >= config.segment_bundles || n == config.bundles {
            writer.seal_segment(
                std::mem::take(&mut bundles),
                std::mem::take(&mut details),
                Vec::new(),
            )?;
            stats.segments += 1;
            bundles.reserve(config.segment_bundles);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_core::{scan_store, scan_store_materializing, AnalysisConfig};
    use sandwich_types::SlotClock;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("scale-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small() -> ScaleConfig {
        ScaleConfig {
            bundles: 4_000,
            segment_bundles: 512,
            days: 2,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, b) = (tmp("det-a"), tmp("det-b"));
        for dir in [&a, &b] {
            let mut w = StoreWriter::create(dir).unwrap();
            generate(&mut w, &small()).unwrap();
        }
        let sums = |dir: &std::path::Path| {
            sandwich_store::BundleStore::open(dir)
                .unwrap()
                .segments()
                .iter()
                .map(|m| m.checksum.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(sums(&a), sums(&b));
        assert!(!sums(&a).is_empty());
        std::fs::remove_dir_all(&a).unwrap();
        std::fs::remove_dir_all(&b).unwrap();
    }

    #[test]
    fn planted_sandwiches_are_found_and_near_misses_rejected() {
        let dir = tmp("planted");
        let mut w = StoreWriter::create(&dir).unwrap();
        let config = small();
        let stats = generate(&mut w, &config).unwrap();
        assert!(stats.sandwiches > 0 && stats.near_misses > 0);
        let store = w.into_reader();
        let clock = SlotClock::default();
        let cfg = AnalysisConfig::paper_defaults(config.days);
        let report = scan_store(&store, &clock, &cfg, 2).unwrap();
        assert_eq!(
            report.findings.len() as u64,
            stats.sandwiches,
            "every planted sandwich detected, every near miss rejected"
        );
        // The zero-copy scan above equals a forced full decode.
        let materialized = scan_store_materializing(&store, &clock, &cfg, 2).unwrap();
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&materialized).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(16);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 16];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] && counts[8] > 0);
    }
}
