//! Synthesize a mainnet-scale bundle store without running the simulator.
//!
//! The store is a pure function of the configuration (all overridable):
//!
//! * `SANDWICH_SCALE_BUNDLES`  — total bundles (default 1,000,000)
//! * `SANDWICH_SCALE_SEGMENT`  — bundles per segment (default 8,192)
//! * `SANDWICH_SCALE_DENSITY`  — detectable-sandwich fraction (default 0.02)
//! * `SANDWICH_SCALE_SEED`     — RNG seed (default 20250209)
//! * `SANDWICH_SCALE_DAYS`     — days the slots span (default 8)
//! * `SANDWICH_STORE_DIR`      — output directory (default `scale.store`;
//!   removed and rebuilt on every run)
//!
//! Prints the planted ground truth (sandwiches, near misses) so scans of
//! the store can be checked against it.

use sandwich_bench::scale::{generate, ScaleConfig};
use sandwich_store::StoreWriter;

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let defaults = ScaleConfig::default();
    let config = ScaleConfig {
        bundles: env_parse("SANDWICH_SCALE_BUNDLES", defaults.bundles),
        segment_bundles: env_parse("SANDWICH_SCALE_SEGMENT", defaults.segment_bundles),
        sandwich_density: env_parse("SANDWICH_SCALE_DENSITY", defaults.sandwich_density),
        seed: env_parse("SANDWICH_SCALE_SEED", defaults.seed),
        days: env_parse("SANDWICH_SCALE_DAYS", defaults.days),
        ..defaults
    };
    let dir = std::env::var("SANDWICH_STORE_DIR").unwrap_or_else(|_| "scale.store".into());
    let _ = std::fs::remove_dir_all(&dir);

    let started = std::time::Instant::now();
    let mut writer = StoreWriter::create(&dir).expect("create store");
    let stats = generate(&mut writer, &config).expect("generate");
    let elapsed = started.elapsed().as_secs_f64();
    let store = writer.into_reader();
    let bytes = store.manifest().total_bytes();

    println!(
        "scale_gen: {} bundles ({} details) in {} segments over {} days → {dir}",
        stats.bundles, stats.details, stats.segments, config.days
    );
    println!(
        "  planted ground truth: {} sandwiches, {} near misses (seed {})",
        stats.sandwiches, stats.near_misses, config.seed
    );
    println!(
        "  {:.1} MB on disk ({:.1} B/bundle), generated in {elapsed:.1}s ({:.0} bundles/sec)",
        bytes as f64 / 1e6,
        bytes as f64 / stats.bundles.max(1) as f64,
        stats.bundles as f64 / elapsed,
    );
}
