//! Regenerates Figure 4: CDF of Jito tips for length-1 bundles, length-3
//! bundles, and detected sandwich bundles.

use sandwich_core::report;

fn main() {
    let fr = sandwich_bench::run_figure_pipeline();
    println!("=== Figure 4: tip CDFs (fraction of bundles ≤ tip) ===\n");
    println!("{}", report::figure4(&fr.report));
    println!(
        "fraction of len-1 bundles with tip ≤ 100k lamports: {:.1}% (paper: 86%)",
        fr.report.tip_cdf_len1.fraction_at_or_below(100_000.0) * 100.0
    );
    println!(
        "median len-3 tip {:.0} lamports (paper: 1,000); median sandwich tip {:.0} (paper: >2,000,000)",
        fr.report.tip_cdf_len3.median().unwrap_or(0.0),
        fr.report.tip_cdf_sandwich.median().unwrap_or(0.0),
    );
}
