//! Regenerates the paper's headline aggregates (§4) as a
//! paper-vs-measured table, plus detector-vs-ground-truth validation.

use sandwich_core::report;

fn main() {
    let fr = sandwich_bench::run_figure_pipeline();
    println!("=== headline: paper vs this reproduction ===\n");
    println!("{}", report::headline(&fr.report, fr.scenario.volume_scale));

    println!("=== validation against simulator ground truth ===");
    println!(
        "ground-truth sandwiches landed: {} | detected: {} | in-downtime (uncollectable): {}",
        fr.truth_sandwiches,
        fr.report.total_sandwiches(),
        fr.truth_per_day
            .iter()
            .enumerate()
            .filter(|(d, _)| fr.scenario.is_downtime(*d as u64))
            .map(|(_, t)| t.sandwiches)
            .sum::<u64>(),
    );
    println!(
        "collector: {} polls ok, {} failed, {} detail batches, {} explorer requests",
        fr.run.collector_stats.polls_ok,
        fr.run.collector_stats.polls_failed,
        fr.run.collector_stats.detail_batches,
        fr.run.explorer_requests,
    );
}
