//! Quantifying the paper's "lower bound" caveat (§3.2): how many sandwich
//! attacks hide in length-4/5 bundles that the length-3 methodology cannot
//! see, measured with the extended triple-scanning detector against
//! simulator ground truth.

use sandwich_core::{AnalysisConfig, CollectorConfig, PipelineConfig};
use sandwich_sim::{ScenarioConfig, Simulation};

fn main() {
    let scenario = ScenarioConfig {
        days: std::env::var("SANDWICH_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15),
        downtime_days: vec![],
        // A clearly visible disguise rate for the demonstration.
        disguised_sandwich_probability: 0.12,
        ..sandwich_bench::figure_scenario()
    };
    let days = scenario.days;
    let page_limit = sandwich_core::scaled_page_limit(&scenario, 1);
    let mut sim = Simulation::new(scenario);
    let pipeline = PipelineConfig {
        collector: CollectorConfig {
            page_limit,
            detail_bundle_lens: &[3, 4, 5], // fetch beyond the paper's 3
            ..Default::default()
        },
        ..Default::default()
    };
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap();
    let run = runtime
        .block_on(sandwich_core::run_measurement(&mut sim, pipeline))
        .unwrap();

    let paper = run.analyze(&AnalysisConfig::paper_defaults(days));
    let extended = run.analyze(&AnalysisConfig::extended(days));
    let truth = sim.truth();

    println!("=== the lower bound, quantified ===");
    println!(
        "ground-truth sandwiches landed:     {}",
        truth.total_sandwiches()
    );
    println!(
        "  of which disguised (length-4):    {}",
        truth
            .per_day
            .iter()
            .map(|d| d.disguised_sandwiches)
            .sum::<u64>()
    );
    println!(
        "paper methodology (length-3 only):  {}",
        paper.total_sandwiches()
    );
    println!(
        "extended detector (lengths 3–5):    {}",
        extended.total_sandwiches()
    );
    let recovered = extended.total_sandwiches() as i64 - paper.total_sandwiches() as i64;
    println!("attacks invisible to the paper:     {recovered}");
    println!(
        "undercount factor:                  {:.3}×",
        extended.total_sandwiches() as f64 / paper.total_sandwiches().max(1) as f64
    );
    println!("\nThe paper is right to call its counts a lower bound; with a 12%");
    println!(
        "disguise rate the true figure is ~{:.0}% higher than length-3 reveals.",
        (extended.total_sandwiches() as f64 / paper.total_sandwiches().max(1) as f64 - 1.0) * 100.0
    );
}
