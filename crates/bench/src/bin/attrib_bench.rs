//! Attribution benchmark: leader joins, colluder leaderboards, and the
//! sharded `/api/validators` path, scored against simulator ground truth.
//!
//! Runs the default 8-day measurement scenario with a segment store, then:
//!
//! 1. **Accuracy** — builds the query index (which joins every sealed
//!    sandwich to its slot leader from the manifest's validator spec) and
//!    scores the attribution against the sim's label book with the
//!    conformance oracle: leader accuracy, colluder precision/recall, and
//!    exact per-validator count agreement.
//! 2. **Ranking agreement** — re-ranks the leaderboard with ground-truth
//!    sandwich counts substituted in and reports the fraction of positions
//!    that agree with the measured order (1.0 when attribution is exact).
//! 3. **Overhead** — times the index build with the validator spec present
//!    against the identical store with the spec stripped, isolating what
//!    the schedule recompute + leaderboard fold cost on top of the scan.
//! 4. **Shard identity** — serves the store through 1/2/4/8-shard
//!    clusters and requires every `/api/validators` and
//!    `/api/validator/{pubkey}` response (pages, details, 404s) to be
//!    byte-identical to the single engine.
//!
//! Writes `results/BENCH_attrib.json` (or `$SANDWICH_BENCH_OUT`).
//! `check.sh` gates `attribution_accuracy == 1.0` and
//! `validators_identical == true`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use sandwich_core::{conformance, CollectorConfig, PipelineConfig, StoreOptions};
use sandwich_net::HttpClient;
use sandwich_obs::Registry;
use sandwich_query::{build_index, sort_validator_entries, Engine, QueryConfig, QueryRequest};
use sandwich_shard::{ClusterConfig, ServingCluster};
use sandwich_sim::{BundleLabel, ScenarioConfig, Simulation};
use sandwich_store::{BundleStore, Manifest};
use sandwich_types::{Keypair, Pubkey};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read store dir") {
        let entry = entry.expect("dir entry");
        if entry.path().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
        }
    }
}

/// One probe: the router path and its typed form for the single-engine
/// reference evaluation.
struct Probe {
    path: String,
    typed: QueryRequest,
}

fn main() {
    let days = env_u64("SANDWICH_DAYS", 8);
    let scale_denominator = env_u64("SANDWICH_SCALE", 4_000).max(1);
    let seed = env_u64("SANDWICH_SEED", 20_250_209);
    let counts: Vec<usize> = std::env::var("SANDWICH_ATTRIB_COUNTS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();
    let store_dir =
        std::env::var("SANDWICH_ATTRIB_STORE_DIR").unwrap_or_else(|_| "attrib_bench.store".into());

    // The default measurement scenario, sealed into a segment store so the
    // manifest carries the validator spec exactly as the pipeline stamps it.
    let scenario = ScenarioConfig {
        days,
        seed,
        volume_scale: 1.0 / scale_denominator as f64,
        ..Default::default()
    };
    let page_limit = sandwich_core::scaled_page_limit(&scenario, 1);
    let _ = std::fs::remove_dir_all(&store_dir);
    let pipeline = PipelineConfig {
        collector: CollectorConfig {
            page_limit,
            ..Default::default()
        },
        store: Some(StoreOptions {
            segment_bundles: 2_048,
            ..StoreOptions::new(&store_dir)
        }),
        ..Default::default()
    };
    let started = Instant::now();
    let mut sim = Simulation::new(scenario);
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let run = runtime
        .block_on(sandwich_core::run_measurement(&mut sim, pipeline))
        .expect("pipeline");
    let store = run.store.as_ref().expect("store mode");
    let labels = sim.labels();
    println!(
        "attrib_bench: {} bundles in {} segments over {days} day(s) in {:.1}s",
        store.manifest().total_bundles(),
        store.segments().len(),
        started.elapsed().as_secs_f64()
    );

    // Phase 1+3: the attributed build, timed, against the spec-stripped
    // twin of the same store — the overhead of the leader joins and the
    // leaderboard fold on top of the identical scan.
    let config = QueryConfig::default();
    let t = Instant::now();
    let index = build_index(store, &config).expect("attributed index build");
    let build_with_s = t.elapsed().as_secs_f64();
    let validators = index
        .validators
        .clone()
        .expect("manifest must carry the validator spec");

    let stripped_dir = format!("{store_dir}.noattrib");
    copy_dir(Path::new(&store_dir), Path::new(&stripped_dir));
    let mut manifest = Manifest::load(Path::new(&stripped_dir)).expect("load stripped manifest");
    manifest.validators = None;
    manifest
        .save(Path::new(&stripped_dir))
        .expect("save stripped manifest");
    let stripped = BundleStore::open(&stripped_dir).expect("open stripped store");
    let t = Instant::now();
    let baseline = build_index(&stripped, &config).expect("baseline index build");
    let build_without_s = t.elapsed().as_secs_f64();
    assert!(
        baseline.validators.is_none(),
        "spec-stripped store must build a pre-attribution index"
    );
    assert_eq!(
        baseline.totals.sandwiches, index.totals.sandwiches,
        "attribution must not change detection"
    );
    drop(stripped);
    let _ = std::fs::remove_dir_all(&stripped_dir);
    let overhead_pct = (build_with_s - build_without_s) / build_without_s.max(1e-9) * 100.0;
    println!(
        "  index build: {build_with_s:.2}s attributed vs {build_without_s:.2}s baseline ({overhead_pct:+.1}% leaderboard overhead)"
    );

    // Phase 1: score the attribution against the sim's ground truth.
    let leaderboard: Vec<(Pubkey, u64)> = validators
        .iter()
        .map(|v| (v.pubkey, v.sandwiches))
        .collect();
    let a = conformance::score_attribution(
        index.refs.iter().map(|r| (&r.bundle_id, r.leader.as_ref())),
        &leaderboard,
        labels,
    );
    let denominator = a.attributed + a.unattributed + a.unprovenanced;
    let attribution_accuracy = if denominator == 0 {
        0.0
    } else {
        a.correct_leaders as f64 / denominator as f64
    };
    assert!(a.attributed > 0, "no sandwiches attributed: {a:?}");
    println!(
        "  attribution: {}/{denominator} correct leaders, colluders {}tp/{}fp/{}fn, counts_match {}",
        a.correct_leaders,
        a.colluders.true_positives,
        a.colluders.false_positives,
        a.colluders.false_negatives,
        a.counts_match,
    );

    // Phase 2: ranking agreement. Substitute ground-truth sandwich counts
    // per leader into the leaderboard rows and re-sort with the engine's
    // own comparator; exact attribution reproduces the measured order.
    let mut truth_counts: HashMap<Pubkey, u64> = HashMap::new();
    for (id, prov) in labels.provenances() {
        if let Some(BundleLabel::Sandwich(truth)) = labels.get(id) {
            if !truth.disguised {
                *truth_counts.entry(prov.leader).or_insert(0) += 1;
            }
        }
    }
    let mut truth_ranked = validators.clone();
    for entry in &mut truth_ranked {
        entry.sandwiches = truth_counts.get(&entry.pubkey).copied().unwrap_or(0);
    }
    sort_validator_entries(&mut truth_ranked);
    let agreeing = validators
        .iter()
        .zip(&truth_ranked)
        .filter(|(measured, truth)| measured.pubkey == truth.pubkey)
        .count();
    let ranking_agreement = agreeing as f64 / validators.len().max(1) as f64;
    println!(
        "  colluder ranking: {agreeing}/{} positions agree with ground truth",
        validators.len()
    );

    // Phase 4: shard identity for the validator endpoints at every count.
    let engine = Engine::new(Arc::new(index));
    let mut probes: Vec<Probe> = vec![
        Probe {
            path: "/api/validators?limit=10".into(),
            typed: QueryRequest::Validators {
                limit: 10,
                after: 0,
            },
        },
        Probe {
            path: "/api/validators?limit=100".into(),
            typed: QueryRequest::Validators {
                limit: 100,
                after: 0,
            },
        },
        Probe {
            path: "/api/validators?limit=5&after=5".into(),
            typed: QueryRequest::Validators { limit: 5, after: 5 },
        },
    ];
    for entry in validators.iter().filter(|v| v.sandwiches > 0).take(2) {
        probes.push(Probe {
            path: format!("/api/validator/{}", entry.pubkey),
            typed: QueryRequest::Validator {
                pubkey: entry.pubkey,
            },
        });
    }
    if let Some(entry) = validators.iter().find(|v| v.sandwiches == 0) {
        probes.push(Probe {
            path: format!("/api/validator/{}", entry.pubkey),
            typed: QueryRequest::Validator {
                pubkey: entry.pubkey,
            },
        });
    }
    let nobody = Keypair::from_label("attrib-bench-nobody").pubkey();
    probes.push(Probe {
        path: format!("/api/validator/{nobody}"),
        typed: QueryRequest::Validator { pubkey: nobody },
    });
    let reference: Vec<_> = probes.iter().map(|p| engine.evaluate(&p.typed)).collect();

    let mut validators_identical = true;
    for &n in &counts {
        let identical = runtime.block_on(async {
            let cluster = ServingCluster::serve(ClusterConfig::new(&store_dir, n), Registry::new())
                .await
                .expect("serve cluster");
            let client = HttpClient::new(cluster.router_addr());
            let mut identical = true;
            for (probe, want) in probes.iter().zip(&reference) {
                let served = client.get(&probe.path).await.expect("probe request");
                let same = served.status == want.status && served.body[..] == want.body[..];
                if !same {
                    println!(
                        "  MISMATCH at {n} shard(s): {} (status {} vs {}, {} vs {} bytes)",
                        probe.path,
                        served.status,
                        want.status,
                        served.body.len(),
                        want.body.len(),
                    );
                    identical = false;
                }
            }
            cluster.shutdown().await;
            identical
        });
        validators_identical &= identical;
        println!("  {n} shard(s): validator endpoints byte-identical: {identical}");
    }

    let out = std::env::var("SANDWICH_BENCH_OUT").unwrap_or_else(|_| {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_attrib.json".into()
    });
    let snapshot = format!(
        "{{\n  \"days\": {days},\n  \"bundles\": {bundles},\n  \"sandwiches\": {sandwiches},\n  \"validators\": {nvalidators},\n  \"colluders_inferred\": {colluders},\n  \"attribution_accuracy\": {attribution_accuracy:.3},\n  \"colluder_precision\": {precision:.3},\n  \"colluder_recall\": {recall:.3},\n  \"counts_match\": {counts_match},\n  \"colluder_ranking_agreement\": {ranking_agreement:.3},\n  \"build_seconds_attributed\": {build_with_s:.3},\n  \"build_seconds_baseline\": {build_without_s:.3},\n  \"leaderboard_overhead_pct\": {overhead_pct:.1},\n  \"shard_counts\": [{sc}],\n  \"probes\": {nprobes},\n  \"validators_identical\": {validators_identical}\n}}\n",
        bundles = store.manifest().total_bundles(),
        sandwiches = engine.index().totals.sandwiches,
        nvalidators = validators.len(),
        colluders = a.colluders.true_positives,
        precision = a.colluders.precision(),
        recall = a.colluders.recall(),
        counts_match = a.counts_match,
        sc = counts
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        nprobes = probes.len(),
    );
    std::fs::write(&out, snapshot).expect("write snapshot");
    println!("  snapshot → {out}");

    let _ = std::fs::remove_dir_all(&store_dir);
    assert!(
        a.perfect(),
        "attribution must be exact on the labeled scenario: {a:?}"
    );
    assert!(
        validators_identical,
        "sharded validator responses diverged from the single-engine bytes"
    );
}
