//! Detector-criteria ablation (DESIGN.md §4): re-analyze the same collected
//! dataset with each criterion disabled and report false-positive
//! inflation against simulator ground truth.

use std::collections::HashSet;

use sandwich_core::{AnalysisConfig, DetectorConfig};

fn main() {
    // A shorter period suffices; ablation is about classification, not trends.
    let scenario = sandwich_sim::ScenarioConfig {
        days: std::env::var("SANDWICH_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15),
        downtime_days: vec![],
        ..sandwich_bench::figure_scenario()
    };
    let days = scenario.days;
    let mut sim = sandwich_sim::Simulation::new(scenario.clone());
    let pipeline = sandwich_core::PipelineConfig {
        collector: sandwich_core::CollectorConfig {
            page_limit: sandwich_core::scaled_page_limit(&scenario, 1),
            ..Default::default()
        },
        ..Default::default()
    };
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap();
    let run = runtime
        .block_on(sandwich_core::run_measurement(&mut sim, pipeline))
        .unwrap();
    let truth_ids: HashSet<_> = sim.truth().sandwich_ids.iter().copied().collect();

    println!("=== detector criteria ablation ===");
    println!(
        "{:<44} {:>10} {:>8} {:>8}",
        "configuration", "detected", "FPs", "FNs"
    );
    let eval = |name: &str, detector: DetectorConfig| {
        let config = AnalysisConfig {
            detector,
            ..AnalysisConfig::paper_defaults(days)
        };
        let report = run.analyze(&config);
        let detected: HashSet<_> = report.findings.iter().map(|f| f.bundle_id).collect();
        let fps = detected.difference(&truth_ids).count();
        let collected_truth: HashSet<_> = run
            .dataset
            .bundles()
            .iter()
            .map(|b| b.bundle_id)
            .filter(|id| truth_ids.contains(id))
            .collect();
        let fns = collected_truth.difference(&detected).count();
        println!("{name:<44} {:>10} {fps:>8} {fns:>8}", detected.len());
    };

    eval("all five criteria (paper)", DetectorConfig::default());
    eval(
        "without c1 (same outer signer)",
        DetectorConfig::without_criterion(1).unwrap(),
    );
    eval(
        "without c2 (same traded currencies)",
        DetectorConfig::without_criterion(2).unwrap(),
    );
    eval(
        "without c3 (rate moves against victim)",
        DetectorConfig::without_criterion(3).unwrap(),
    );
    eval(
        "without c4 (attacker profits)",
        DetectorConfig::without_criterion(4).unwrap(),
    );
    eval(
        "without c5 (exclude tip-only final)",
        DetectorConfig::without_criterion(5).unwrap(),
    );
    println!(
        "\nground truth: {} sandwiches landed; {} bundles collected",
        truth_ids.len(),
        run.dataset.len()
    );
    println!("(each criterion's FPs are its engineered near-miss decoys slipping");
    println!(" through; conformance_bench breaks the same admissions out per family.)");
}
