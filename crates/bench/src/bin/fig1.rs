//! Regenerates Figure 1: Jito bundles per day by bundle length, with the
//! collector's downtime gaps shaded (marked DOWN).

use sandwich_core::report;

fn main() {
    let fr = sandwich_bench::run_figure_pipeline();
    println!("=== Figure 1: bundles per day by length (scaled) ===\n");
    println!(
        "{}",
        report::figure1(&fr.report, &fr.clock, &fr.scenario.downtime_days)
    );
    let total = fr.report.total_bundles();
    let len1 = fr.report.bundles_by_len_per_day[0].total();
    println!(
        "length-1 share: {:.1}% (paper: the majority of bundles)",
        len1 / total * 100.0
    );
    println!(
        "length-3 share: {:.2}% (paper: 2.77%)",
        fr.report.len3_fraction() * 100.0
    );
}
