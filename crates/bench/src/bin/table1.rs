//! Regenerates Table 1: a worked sandwich example drawn from an actual
//! detected attack in the simulated dataset.

use sandwich_core::report;

fn main() {
    // Table 1 needs one good example, not a 120-day run.
    let scenario = sandwich_sim::ScenarioConfig {
        days: 2,
        ..sandwich_sim::ScenarioConfig::tiny()
    };
    let fr = sandwich_bench::run_pipeline_with(scenario);
    println!("=== Table 1: example sandwiching MEV transaction ===\n");
    println!("{}", report::table1(&fr.report));
}
