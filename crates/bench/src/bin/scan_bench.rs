//! Throughput benchmark for the parallel segment scan: collect a dataset,
//! seal it into a segment store, then scan at 1/2/4/8 worker threads and
//! report bundles/second for each. Asserts the reports are byte-identical
//! at every thread count (the determinism contract), and writes a JSON
//! snapshot (`BENCH_scan.json` or `$SANDWICH_BENCH_OUT`).

use sandwich_core::{analyze, scan_store, AnalysisConfig};
use sandwich_store::StoreWriter;

fn main() {
    let fr = sandwich_bench::run_pipeline_with(sandwich_sim::ScenarioConfig {
        days: std::env::var("SANDWICH_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
        ..sandwich_bench::figure_scenario()
    });
    let reps: usize = std::env::var("SANDWICH_SCAN_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let bundles = fr.run.dataset.len();

    // Seal into enough segments that 8 workers always have units to steal.
    let store_dir =
        std::env::var("SANDWICH_STORE_DIR").unwrap_or_else(|_| "scan_bench.store".into());
    let segment_bundles = (bundles / 64).max(64);
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut writer = StoreWriter::create(&store_dir).expect("create store");
    fr.run
        .dataset
        .write_store(&mut writer, segment_bundles)
        .expect("seal segments");
    let store = writer.into_reader();
    let config = AnalysisConfig::paper_defaults(fr.scenario.days);

    // Baseline: the in-memory single-pass analysis.
    let baseline = analyze(&fr.run.dataset, &fr.clock, &config);
    let baseline_json = serde_json::to_string(&baseline).unwrap();

    println!(
        "scan_bench: {} bundles in {} segments ({} bundles/segment), best of {reps} reps",
        bundles,
        store.segments().len(),
        segment_bundles,
    );

    let thread_counts = [1usize, 2, 4, 8];
    let mut rates = Vec::new();
    for &threads in &thread_counts {
        let mut best = f64::INFINITY;
        let mut json = String::new();
        for _ in 0..reps {
            let started = std::time::Instant::now();
            let report = scan_store(&store, &fr.clock, &config, threads).expect("scan");
            let elapsed = started.elapsed().as_secs_f64();
            json = serde_json::to_string(&report).unwrap();
            if elapsed < best {
                best = elapsed;
            }
        }
        assert_eq!(
            json, baseline_json,
            "scan at {threads} threads diverged from the in-memory analysis"
        );
        let rate = bundles as f64 / best;
        println!(
            "  threads={threads}: {:.1} ms, {:.0} bundles/sec",
            best * 1e3,
            rate
        );
        rates.push((threads, rate));
    }
    let rate_of = |t: usize| {
        rates
            .iter()
            .find(|(n, _)| *n == t)
            .map(|(_, r)| *r)
            .unwrap()
    };
    let speedup4 = rate_of(4) / rate_of(1);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "  4-thread speedup over 1 thread: {speedup4:.2}x on {cores} core(s) (reports byte-identical at every thread count)"
    );
    if cores < 4 {
        println!("  note: speedup is bounded by the {cores} available core(s)");
    }

    let out = std::env::var("SANDWICH_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".into());
    let entries: Vec<String> = rates
        .iter()
        .map(|(t, r)| format!("    \"{t}\": {r:.0}"))
        .collect();
    let snapshot = format!(
        "{{\n  \"bundles\": {bundles},\n  \"segments\": {segments},\n  \"segment_bundles\": {segment_bundles},\n  \"cores\": {cores},\n  \"bundles_per_sec\": {{\n{rates}\n  }},\n  \"speedup_4_threads\": {speedup4:.2},\n  \"byte_identical_across_threads\": true\n}}\n",
        segments = store.segments().len(),
        rates = entries.join(",\n"),
    );
    std::fs::write(&out, snapshot).expect("write snapshot");
    println!("  snapshot → {out}");
}
