//! Throughput benchmark for the segment scan at mainnet scale.
//!
//! Synthesizes a scale store (see `scale_gen`), then measures two scan
//! paths over it:
//!
//! * **zero-copy** — the default `scan_store`: segments are memory-mapped
//!   and the columnar fast path decodes a bundle only after the detector
//!   pre-filters pass;
//! * **materializing** — `scan_store_materializing`: every record of every
//!   segment is decoded, the pre-columnar reference path.
//!
//! Asserts the two reports are byte-identical, sweeps 1/2/4/8 worker
//! threads on the zero-copy path, and — at ≥200k bundles — gates the
//! single-thread zero-copy speedup at ≥2x over materializing. Writes a
//! JSON snapshot (`BENCH_scan.json` or `$SANDWICH_BENCH_OUT`).
//!
//! Scale knobs: `SANDWICH_SCAN_BUNDLES` (default 1,000,000; this is the
//! store size, so the default run needs ~100 MB of disk and a few minutes)
//! and `SANDWICH_SCAN_REPS` (best-of, default 3).

use sandwich_bench::scale::{generate, ScaleConfig};
use sandwich_core::{scan_store, scan_store_materializing, AnalysisConfig};
use sandwich_store::StoreWriter;
use sandwich_types::SlotClock;

/// The speedup the zero-copy path must hold over materializing on a
/// single thread, once the store is big enough to measure reliably.
const GATE_MIN_SPEEDUP: f64 = 2.0;
const GATE_MIN_BUNDLES: u64 = 200_000;

fn main() {
    let bundles: u64 = std::env::var("SANDWICH_SCAN_BUNDLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let reps: usize = std::env::var("SANDWICH_SCAN_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let defaults = ScaleConfig::default();
    let config = ScaleConfig {
        bundles,
        sandwich_density: std::env::var("SANDWICH_SCAN_DENSITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.sandwich_density),
        near_miss_density: std::env::var("SANDWICH_SCAN_NEAR_MISS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.near_miss_density),
        ..defaults
    };

    let store_dir =
        std::env::var("SANDWICH_STORE_DIR").unwrap_or_else(|_| "scan_bench.store".into());
    let _ = std::fs::remove_dir_all(&store_dir);
    let started = std::time::Instant::now();
    let mut writer = StoreWriter::create(&store_dir).expect("create store");
    let stats = generate(&mut writer, &config).expect("generate store");
    let store = writer.into_reader();
    eprintln!(
        "[scan_bench] synthesized {} bundles ({} sandwiches, {} near misses) in {:.1}s",
        stats.bundles,
        stats.sandwiches,
        stats.near_misses,
        started.elapsed().as_secs_f64()
    );

    let clock = SlotClock::default();
    let cfg = AnalysisConfig::paper_defaults(config.days);
    let segment_bundles = config.segment_bundles;

    println!(
        "scan_bench: {} bundles in {} segments ({segment_bundles} bundles/segment), best of {reps} reps",
        stats.bundles,
        store.segments().len(),
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let single_core = cores == 1;
    if single_core {
        println!(
            "  WARNING: single-core machine — thread-sweep speedups are bounded at ~1x \
             and say nothing about the executor; trust the zero-copy speedup only"
        );
    }

    let bench = |label: &str, f: &dyn Fn() -> sandwich_core::AnalysisReport| {
        let mut best = f64::INFINITY;
        let mut json = String::new();
        for _ in 0..reps {
            let t = std::time::Instant::now();
            let report = f();
            best = best.min(t.elapsed().as_secs_f64());
            json = serde_json::to_string(&report).unwrap();
        }
        let rate = stats.bundles as f64 / best;
        println!("  {label}: {:.1} ms, {:.0} bundles/sec", best * 1e3, rate);
        (rate, json)
    };

    // The reference: full record-by-record decode, single thread.
    let reference = scan_store_materializing(&store, &clock, &cfg, 1).expect("scan");
    assert_eq!(
        reference.findings.len() as u64,
        stats.sandwiches,
        "scan found a different sandwich count than scale_gen planted"
    );
    let (mat_rate, mat_json) = bench("materializing threads=1", &|| {
        scan_store_materializing(&store, &clock, &cfg, 1).expect("scan")
    });

    // The zero-copy path across thread counts.
    let thread_counts = [1usize, 2, 4, 8];
    let mut rates = Vec::new();
    for &threads in &thread_counts {
        let (rate, json) = bench(&format!("zero-copy threads={threads}"), &|| {
            scan_store(&store, &clock, &cfg, threads).expect("scan")
        });
        assert_eq!(
            json, mat_json,
            "zero-copy scan at {threads} threads diverged from the materializing scan"
        );
        rates.push((threads, rate));
    }
    let rate_of = |t: usize| {
        rates
            .iter()
            .find(|(n, _)| *n == t)
            .map(|(_, r)| *r)
            .unwrap()
    };
    let zero_copy_speedup = rate_of(1) / mat_rate;
    let speedup4 = rate_of(4) / rate_of(1);
    println!(
        "  zero-copy over materializing (1 thread): {zero_copy_speedup:.2}x; \
         4-thread over 1-thread: {speedup4:.2}x on {cores} core(s)"
    );
    if stats.bundles >= GATE_MIN_BUNDLES {
        assert!(
            zero_copy_speedup >= GATE_MIN_SPEEDUP,
            "zero-copy speedup {zero_copy_speedup:.2}x under the {GATE_MIN_SPEEDUP}x gate \
             at {} bundles",
            stats.bundles
        );
    } else {
        println!(
            "  note: {} bundles is under the {GATE_MIN_BUNDLES}-bundle gate threshold; \
             speedup reported but not enforced",
            stats.bundles
        );
    }

    let out = std::env::var("SANDWICH_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".into());
    let entries: Vec<String> = rates
        .iter()
        .map(|(t, r)| format!("    \"{t}\": {r:.0}"))
        .collect();
    let snapshot = format!(
        "{{\n  \"bundles\": {bundles},\n  \"segments\": {segments},\n  \"segment_bundles\": {segment_bundles},\n  \"sandwiches\": {sandwiches},\n  \"cores\": {cores},\n  \"single_core\": {single_core},\n  \"bundles_per_sec\": {{\n{rates}\n  }},\n  \"materializing_bundles_per_sec\": {mat_rate:.0},\n  \"zero_copy_speedup_1_thread\": {zero_copy_speedup:.2},\n  \"speedup_4_threads\": {speedup4:.2},\n  \"byte_identical_across_paths_and_threads\": true\n}}\n",
        bundles = stats.bundles,
        segments = store.segments().len(),
        sandwiches = stats.sandwiches,
        rates = entries.join(",\n"),
    );
    std::fs::write(&out, snapshot).expect("write snapshot");
    println!("  snapshot → {out}");
    let _ = std::fs::remove_dir_all(&store_dir);
}
