//! Crash-safety benchmark and conformance harness for the bundle store.
//!
//! Three phases, one invariant: **no silent divergence** — every injected
//! failure must end in either a byte-identical recovered store/report or
//! an explicit quarantine with exact coverage accounting. Anything else
//! counts as `silent_divergence` and fails the gate.
//!
//! * **Phase A (crash matrix)** — enumerate every crash step of a full
//!   segment seal (segment write → footer → rename → directory fsync →
//!   manifest update), and for each step × {clean kill, torn write} kill
//!   the writer mid-seal, resume, re-seal, and require the recovered
//!   store and its analysis report to be byte-identical to an
//!   uninterrupted reference run.
//! * **Phase B (doctor matrix)** — at `SANDWICH_CRASH_BUNDLES` scale,
//!   mutate a sealed segment (torn tails, zeroed/flipped footers, body
//!   flips, deleted files), run `store doctor --repair`, and require
//!   either a byte-identical repaired report or an explicit quarantine
//!   whose coverage matches the victim exactly.
//! * **Phase C (degraded serving)** — quarantine a segment and require
//!   `queryd` to keep serving: `/healthz` 200, `/api/summary` carrying
//!   the quarantine in its coverage block.
//!
//! Writes `results/BENCH_crash.json` (or `$SANDWICH_BENCH_OUT`) with
//! `crash_points`, `silent_divergence`, recovery timings, and
//! `torn_tail_bytes_reclaimed`. Scale knobs: `SANDWICH_CRASH_BUNDLES`
//! (default 50,000) and `SANDWICH_CRASH_STRIDE` (matrix subsampling for
//! smoke runs; default 1 = every crash point).
//!
//! `--store <dir>` points phases B and C at an existing shared store
//! (e.g. the one `shard_bench --store` generated) instead of generating
//! a scratch one; every mutated byte is restored before exit, so the
//! shared store survives the run unchanged.

use std::path::Path;
use std::time::Instant;

use sandwich_bench::scale::{generate, ScaleConfig};
use sandwich_core::{scan_store, scan_store_degraded, AnalysisConfig};
use sandwich_net::{HttpClient, Server};
use sandwich_obs::Registry;
use sandwich_query::{QueryService, QueryServiceConfig};
use sandwich_store::{
    crash, doctor, is_injected_crash, BundleStore, CollectedBundle, CrashPlan, Manifest,
    StoreWriter,
};
use sandwich_types::{Hash, Keypair, Lamports, Slot, SlotClock};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read src dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
    }
}

fn mk_bundle(seed: u64, slot: u64, tip: u64) -> CollectedBundle {
    let kp = Keypair::from_label("crashbench");
    CollectedBundle {
        bundle_id: Hash::digest(&seed.to_le_bytes()),
        slot: Slot(slot),
        timestamp_ms: slot * 400,
        tip: Lamports(tip),
        tx_ids: vec![kp.sign(&seed.to_le_bytes())],
    }
}

fn batch(seed: u64, base_slot: u64, n: u64) -> Vec<CollectedBundle> {
    (0..n)
        .map(|i| mk_bundle(seed * 1_000 + i, base_slot + i * 2, 30_000 + i))
        .collect()
}

/// Scan a store and return the deterministic report JSON.
fn report_json(dir: &Path, clock: &SlotClock, config: &AnalysisConfig) -> String {
    let store = BundleStore::open(dir).expect("open store");
    let report = scan_store(&store, clock, config, 2).expect("scan");
    serde_json::to_string(&report).expect("serialize report")
}

fn main() {
    let bundles = env_u64("SANDWICH_CRASH_BUNDLES", 50_000);
    let stride = env_u64("SANDWICH_CRASH_STRIDE", 1).max(1);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shared_store = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scratch = std::env::temp_dir().join(format!("crash-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let clock = SlotClock::default();
    let small_cfg = AnalysisConfig::paper_defaults(1);

    // ---------- Phase A: the seal crash matrix ----------
    // Base store: two sealed segments; the matrix crashes a third seal.
    let base = scratch.join("matrix.base");
    let mut w = StoreWriter::create(&base).expect("create base");
    w.seal_segment(batch(1, 100, 50), Vec::new(), Vec::new())
        .expect("seal 1");
    w.seal_segment(batch(2, 300, 50), Vec::new(), Vec::new())
        .expect("seal 2");
    drop(w);
    let base_sealed = Manifest::load(&base).expect("base manifest").segments;
    let extra = || batch(3, 500, 50);

    // Uninterrupted reference: seal the third segment, snapshot the store.
    let reference = scratch.join("matrix.ref");
    copy_dir(&base, &reference);
    let mut w = StoreWriter::resume(&reference, &base_sealed).expect("resume ref");
    let ref_meta = w
        .seal_segment(extra(), Vec::new(), Vec::new())
        .expect("seal ref");
    drop(w);
    let ref_json = report_json(&reference, &clock, &small_cfg);
    let ref_seg_bytes = std::fs::read(reference.join(&ref_meta.file)).expect("read ref segment");

    // Count the crash steps of one full seal (segment file + manifest).
    let steps = {
        let dir = scratch.join("matrix.count");
        copy_dir(&base, &dir);
        let mut w = StoreWriter::resume(&dir, &base_sealed).expect("resume count");
        let mut plan = CrashPlan::count();
        w.seal_segment_with(extra(), Vec::new(), Vec::new(), Some(&mut plan))
            .expect("counting seal");
        plan.steps_seen()
    };
    println!("crash_bench: one seal = {steps} crash points, stride {stride}");

    let mut silent_divergence: u64 = 0;
    let mut matrix_cases: u64 = 0;
    let mut recovery_us: Vec<u64> = Vec::new();
    for step in (0..steps).step_by(stride as usize) {
        for torn in [false, true] {
            matrix_cases += 1;
            let dir = scratch.join(format!("matrix.s{step}.t{}", torn as u8));
            copy_dir(&base, &dir);
            let mut w = StoreWriter::resume(&dir, &base_sealed).expect("resume victim");
            let mut plan = CrashPlan::crash_at(step, torn, 0xC0FFEE ^ (step * 2 + torn as u64));
            let err = w
                .seal_segment_with(extra(), Vec::new(), Vec::new(), Some(&mut plan))
                .expect_err("crash plan must fire inside the seal");
            assert!(
                is_injected_crash(&err),
                "step {step} torn={torn}: unexpected error {err}"
            );
            drop(w); // the crashed writer is dead

            // Recovery: resume back to the checkpointed prefix, then
            // redo the seal. Whatever the crash left behind (torn tail,
            // orphan segment, half-renamed manifest), the result must be
            // byte-identical to the uninterrupted reference.
            let t = Instant::now();
            let mut w = StoreWriter::resume(&dir, &base_sealed).expect("recovery resume");
            recovery_us.push(t.elapsed().as_micros() as u64);
            let meta = w
                .seal_segment(extra(), Vec::new(), Vec::new())
                .expect("re-seal after recovery");
            drop(w);

            let seg_bytes = std::fs::read(dir.join(&meta.file)).expect("read recovered segment");
            let json = report_json(&dir, &clock, &small_cfg);
            if meta.file != ref_meta.file || seg_bytes != ref_seg_bytes || json != ref_json {
                silent_divergence += 1;
                eprintln!("DIVERGENCE at step {step} torn={torn}");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    recovery_us.sort_unstable();
    let recovery_max_ms = recovery_us.last().copied().unwrap_or(0) as f64 / 1_000.0;
    let recovery_p50_ms =
        recovery_us.get(recovery_us.len() / 2).copied().unwrap_or(0) as f64 / 1_000.0;
    println!(
        "  matrix: {matrix_cases} cases ({} divergent), recovery p50 {recovery_p50_ms:.2} ms / max {recovery_max_ms:.2} ms",
        silent_divergence
    );

    // ---------- Phase B: the doctor matrix at scale ----------
    // `--store` points the destructive phases at an existing shared
    // store; otherwise generate a scratch one. Either way the analysis
    // config only has to be self-consistent between the reference scan
    // and every post-repair scan.
    let (store_dir, owned_store) = match &shared_store {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => (scratch.join("doctor.store"), true),
    };
    if owned_store {
        let scale = ScaleConfig {
            bundles,
            segment_bundles: ((bundles / 8).max(512) as usize).min(8_192),
            days: 2,
            ..ScaleConfig::default()
        };
        let mut writer = StoreWriter::create(&store_dir).expect("create scale store");
        generate(&mut writer, &scale).expect("generate scale store");
        drop(writer.into_reader());
    }
    let store = BundleStore::open(&store_dir).expect("open doctor store");
    assert!(
        store.quarantined().is_empty(),
        "doctor store must start healthy (run `store doctor --repair` first)"
    );
    let store_bundles = store.manifest().total_bundles();
    let scale_cfg = AnalysisConfig::paper_defaults(2);
    let ref_report = scan_store(&store, &clock, &scale_cfg, 4).expect("reference scan");
    let ref_scale_json = serde_json::to_string(&ref_report).expect("serialize");
    let victim = store
        .segments()
        .last()
        .expect("at least one segment")
        .clone();
    let total_bundles = store.manifest().total_bundles();
    drop(store);
    println!(
        "  doctor store: {} bundles in {} segments{}, victim {} ({} bundles)",
        store_bundles,
        Manifest::load(&store_dir).unwrap().segments.len(),
        if owned_store { "" } else { " (shared)" },
        victim.file,
        victim.bundles
    );

    let victim_path = store_dir.join(&victim.file);
    let victim_bytes = std::fs::read(&victim_path).expect("read victim");
    let manifest_bytes =
        std::fs::read(store_dir.join(sandwich_store::MANIFEST_FILE)).expect("read manifest");
    let vlen = victim_bytes.len() as u64;

    type MutationCase = (&'static str, Box<dyn Fn()>);
    let cases: Vec<MutationCase> = vec![
        ("torn_tail_1", {
            let p = victim_path.clone();
            Box::new(move || crash::truncate_to(&p, vlen - 1).unwrap())
        }),
        ("torn_tail_64", {
            let p = victim_path.clone();
            Box::new(move || crash::truncate_to(&p, vlen - 64).unwrap())
        }),
        ("torn_tail_eighth", {
            let p = victim_path.clone();
            Box::new(move || crash::truncate_to(&p, vlen - vlen / 8).unwrap())
        }),
        ("torn_tail_quarter_len", {
            let p = victim_path.clone();
            Box::new(move || crash::truncate_to(&p, vlen / 4).unwrap())
        }),
        ("appended_garbage", {
            let p = victim_path.clone();
            Box::new(move || {
                // A torn tail whose page kept bytes of a later, unrelated
                // write: junk past the sealed footer, reclaimed on repair.
                use std::io::Write;
                let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
                f.write_all(&[0xA5u8; 777]).unwrap();
            })
        }),
        ("zero_footer", {
            let p = victim_path.clone();
            Box::new(move || crash::zero_tail(&p, 68).unwrap())
        }),
        ("flip_footer", {
            let p = victim_path.clone();
            Box::new(move || crash::flip_byte(&p, vlen - 20).unwrap())
        }),
        ("flip_mid", {
            let p = victim_path.clone();
            Box::new(move || crash::flip_byte(&p, vlen / 2).unwrap())
        }),
        ("flip_body", {
            let p = victim_path.clone();
            Box::new(move || crash::flip_byte(&p, 12).unwrap())
        }),
        ("missing_file", {
            let p = victim_path.clone();
            Box::new(move || std::fs::remove_file(&p).unwrap())
        }),
    ];

    let mut doctor_repaired: u64 = 0;
    let mut doctor_quarantined: u64 = 0;
    let mut torn_tail_bytes_reclaimed: u64 = 0;
    let mut doctor_ms_max: f64 = 0.0;
    let doctor_cases = cases.len() as u64;
    for (name, mutate) in &cases {
        mutate();
        let t = Instant::now();
        let report = doctor::repair(&store_dir).expect("doctor repair");
        doctor_ms_max = doctor_ms_max.max(t.elapsed().as_secs_f64() * 1_000.0);
        torn_tail_bytes_reclaimed += report.bytes_reclaimed;

        let reopened = BundleStore::open(&store_dir).expect("reopen after doctor");
        let (scanned, coverage) =
            scan_store_degraded(&reopened, &clock, &scale_cfg, 4, None).expect("degraded scan");
        if report.quarantined == 0 {
            // Repaired (or clean): the report must be byte-identical and
            // the coverage complete — anything else is silent divergence.
            doctor_repaired += 1;
            let json = serde_json::to_string(&scanned).expect("serialize");
            if json != ref_scale_json || !coverage.complete() {
                silent_divergence += 1;
                eprintln!("DIVERGENCE in doctor case {name}: repaired but report differs");
            }
        } else {
            // Quarantined: the loss must be explicit and exact.
            doctor_quarantined += 1;
            let exact = coverage.segments_quarantined == 1
                && coverage.bundles_quarantined == victim.bundles
                && coverage.bundles_scanned + coverage.bundles_quarantined == total_bundles
                && reopened.quarantined().len() == 1;
            if !exact {
                silent_divergence += 1;
                eprintln!("DIVERGENCE in doctor case {name}: quarantine accounting inexact");
            }
        }
        println!(
            "  doctor {name}: {} (bytes_reclaimed {})",
            if report.quarantined > 0 {
                "quarantined"
            } else {
                "repaired"
            },
            report.bytes_reclaimed
        );

        // Restore the healthy baseline for the next case.
        std::fs::write(&victim_path, &victim_bytes).expect("restore victim");
        std::fs::write(
            store_dir.join(sandwich_store::MANIFEST_FILE),
            &manifest_bytes,
        )
        .expect("restore manifest");
        let _ = std::fs::remove_file(store_dir.join(sandwich_query::INDEX_FILE));
    }

    // ---------- Phase C: queryd serves over a quarantined store ----------
    crash::flip_byte(&victim_path, 12).expect("flip body");
    let report = doctor::repair(&store_dir).expect("doctor repair");
    assert_eq!(report.quarantined, 1, "victim must quarantine for phase C");
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let (healthz_ok, summary_has_quarantine) = runtime.block_on(async {
        let service = QueryService::open(QueryServiceConfig::new(&store_dir), Registry::new())
            .expect("open queryd over quarantined store");
        let server = Server::bind("127.0.0.1:0", service.router())
            .await
            .expect("bind");
        let client = HttpClient::new(server.local_addr());
        let health = client.get("/healthz").await.expect("healthz");
        let summary = client.get("/api/summary").await.expect("summary");
        let text = String::from_utf8_lossy(&summary.body).to_string();
        server.shutdown().await;
        (
            health.status == 200 && summary.status == 200,
            text.contains("\"segments_quarantined\":1"),
        )
    });
    if !healthz_ok || !summary_has_quarantine {
        silent_divergence += 1;
        eprintln!("DIVERGENCE in phase C: queryd did not serve the quarantined store");
    }
    println!("  queryd over quarantined store: healthz_ok={healthz_ok}, coverage reported={summary_has_quarantine}");

    // A shared store must survive the run unchanged: undo the phase C
    // corruption + quarantine and drop the index built over it.
    if !owned_store {
        std::fs::write(&victim_path, &victim_bytes).expect("restore shared victim");
        std::fs::write(
            store_dir.join(sandwich_store::MANIFEST_FILE),
            &manifest_bytes,
        )
        .expect("restore shared manifest");
        let _ = std::fs::remove_file(store_dir.join(sandwich_query::INDEX_FILE));
    }

    // ---------- Snapshot + gates ----------
    let out = std::env::var("SANDWICH_BENCH_OUT").unwrap_or_else(|_| {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_crash.json".into()
    });
    let snapshot = format!(
        "{{\n  \"crash_points\": {steps},\n  \"crash_matrix_cases\": {matrix_cases},\n  \"stride\": {stride},\n  \"silent_divergence\": {silent_divergence},\n  \"recovery_p50_ms\": {recovery_p50_ms:.3},\n  \"recovery_max_ms\": {recovery_max_ms:.3},\n  \"store_bundles\": {store_bundles},\n  \"doctor_cases\": {doctor_cases},\n  \"doctor_repaired\": {doctor_repaired},\n  \"doctor_quarantined\": {doctor_quarantined},\n  \"doctor_ms_max\": {doctor_ms_max:.3},\n  \"torn_tail_bytes_reclaimed\": {torn_tail_bytes_reclaimed},\n  \"queryd_served_with_quarantine\": {served},\n  \"healthz_ok\": {healthz_ok}\n}}\n",
        served = summary_has_quarantine,
    );
    std::fs::write(&out, snapshot).expect("write snapshot");
    println!("  snapshot → {out}");

    let _ = std::fs::remove_dir_all(&scratch);
    assert!(
        steps >= 20,
        "crash matrix too small: {steps} crash points (need >= 20)"
    );
    assert_eq!(
        silent_divergence, 0,
        "crash harness observed silent divergence"
    );
    println!(
        "crash_bench: {matrix_cases} matrix cases + {doctor_cases} doctor cases, zero silent divergence"
    );
}
