//! Load harness for the query-serving subsystem.
//!
//! Seeds a multi-day measurement, seals it into a segment store, starts
//! the `queryd` service on an ephemeral port, and replays a seeded mixed
//! workload against it over real sockets:
//!
//! - **Phase A (zipfian)** — hot keys drawn from a zipf-weighted set of
//!   endpoints (summary, days, leaderboards, top attackers and pools), the
//!   regime a public tracker UI produces. Asserts the cache-hit rate.
//! - **Phase B (cold scans)** — distinct slot-range queries that each miss
//!   the cache, the regime of a crawler walking history.
//!
//! Every distinct request's HTTP body is compared byte-for-byte against an
//! uncached evaluation on the same engine snapshot, and a fresh service
//! opened on the same directory must reuse the persisted index (zero
//! rebuilds). Writes p50/p95/p99 latency and throughput to
//! `results/BENCH_query.json` (or `$SANDWICH_BENCH_OUT`).
//!
//! `--store <dir>` replays the workload against an existing store (e.g.
//! the one `shard_bench --store` generated) instead of seeding a fresh
//! one; a shared store is never deleted on exit.

use rand::{Rng, SeedableRng};

use sandwich_core::AnalysisConfig;
use sandwich_net::{HttpClient, Server};
use sandwich_obs::{names, Registry};
use sandwich_query::{QueryRequest, QueryService, QueryServiceConfig};
use sandwich_store::StoreWriter;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One workload item: the HTTP path and its typed form (for the uncached
/// correctness check).
#[derive(Clone)]
struct WorkItem {
    path: String,
    typed: QueryRequest,
}

fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[rank] as f64 / 1_000.0
}

fn main() {
    let days = env_usize("SANDWICH_DAYS", 8) as u64;
    let clients = env_usize("SANDWICH_QUERY_CLIENTS", 4);
    let zipf_requests = env_usize("SANDWICH_QUERY_ZIPF_REQUESTS", 600);
    let cold_requests = env_usize("SANDWICH_QUERY_COLD_REQUESTS", 120);
    let seed = env_usize("SANDWICH_SEED", 7) as u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shared_store = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Seed the store from the simulated measurement, or reuse a shared
    // generated store (`--store <dir>`, e.g. one `shard_bench` built) —
    // shared stores are opened with default query semantics and are left
    // intact on exit.
    let (store_dir, owned_store, service_config) = if let Some(dir) = shared_store {
        let store = sandwich_store::BundleStore::open(&dir).expect("open shared store");
        println!(
            "query_bench: reusing {} bundles in {} segments from {dir}",
            store.manifest().total_bundles(),
            store.segments().len()
        );
        drop(store);
        let config = QueryServiceConfig::new(&dir);
        (dir, false, config)
    } else {
        let fr = sandwich_bench::run_pipeline_with(sandwich_sim::ScenarioConfig {
            days,
            ..sandwich_bench::figure_scenario()
        });
        let store_dir = std::env::var("SANDWICH_QUERY_STORE_DIR")
            .unwrap_or_else(|_| "query_bench.store".into());
        let _ = std::fs::remove_dir_all(&store_dir);
        let mut writer = StoreWriter::create(&store_dir).expect("create store");
        let segment_bundles = (fr.run.dataset.len() / 32).max(64);
        fr.run
            .dataset
            .write_store(&mut writer, segment_bundles)
            .expect("seal segments");
        let store = writer.into_reader();
        println!(
            "query_bench: {} bundles in {} segments over {days} day(s)",
            fr.run.dataset.len(),
            store.segments().len()
        );
        drop(store);

        // Open the service with the same semantics the analysis used.
        let analysis = AnalysisConfig::paper_defaults(days);
        let mut service_config = QueryServiceConfig::new(&store_dir);
        service_config.query.detector = analysis.detector;
        service_config.query.defensive_threshold = analysis.defensive_threshold;
        service_config.query.clock = fr.clock;
        (store_dir, true, service_config)
    };
    let registry = Registry::new();
    let service =
        QueryService::open(service_config.clone(), registry.clone()).expect("open service");
    let engine = service.engine_snapshot();
    let index = engine.index();
    println!(
        "  index: {} sandwiches, {} attackers, {} pools, generation {}",
        index.totals.sandwiches,
        index.attackers.len(),
        index.pools.len(),
        engine.generation()
    );

    // Hot-key set, zipf-weighted by rank.
    let mut hot: Vec<WorkItem> = vec![
        WorkItem {
            path: "/api/summary".into(),
            typed: QueryRequest::Summary,
        },
        WorkItem {
            path: "/api/days".into(),
            typed: QueryRequest::Days,
        },
        WorkItem {
            path: "/api/attackers?limit=20".into(),
            typed: QueryRequest::Attackers {
                limit: 20,
                after: 0,
            },
        },
        WorkItem {
            path: "/api/sandwiches?from_slot=0&to_slot=500000&limit=50".into(),
            typed: QueryRequest::Sandwiches {
                from_slot: 0,
                to_slot: 500_000,
                limit: 50,
                after: 0,
            },
        },
    ];
    for entry in index.attackers.iter().take(5) {
        hot.push(WorkItem {
            path: format!("/api/attacker/{}", entry.attacker),
            typed: QueryRequest::Attacker {
                pubkey: entry.attacker,
            },
        });
    }
    for entry in index.pools.iter().take(5) {
        hot.push(WorkItem {
            path: format!("/api/pool/{}", entry.mint),
            typed: QueryRequest::Pool { mint: entry.mint },
        });
    }

    // Cold scans: distinct slot windows, each seen exactly once.
    let max_slot = index.totals.max_slot.max(1);
    let window = (max_slot / cold_requests.max(1) as u64).max(1);
    let cold: Vec<WorkItem> = (0..cold_requests as u64)
        .map(|i| {
            let from = i * window;
            let to = from + window;
            WorkItem {
                path: format!("/api/sandwiches?from_slot={from}&to_slot={to}&limit=100"),
                typed: QueryRequest::Sandwiches {
                    from_slot: from,
                    to_slot: to,
                    limit: 100,
                    after: 0,
                },
            }
        })
        .collect();

    // Zipf sampling: weight 1/(rank+1), deterministic per seed.
    let weights: Vec<f64> = (0..hot.len()).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut zipf_plan: Vec<Vec<WorkItem>> = vec![Vec::new(); clients];
    for i in 0..zipf_requests {
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut chosen = 0;
        for (rank, w) in weights.iter().enumerate() {
            if pick < *w {
                chosen = rank;
                break;
            }
            pick -= w;
        }
        zipf_plan[i % clients].push(hot[chosen].clone());
    }
    let mut cold_plan: Vec<Vec<WorkItem>> = vec![Vec::new(); clients];
    for (i, item) in cold.iter().enumerate() {
        cold_plan[i % clients].push(item.clone());
    }

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let result = runtime.block_on(async move {
        let server = Server::bind("127.0.0.1:0", service.router())
            .await
            .expect("bind");
        let addr = server.local_addr();

        let run_phase = |plans: Vec<Vec<WorkItem>>| async move {
            let started = std::time::Instant::now();
            let mut set = tokio::task::JoinSet::new();
            for plan in plans {
                set.spawn(async move {
                    let client = HttpClient::new(addr);
                    let mut latencies_us = Vec::with_capacity(plan.len());
                    for item in plan {
                        let t = std::time::Instant::now();
                        let response = client.get(&item.path).await.expect("request");
                        latencies_us.push(t.elapsed().as_micros() as u64);
                        assert_eq!(response.status, 200, "{}", item.path);
                    }
                    latencies_us
                });
            }
            let mut all = Vec::new();
            while let Some(joined) = set.join_next().await {
                all.extend(joined.expect("client task"));
            }
            (all, started.elapsed().as_secs_f64())
        };

        // Phase A: zipfian hot keys.
        let before = registry.snapshot();
        let (zipf_latencies, zipf_wall) = run_phase(zipf_plan).await;
        let after = registry.snapshot();
        let hits = after.counter(names::QUERY_CACHE_HITS).unwrap_or(0)
            - before.counter(names::QUERY_CACHE_HITS).unwrap_or(0);
        let misses = after.counter(names::QUERY_CACHE_MISSES).unwrap_or(0)
            - before.counter(names::QUERY_CACHE_MISSES).unwrap_or(0);
        let zipf_hit_rate = hits as f64 / (hits + misses).max(1) as f64;

        // Phase B: cold scans.
        let (cold_latencies, cold_wall) = run_phase(cold_plan).await;

        // Byte-identical: every distinct request vs uncached evaluation on
        // the same engine snapshot.
        let client = HttpClient::new(addr);
        let mut distinct: Vec<&WorkItem> = hot.iter().chain(cold.iter()).collect();
        distinct.sort_by(|a, b| a.path.cmp(&b.path));
        distinct.dedup_by(|a, b| a.path == b.path);
        let mut compared = 0usize;
        for item in &distinct {
            let served = client.get(&item.path).await.expect("request");
            let uncached = engine.evaluate(&item.typed);
            assert_eq!(
                &served.body[..],
                &uncached.body[..],
                "cached response for {} diverged from uncached evaluation",
                item.path
            );
            compared += 1;
        }

        server.shutdown().await;
        (
            zipf_latencies,
            zipf_wall,
            zipf_hit_rate,
            cold_latencies,
            cold_wall,
            compared,
        )
    });
    let (mut zipf_latencies, zipf_wall, zipf_hit_rate, mut cold_latencies, cold_wall, compared) =
        result;

    assert!(
        zipf_hit_rate > 0.5,
        "zipfian phase must be cache-dominated, got hit rate {zipf_hit_rate:.3}"
    );

    // Restart on the same directory: the persisted index is reused.
    let restart_registry = Registry::new();
    let reopened =
        QueryService::open(service_config, restart_registry.clone()).expect("reopen service");
    let snap = restart_registry.snapshot();
    let rebuilds = snap.counter(names::QUERY_INDEX_REBUILDS).unwrap_or(0);
    let loads = snap.counter(names::QUERY_INDEX_LOADS).unwrap_or(0);
    assert_eq!(rebuilds, 0, "restart must reuse the persisted index");
    assert_eq!(loads, 1, "restart must load the persisted index once");
    drop(reopened);

    zipf_latencies.sort_unstable();
    cold_latencies.sort_unstable();
    let mut all: Vec<u64> = zipf_latencies
        .iter()
        .chain(cold_latencies.iter())
        .copied()
        .collect();
    all.sort_unstable();
    let requests = all.len();
    let wall = zipf_wall + cold_wall;
    let throughput_rps = requests as f64 / wall.max(1e-9);

    println!(
        "  zipf phase: {} requests, hit rate {:.1}%, p50 {:.2} ms",
        zipf_latencies.len(),
        zipf_hit_rate * 100.0,
        percentile_ms(&zipf_latencies, 0.50),
    );
    println!(
        "  cold phase: {} requests, p50 {:.2} ms",
        cold_latencies.len(),
        percentile_ms(&cold_latencies, 0.50),
    );
    println!(
        "  overall: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, {:.0} req/s over {clients} client(s)",
        percentile_ms(&all, 0.50),
        percentile_ms(&all, 0.95),
        percentile_ms(&all, 0.99),
        throughput_rps,
    );
    println!("  byte-identical vs uncached evaluation: {compared} distinct requests verified");

    let out = std::env::var("SANDWICH_BENCH_OUT").unwrap_or_else(|_| {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_query.json".into()
    });
    let snapshot = format!(
        "{{\n  \"days\": {days},\n  \"clients\": {clients},\n  \"requests\": {requests},\n  \"zipf_requests\": {zr},\n  \"cold_requests\": {cr},\n  \"zipf_cache_hit_rate\": {zipf_hit_rate:.3},\n  \"p50_ms\": {p50:.3},\n  \"p95_ms\": {p95:.3},\n  \"p99_ms\": {p99:.3},\n  \"throughput_rps\": {throughput_rps:.0},\n  \"byte_identical\": true,\n  \"restart_rebuilds\": {rebuilds},\n  \"restart_loads\": {loads}\n}}\n",
        zr = zipf_latencies.len(),
        cr = cold_latencies.len(),
        p50 = percentile_ms(&all, 0.50),
        p95 = percentile_ms(&all, 0.95),
        p99 = percentile_ms(&all, 0.99),
    );
    std::fs::write(&out, snapshot).expect("write snapshot");
    println!("  snapshot → {out}");

    if owned_store {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
}
