//! Load harness for the query-serving subsystem.
//!
//! Seeds a multi-day measurement, seals it into a segment store, starts
//! the `queryd` service on an ephemeral port, and replays a seeded mixed
//! workload against it over real sockets:
//!
//! - **Phase A (zipfian)** — hot keys drawn from a zipf-weighted set of
//!   endpoints (summary, days, leaderboards, top attackers and pools), the
//!   regime a public tracker UI produces. Asserts the cache-hit rate.
//! - **Phase B (cold scans)** — distinct slot-range queries that each miss
//!   the cache, the regime of a crawler walking history.
//!
//! Every distinct request's HTTP body is compared byte-for-byte against an
//! uncached evaluation on the same engine snapshot, and a fresh service
//! opened on the same directory must reuse the persisted index (zero
//! rebuilds).
//!
//! - **Phase C (live tail)** — on a small dedicated store, a writer seals
//!   segments (each with one planted sandwich) while the service folds
//!   forward and a cursor-walking client tails `/api/live`. Measures
//!   freshness (seals between planting a sandwich and seeing it on the
//!   tail), asserts every reload was an incremental fold (zero full
//!   rebuilds), and checks the sharded router serves identical live bytes.
//!
//! Writes p50/p95/p99 latency, throughput, and the live-tail gate fields
//! (`fold_only_reloads`, `full_rebuilds`, `p99_freshness_seals`,
//! `live_identical`) to `results/BENCH_query.json` (or
//! `$SANDWICH_BENCH_OUT`).
//!
//! `--store <dir>` replays the workload against an existing store (e.g.
//! the one `shard_bench --store` generated) instead of seeding a fresh
//! one; a shared store is never deleted on exit.

use rand::{Rng, SeedableRng};

use sandwich_core::AnalysisConfig;
use sandwich_jito::{bundle_id_of, tip_account};
use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_net::{HttpClient, Server};
use sandwich_obs::{names, Registry};
use sandwich_query::{QueryRequest, QueryService, QueryServiceConfig};
use sandwich_shard::{ClusterConfig, ServingCluster};
use sandwich_store::{CollectedBundle, CollectedDetail, Manifest, StoreWriter};
use sandwich_types::{Hash, Keypair, LamportDelta, Lamports, Pubkey, Signature, Slot};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One workload item: the HTTP path and its typed form (for the uncached
/// correctness check).
#[derive(Clone)]
struct WorkItem {
    path: String,
    typed: QueryRequest,
}

fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[rank] as f64 / 1_000.0
}

fn percentile_u64(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// A swap leg for the planted live-tail sandwiches, mirroring the scale
/// generator's shape.
fn swap_meta(
    tx_id: Signature,
    signer: Pubkey,
    mint: Pubkey,
    sol_delta_trade: i64,
    tokens: i128,
    tip: u64,
) -> TransactionMeta {
    let fee = 5_000i64;
    let mut sol_deltas = vec![SolDelta {
        account: signer,
        delta: LamportDelta(sol_delta_trade - fee - tip as i64),
    }];
    if tip > 0 {
        sol_deltas.push(SolDelta {
            account: tip_account(0),
            delta: LamportDelta(tip as i64),
        });
    }
    TransactionMeta {
        tx_id,
        signer,
        fee: Lamports(fee as u64),
        priority_fee: Lamports::ZERO,
        success: true,
        error: None,
        sol_deltas,
        token_deltas: vec![TokenDelta {
            owner: signer,
            mint,
            delta: tokens,
        }],
    }
}

/// One segment for the live-tail phase: `fill` plain bundles plus one
/// planted, detectable sandwich. Returns the sandwich's bundle id.
fn live_segment(n: u64, fill: u64) -> (Vec<CollectedBundle>, Vec<CollectedDetail>, Hash) {
    let kp = Keypair::from_label("query-bench-live");
    let base_slot = n * 400;
    let mut bundles: Vec<CollectedBundle> = (0..fill)
        .map(|i| {
            let seed = n * 100_000 + i;
            CollectedBundle {
                bundle_id: Hash::digest(&seed.to_le_bytes()),
                slot: Slot(base_slot + i * 2),
                timestamp_ms: (base_slot + i * 2) * 400,
                tip: Lamports(25_000 + i),
                tx_ids: vec![kp.sign(&seed.to_le_bytes())],
            }
        })
        .collect();
    let attacker = Pubkey::derive(&format!("qb-live-attacker-{n}"));
    let victim = Pubkey::derive(&format!("qb-live-victim-{n}"));
    let mint = Pubkey::derive(&format!("qb-live-pool-{n}"));
    let tx_ids: Vec<Signature> = (0..3u8).map(|t| kp.sign(&[n as u8, t, 0xB7])).collect();
    let (sol_in, tokens, tip) = (2_000_000_000i64, 10_000i128, 1_000_000u64);
    let front = swap_meta(tx_ids[0], attacker, mint, -sol_in, tokens, 0);
    let mid = swap_meta(tx_ids[1], victim, mint, -(sol_in + 600_000_000), tokens, 0);
    let back = swap_meta(
        tx_ids[2],
        attacker,
        mint,
        sol_in + 150_000_000,
        -tokens,
        tip,
    );
    let bundle_id = bundle_id_of(&tx_ids);
    let slot = Slot(base_slot + fill);
    let details = [front, mid, back]
        .into_iter()
        .map(|meta| CollectedDetail {
            bundle_id,
            slot,
            meta,
        })
        .collect();
    bundles.push(CollectedBundle {
        bundle_id,
        slot,
        timestamp_ms: slot.0 * 400,
        tip: Lamports(tip),
        tx_ids,
    });
    (bundles, details, bundle_id)
}

fn main() {
    let days = env_usize("SANDWICH_DAYS", 8) as u64;
    let clients = env_usize("SANDWICH_QUERY_CLIENTS", 4);
    let zipf_requests = env_usize("SANDWICH_QUERY_ZIPF_REQUESTS", 600);
    let cold_requests = env_usize("SANDWICH_QUERY_COLD_REQUESTS", 120);
    let seed = env_usize("SANDWICH_SEED", 7) as u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shared_store = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Seed the store from the simulated measurement, or reuse a shared
    // generated store (`--store <dir>`, e.g. one `shard_bench` built) —
    // shared stores are opened with default query semantics and are left
    // intact on exit.
    let (store_dir, owned_store, service_config) = if let Some(dir) = shared_store {
        let store = sandwich_store::BundleStore::open(&dir).expect("open shared store");
        println!(
            "query_bench: reusing {} bundles in {} segments from {dir}",
            store.manifest().total_bundles(),
            store.segments().len()
        );
        drop(store);
        let config = QueryServiceConfig::new(&dir);
        (dir, false, config)
    } else {
        let fr = sandwich_bench::run_pipeline_with(sandwich_sim::ScenarioConfig {
            days,
            ..sandwich_bench::figure_scenario()
        });
        let store_dir = std::env::var("SANDWICH_QUERY_STORE_DIR")
            .unwrap_or_else(|_| "query_bench.store".into());
        let _ = std::fs::remove_dir_all(&store_dir);
        let mut writer = StoreWriter::create(&store_dir).expect("create store");
        let segment_bundles = (fr.run.dataset.len() / 32).max(64);
        fr.run
            .dataset
            .write_store(&mut writer, segment_bundles)
            .expect("seal segments");
        let store = writer.into_reader();
        println!(
            "query_bench: {} bundles in {} segments over {days} day(s)",
            fr.run.dataset.len(),
            store.segments().len()
        );
        drop(store);

        // Open the service with the same semantics the analysis used.
        let analysis = AnalysisConfig::paper_defaults(days);
        let mut service_config = QueryServiceConfig::new(&store_dir);
        service_config.query.detector = analysis.detector;
        service_config.query.defensive_threshold = analysis.defensive_threshold;
        service_config.query.clock = fr.clock;
        (store_dir, true, service_config)
    };
    let registry = Registry::new();
    let service =
        QueryService::open(service_config.clone(), registry.clone()).expect("open service");
    let engine = service.engine_snapshot();
    let index = engine.index();
    println!(
        "  index: {} sandwiches, {} attackers, {} pools, generation {}",
        index.totals.sandwiches,
        index.attackers.len(),
        index.pools.len(),
        engine.generation()
    );

    // Hot-key set, zipf-weighted by rank.
    let mut hot: Vec<WorkItem> = vec![
        WorkItem {
            path: "/api/summary".into(),
            typed: QueryRequest::Summary,
        },
        WorkItem {
            path: "/api/days".into(),
            typed: QueryRequest::Days,
        },
        WorkItem {
            path: "/api/attackers?limit=20".into(),
            typed: QueryRequest::Attackers {
                limit: 20,
                after: 0,
            },
        },
        WorkItem {
            path: "/api/sandwiches?from_slot=0&to_slot=500000&limit=50".into(),
            typed: QueryRequest::Sandwiches {
                from_slot: 0,
                to_slot: 500_000,
                limit: 50,
                after: 0,
            },
        },
    ];
    for entry in index.attackers.iter().take(5) {
        hot.push(WorkItem {
            path: format!("/api/attacker/{}", entry.attacker),
            typed: QueryRequest::Attacker {
                pubkey: entry.attacker,
            },
        });
    }
    for entry in index.pools.iter().take(5) {
        hot.push(WorkItem {
            path: format!("/api/pool/{}", entry.mint),
            typed: QueryRequest::Pool { mint: entry.mint },
        });
    }

    // Cold scans: distinct slot windows, each seen exactly once.
    let max_slot = index.totals.max_slot.max(1);
    let window = (max_slot / cold_requests.max(1) as u64).max(1);
    let cold: Vec<WorkItem> = (0..cold_requests as u64)
        .map(|i| {
            let from = i * window;
            let to = from + window;
            WorkItem {
                path: format!("/api/sandwiches?from_slot={from}&to_slot={to}&limit=100"),
                typed: QueryRequest::Sandwiches {
                    from_slot: from,
                    to_slot: to,
                    limit: 100,
                    after: 0,
                },
            }
        })
        .collect();

    // Zipf sampling: weight 1/(rank+1), deterministic per seed.
    let weights: Vec<f64> = (0..hot.len()).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut zipf_plan: Vec<Vec<WorkItem>> = vec![Vec::new(); clients];
    for i in 0..zipf_requests {
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut chosen = 0;
        for (rank, w) in weights.iter().enumerate() {
            if pick < *w {
                chosen = rank;
                break;
            }
            pick -= w;
        }
        zipf_plan[i % clients].push(hot[chosen].clone());
    }
    let mut cold_plan: Vec<Vec<WorkItem>> = vec![Vec::new(); clients];
    for (i, item) in cold.iter().enumerate() {
        cold_plan[i % clients].push(item.clone());
    }

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let result = runtime.block_on(async move {
        let server = Server::bind("127.0.0.1:0", service.router())
            .await
            .expect("bind");
        let addr = server.local_addr();

        let run_phase = |plans: Vec<Vec<WorkItem>>| async move {
            let started = std::time::Instant::now();
            let mut set = tokio::task::JoinSet::new();
            for plan in plans {
                set.spawn(async move {
                    let client = HttpClient::new(addr);
                    let mut latencies_us = Vec::with_capacity(plan.len());
                    for item in plan {
                        let t = std::time::Instant::now();
                        let response = client.get(&item.path).await.expect("request");
                        latencies_us.push(t.elapsed().as_micros() as u64);
                        assert_eq!(response.status, 200, "{}", item.path);
                    }
                    latencies_us
                });
            }
            let mut all = Vec::new();
            while let Some(joined) = set.join_next().await {
                all.extend(joined.expect("client task"));
            }
            (all, started.elapsed().as_secs_f64())
        };

        // Phase A: zipfian hot keys.
        let before = registry.snapshot();
        let (zipf_latencies, zipf_wall) = run_phase(zipf_plan).await;
        let after = registry.snapshot();
        let hits = after.counter(names::QUERY_CACHE_HITS).unwrap_or(0)
            - before.counter(names::QUERY_CACHE_HITS).unwrap_or(0);
        let misses = after.counter(names::QUERY_CACHE_MISSES).unwrap_or(0)
            - before.counter(names::QUERY_CACHE_MISSES).unwrap_or(0);
        let zipf_hit_rate = hits as f64 / (hits + misses).max(1) as f64;

        // Phase B: cold scans.
        let (cold_latencies, cold_wall) = run_phase(cold_plan).await;

        // Byte-identical: every distinct request vs uncached evaluation on
        // the same engine snapshot.
        let client = HttpClient::new(addr);
        let mut distinct: Vec<&WorkItem> = hot.iter().chain(cold.iter()).collect();
        distinct.sort_by(|a, b| a.path.cmp(&b.path));
        distinct.dedup_by(|a, b| a.path == b.path);
        let mut compared = 0usize;
        for item in &distinct {
            let served = client.get(&item.path).await.expect("request");
            let uncached = engine.evaluate(&item.typed);
            assert_eq!(
                &served.body[..],
                &uncached.body[..],
                "cached response for {} diverged from uncached evaluation",
                item.path
            );
            compared += 1;
        }

        server.shutdown().await;
        (
            zipf_latencies,
            zipf_wall,
            zipf_hit_rate,
            cold_latencies,
            cold_wall,
            compared,
        )
    });
    let (mut zipf_latencies, zipf_wall, zipf_hit_rate, mut cold_latencies, cold_wall, compared) =
        result;

    assert!(
        zipf_hit_rate > 0.5,
        "zipfian phase must be cache-dominated, got hit rate {zipf_hit_rate:.3}"
    );

    // Restart on the same directory: the persisted index is reused.
    let restart_registry = Registry::new();
    let reopened =
        QueryService::open(service_config, restart_registry.clone()).expect("reopen service");
    let snap = restart_registry.snapshot();
    let rebuilds = snap.counter(names::QUERY_INDEX_REBUILDS).unwrap_or(0);
    let loads = snap.counter(names::QUERY_INDEX_LOADS).unwrap_or(0);
    assert_eq!(rebuilds, 0, "restart must reuse the persisted index");
    assert_eq!(loads, 1, "restart must load the persisted index once");
    drop(reopened);

    // Phase C: live-tail freshness on a small dedicated store. A writer
    // seals segments (one planted sandwich each), every seal is folded —
    // never rebuilt — into the live index, and a cursor-tailing client
    // measures how many seals pass before each sandwich shows up on
    // `/api/live`.
    let live_seals = env_usize("SANDWICH_LIVE_SEALS", 8) as u64;
    let live_fill = env_usize("SANDWICH_LIVE_FILL", 64) as u64;
    let live_dir = std::env::var("SANDWICH_LIVE_STORE_DIR")
        .unwrap_or_else(|_| "query_bench.live.store".into());
    let _ = std::fs::remove_dir_all(&live_dir);
    let mut live_writer = StoreWriter::create(&live_dir).expect("create live store");
    let (bundles, details, _) = live_segment(0, live_fill);
    live_writer
        .seal_segment(bundles, details, Vec::new())
        .expect("seal live segment");
    drop(live_writer);

    fn extract_cursor(body: &str) -> String {
        let needle = "\"cursor\":\"";
        let start = body.find(needle).expect("cursor field") + needle.len();
        let end = body[start..].find('"').expect("cursor end") + start;
        body[start..end].to_string()
    }

    let live_registry = Registry::new();
    let live_service =
        QueryService::open(QueryServiceConfig::new(&live_dir), live_registry.clone())
            .expect("open live service");
    let live_path = std::path::Path::new(&live_dir).to_path_buf();
    let (mut freshness, live_identical) = runtime.block_on(async {
        let server = Server::bind("127.0.0.1:0", live_service.router())
            .await
            .expect("bind live");
        let client = HttpClient::new(server.local_addr());

        // Drain the initial tail so the cursor sits at the tip.
        let first = client.get("/api/live?limit=64").await.expect("live");
        let mut cursor = extract_cursor(std::str::from_utf8(&first.body).expect("utf8"));

        let mut pending: Vec<(u64, String)> = Vec::new();
        let mut freshness: Vec<u64> = Vec::new();
        for seal in 1..=live_seals {
            let sealed = Manifest::load(&live_path).expect("manifest").segments;
            let mut writer = StoreWriter::resume(&live_path, &sealed).expect("resume");
            let (bundles, details, bundle_id) = live_segment(seal, live_fill);
            writer
                .seal_segment(bundles, details, Vec::new())
                .expect("seal");
            drop(writer);
            pending.push((seal, bundle_id.to_string()));
            assert!(
                live_service.reload().expect("live reload"),
                "a seal must advance the generation"
            );

            let response = client
                .get(&format!("/api/live?cursor={cursor}&limit=64&wait_ms=100"))
                .await
                .expect("tail");
            assert_eq!(response.status, 200);
            let body = String::from_utf8(response.body.to_vec()).expect("utf8");
            cursor = extract_cursor(&body);
            pending.retain(|(planted, id)| {
                if body.contains(id.as_str()) {
                    freshness.push(seal - planted + 1);
                    false
                } else {
                    true
                }
            });
        }
        assert!(
            pending.is_empty(),
            "every planted sandwich must reach the live tail"
        );

        // The sharded router must serve the same live bytes.
        let cluster = ServingCluster::serve(ClusterConfig::new(&live_dir, 2), Registry::new())
            .await
            .expect("cluster");
        let router_client = HttpClient::new(cluster.router_addr());
        let mut live_identical = true;
        let mut walk = String::new();
        for _ in 0..(live_seals as usize + 8) {
            let path = if walk.is_empty() {
                "/api/live?limit=4".to_string()
            } else {
                format!("/api/live?cursor={walk}&limit=4")
            };
            let a = client.get(&path).await.expect("single live");
            let b = router_client.get(&path).await.expect("router live");
            live_identical &= a.status == 200 && b.status == 200 && a.body == b.body;
            let body = String::from_utf8(a.body.to_vec()).expect("utf8");
            if body.contains("\"rows\":[]") {
                break;
            }
            walk = extract_cursor(&body);
        }
        cluster.shutdown().await;
        server.shutdown().await;
        (freshness, live_identical)
    });
    let live_snap = live_registry.snapshot();
    let live_folds = live_snap.counter(names::QUERY_INDEX_FOLDS).unwrap_or(0);
    let live_reloads = live_snap.counter(names::QUERY_RELOADS).unwrap_or(0);
    let full_rebuilds = live_snap
        .counter(names::QUERY_INDEX_FULL_REBUILDS)
        .unwrap_or(0);
    let fold_only_reloads =
        full_rebuilds == 0 && live_reloads == live_seals && live_folds == live_reloads;
    assert!(
        fold_only_reloads,
        "live phase must fold every reload: folds {live_folds}, reloads {live_reloads}, full rebuilds {full_rebuilds}"
    );
    assert!(live_identical, "router live pages must match single engine");
    freshness.sort_unstable();
    let p99_freshness_seals = percentile_u64(&freshness, 0.99);
    println!(
        "  live phase: {live_seals} seals folded ({live_folds} folds, {full_rebuilds} full rebuilds), freshness p50 {} / p99 {p99_freshness_seals} seal(s), router identical: {live_identical}",
        percentile_u64(&freshness, 0.50),
    );
    let _ = std::fs::remove_dir_all(&live_dir);

    zipf_latencies.sort_unstable();
    cold_latencies.sort_unstable();
    let mut all: Vec<u64> = zipf_latencies
        .iter()
        .chain(cold_latencies.iter())
        .copied()
        .collect();
    all.sort_unstable();
    let requests = all.len();
    let wall = zipf_wall + cold_wall;
    let throughput_rps = requests as f64 / wall.max(1e-9);

    println!(
        "  zipf phase: {} requests, hit rate {:.1}%, p50 {:.2} ms",
        zipf_latencies.len(),
        zipf_hit_rate * 100.0,
        percentile_ms(&zipf_latencies, 0.50),
    );
    println!(
        "  cold phase: {} requests, p50 {:.2} ms",
        cold_latencies.len(),
        percentile_ms(&cold_latencies, 0.50),
    );
    println!(
        "  overall: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, {:.0} req/s over {clients} client(s)",
        percentile_ms(&all, 0.50),
        percentile_ms(&all, 0.95),
        percentile_ms(&all, 0.99),
        throughput_rps,
    );
    println!("  byte-identical vs uncached evaluation: {compared} distinct requests verified");

    let out = std::env::var("SANDWICH_BENCH_OUT").unwrap_or_else(|_| {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_query.json".into()
    });
    let snapshot = format!(
        "{{\n  \"days\": {days},\n  \"clients\": {clients},\n  \"requests\": {requests},\n  \"zipf_requests\": {zr},\n  \"cold_requests\": {cr},\n  \"zipf_cache_hit_rate\": {zipf_hit_rate:.3},\n  \"p50_ms\": {p50:.3},\n  \"p95_ms\": {p95:.3},\n  \"p99_ms\": {p99:.3},\n  \"throughput_rps\": {throughput_rps:.0},\n  \"byte_identical\": true,\n  \"restart_rebuilds\": {rebuilds},\n  \"restart_loads\": {loads},\n  \"live_seals\": {live_seals},\n  \"fold_only_reloads\": {fold_only_reloads},\n  \"full_rebuilds\": {full_rebuilds},\n  \"p99_freshness_seals\": {p99_freshness_seals},\n  \"live_identical\": {live_identical}\n}}\n",
        zr = zipf_latencies.len(),
        cr = cold_latencies.len(),
        p50 = percentile_ms(&all, 0.50),
        p95 = percentile_ms(&all, 0.95),
        p99 = percentile_ms(&all, 0.99),
    );
    std::fs::write(&out, snapshot).expect("write snapshot");
    println!("  snapshot → {out}");

    if owned_store {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
}
