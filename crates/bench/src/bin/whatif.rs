//! Counterfactual defense analysis (paper §5): what detected victims would
//! have saved under defensive bundling or tighter slippage, and the
//! expected-value economics of paying for MEV protection.

use sandwich_core::{defense_economics, defensive_counterfactual, slippage_counterfactual};
use sandwich_dex::SolUsdOracle;
use sandwich_types::Lamports;

fn main() {
    let fr = sandwich_bench::run_figure_pipeline();
    let oracle = SolUsdOracle::default();

    println!("=== what if every victim had defensively bundled? ===");
    let mean_tip = Lamports(11_570); // the paper's $0.0028 mean defensive tip
    let cf = defensive_counterfactual(&fr.report, mean_tip, &oracle);
    println!(
        "victims {} | realized loss ${:.2} | defense would have cost ${:.4} | net saving ${:.2}",
        cf.victims, cf.realized_loss_usd, cf.defense_cost_usd, cf.net_saving_usd
    );

    println!(
        "\n=== what if every victim had set slippage at X bps? (assumed realized ≈ 200 bps) ==="
    );
    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "cap (bps)", "realized $", "capped $", "avoided $"
    );
    for cap in [25u32, 50, 100, 200] {
        let s = slippage_counterfactual(&fr.report, cap, 200, &oracle);
        println!(
            "{:>10} {:>16.2} {:>16.2} {:>14.2}",
            s.cap_bps, s.realized_loss_usd, s.capped_loss_usd, s.avoided_usd
        );
    }

    println!("\n=== per-transaction defense economics (the §5 paradox) ===");
    let econ = defense_economics(&fr.report, &oracle);
    println!(
        "attack probability:        {:.4}%",
        econ.attack_probability * 100.0
    );
    println!("mean loss if attacked:     ${:.2}", econ.mean_loss_usd);
    println!("p95 loss if attacked:      ${:.2}", econ.p95_loss_usd);
    println!("expected loss per tx:      ${:.6}", econ.expected_loss_usd);
    println!("defense cost per tx:       ${:.6}", econ.defense_cost_usd);
    println!("cost / expected-loss:      {:.2}×", econ.cost_to_ev_ratio);
    println!("\nThe paper's conclusion, quantified: defense can cost more than the");
    println!("expected loss, yet the fat tail (p95 ≫ mean) keeps users paying.");
}
