//! Collector-completeness ablation (DESIGN.md §4): page overlap rate and
//! coverage as the polling cadence degrades — the paper's §3.1 soundness
//! argument ("95% of successive request pairs overlapped").

fn main() {
    println!("=== collector completeness vs polling cadence ===");
    println!(
        "{:>18} {:>12} {:>14} {:>12}",
        "poll every (min)", "polls", "overlap rate", "coverage"
    );
    for poll_every_ticks in [1u64, 2, 4, 8] {
        let scenario = sandwich_sim::ScenarioConfig {
            days: 6,
            downtime_days: vec![],
            ..sandwich_bench::figure_scenario()
        };
        // Keep the page fixed at the 2-minute-calibrated size so longer
        // intervals genuinely under-cover, as they would have in the paper.
        let page_limit = sandwich_core::scaled_page_limit(&scenario, 1);
        let mut sim = sandwich_sim::Simulation::new(scenario);
        let pipeline = sandwich_core::PipelineConfig {
            poll_every_ticks,
            collector: sandwich_core::CollectorConfig {
                page_limit,
                ..Default::default()
            },
            ..Default::default()
        };
        let runtime = tokio::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()
            .unwrap();
        let run = runtime
            .block_on(sandwich_core::run_measurement(&mut sim, pipeline))
            .unwrap();
        let total_truth: u64 = sim.truth().per_day.iter().map(|d| d.total_bundles()).sum();
        println!(
            "{:>18} {:>12} {:>13.1}% {:>11.1}%",
            poll_every_ticks * 2,
            run.dataset.polls().len(),
            run.dataset.overlap_rate() * 100.0,
            run.dataset.len() as f64 / total_truth as f64 * 100.0,
        );
    }
    println!("\nAt the paper's 2-minute cadence the 50k page covers ~2.4 polling");
    println!("intervals of volume, so successive pages overlap unless volume spikes —");
    println!("exactly the completeness argument of §3.1.");
}
