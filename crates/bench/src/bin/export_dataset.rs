//! Run a measurement and archive the collected dataset both ways — JSONL
//! (the paper's four-month-archive equivalent) and the segmented binary
//! bundle store — reporting bytes-per-bundle for each, then reload both
//! and verify the offline analyses are identical to the live run.

use std::io::BufReader;

use sandwich_core::{analyze, scan_store, AnalysisConfig, Dataset};
use sandwich_store::StoreWriter;

fn main() {
    let fr = sandwich_bench::run_pipeline_with(sandwich_sim::ScenarioConfig {
        days: std::env::var("SANDWICH_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5),
        ..sandwich_bench::figure_scenario()
    });
    let path = std::env::var("SANDWICH_OUT").unwrap_or_else(|_| "dataset.jsonl".into());
    let store_dir = std::env::var("SANDWICH_STORE_DIR").unwrap_or_else(|_| "dataset.store".into());
    let bundles = fr.run.dataset.len() as f64;

    // JSONL path: serialize by reference, measure, reload, re-analyze.
    // The durable file write (temp + fsync + atomic rename) means a
    // killed export never leaves a half-written archive behind.
    fr.run
        .dataset
        .write_jsonl_file(&path)
        .expect("write archive");
    let jsonl_bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "archived {} bundles, {} details, {} polls → {path} ({:.1} MiB, {:.1} B/bundle)",
        fr.run.dataset.len(),
        fr.run.dataset.detail_count(),
        fr.run.dataset.polls().len(),
        jsonl_bytes as f64 / (1024.0 * 1024.0),
        jsonl_bytes as f64 / bundles,
    );

    // Binary store path: seal segments, measure, scan in parallel.
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut writer = StoreWriter::create(&store_dir).expect("create store");
    fr.run
        .dataset
        .write_store(&mut writer, 2_048)
        .expect("seal segments");
    let store = writer.into_reader();
    let store_bytes = store.manifest().total_bytes();
    println!(
        "sealed {} segments → {store_dir} ({:.1} MiB, {:.1} B/bundle, {:.1}x smaller than JSONL)",
        store.segments().len(),
        store_bytes as f64 / (1024.0 * 1024.0),
        store_bytes as f64 / bundles,
        jsonl_bytes as f64 / store_bytes as f64,
    );

    // Offline re-analysis from each archive alone.
    let reloaded =
        Dataset::read_jsonl(BufReader::new(std::fs::File::open(&path).unwrap())).expect("reload");
    let config = AnalysisConfig::paper_defaults(fr.scenario.days);
    let offline = analyze(&reloaded, &fr.clock, &config);
    assert_eq!(offline.total_sandwiches(), fr.report.total_sandwiches());
    assert_eq!(offline.defense.defensive, fr.report.defense.defensive);
    println!(
        "offline re-analysis matches the live run: {} sandwiches, {} defensive bundles",
        offline.total_sandwiches(),
        offline.defense.defensive,
    );

    let scanned = scan_store(&store, &fr.clock, &config, 4).expect("store scan");
    assert_eq!(
        serde_json::to_string(&scanned).unwrap(),
        serde_json::to_string(&offline).unwrap(),
        "store scan must be byte-identical to the in-memory analysis"
    );
    println!("parallel store scan (4 threads) is byte-identical to the in-memory analysis");
}
