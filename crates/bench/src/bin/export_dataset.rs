//! Run a measurement and archive the collected dataset as JSONL — the
//! repository's equivalent of the paper's four-month archive — then reload
//! it and verify the analysis is identical.

use std::io::BufReader;

use sandwich_core::{analyze, AnalysisConfig, Dataset};

fn main() {
    let fr = sandwich_bench::run_pipeline_with(sandwich_sim::ScenarioConfig {
        days: std::env::var("SANDWICH_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5),
        ..sandwich_bench::figure_scenario()
    });
    let path = std::env::var("SANDWICH_OUT").unwrap_or_else(|_| "dataset.jsonl".into());

    let file = std::fs::File::create(&path).expect("create archive");
    fr.run
        .dataset
        .write_jsonl(std::io::BufWriter::new(file))
        .expect("write archive");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "archived {} bundles, {} details, {} polls → {path} ({:.1} MiB)",
        fr.run.dataset.len(),
        fr.run.dataset.detail_count(),
        fr.run.dataset.polls().len(),
        bytes as f64 / (1024.0 * 1024.0),
    );

    // Offline re-analysis from the archive alone.
    let reloaded =
        Dataset::read_jsonl(BufReader::new(std::fs::File::open(&path).unwrap())).expect("reload");
    let config = AnalysisConfig::paper_defaults(fr.scenario.days);
    let offline = analyze(&reloaded, &fr.clock, &config);
    assert_eq!(offline.total_sandwiches(), fr.report.total_sandwiches());
    assert_eq!(offline.defense.defensive, fr.report.defense.defensive);
    println!(
        "offline re-analysis matches the live run: {} sandwiches, {} defensive bundles",
        offline.total_sandwiches(),
        offline.defense.defensive,
    );
}
