//! Ground-truth conformance bench: run the full measurement pipeline over
//! a labeled scenario, join the findings back to the simulator's
//! per-bundle labels, and score the detector exactly — precision, recall,
//! F1, quantification error, the per-criterion ablation grid, and the
//! adversarial near-miss fuzzer sweep. Asserts the headline contract
//! (precision = recall = 1.0, every criterion load-bearing, every fuzzer
//! family rejected) and writes a deterministic JSON snapshot
//! (`BENCH_conformance.json` or `$SANDWICH_BENCH_OUT`).

use std::time::Instant;

use sandwich_core::{
    ablation_grid, conformance, defensive_confusion, detect, detect_in_bundle, score,
    AnalysisConfig, Conformance, DetectorConfig,
};
use sandwich_obs::Registry;
use sandwich_sim::{NearMissFamily, NearMissFuzzer};
use sandwich_types::DEFENSIVE_TIP_THRESHOLD;

struct Lab {
    conf: Conformance,
    conf_json: String,
    rows: Vec<sandwich_core::AblationRow>,
    defensive: Vec<(sandwich_types::Lamports, sandwich_core::ConfusionMatrix)>,
    findings: usize,
    bundles: usize,
    labeled: usize,
    /// (criterion, precision, recall, f1) of each ablated detector.
    per_criterion: Vec<(u8, f64, f64, f64)>,
    /// Labeled bundles scored per second by the join (best of reps).
    score_rate: f64,
}

fn run_lab(scenario: &sandwich_sim::ScenarioConfig) -> Lab {
    let mut sim = sandwich_sim::Simulation::new(scenario.clone());
    let pipeline = sandwich_core::PipelineConfig {
        collector: sandwich_core::CollectorConfig {
            page_limit: sandwich_core::scaled_page_limit(scenario, 1),
            ..Default::default()
        },
        ..Default::default()
    };
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap();
    let run = runtime
        .block_on(sandwich_core::run_measurement(&mut sim, pipeline))
        .unwrap();
    let report = run.analyze(&AnalysisConfig::paper_defaults(scenario.days));

    let labels = sim.labels();
    let reps: usize = std::env::var("SANDWICH_SCORE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let mut best = f64::INFINITY;
    let mut conf = score(&report, labels);
    for _ in 0..reps {
        let started = Instant::now();
        conf = score(&report, labels);
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
    }
    let conf_json = serde_json::to_string(&conf).expect("scorecard serializes");
    let rows = ablation_grid(&run.dataset, labels).expect("criteria 1-5");

    // Per-criterion precision/recall: re-analyze with each criterion
    // disabled and score the ablated detector against the same labels.
    let per_criterion = (1..=5u8)
        .map(|n| {
            let config = AnalysisConfig {
                detector: DetectorConfig::without_criterion(n).expect("1-5"),
                ..AnalysisConfig::paper_defaults(scenario.days)
            };
            let ablated = score(&run.analyze(&config), labels);
            let m = ablated.detector;
            (n, m.precision(), m.recall(), m.f1())
        })
        .collect();
    let thresholds = [
        1_000u64, 5_000, 10_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
    ];
    let defensive = defensive_confusion(run.dataset.bundles().iter(), labels, &thresholds);

    Lab {
        conf,
        conf_json,
        rows,
        defensive,
        findings: report.findings.len(),
        bundles: run.dataset.len(),
        labeled: labels.len(),
        per_criterion,
        score_rate: labels.len() as f64 / best.max(1e-9),
    }
}

fn main() {
    let scenario = sandwich_sim::ScenarioConfig {
        days: std::env::var("SANDWICH_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
        downtime_days: vec![],
        ..sandwich_bench::figure_scenario()
    };

    println!(
        "conformance_bench: {} days, seed {}",
        scenario.days, scenario.seed
    );
    let lab = run_lab(&scenario);
    let c = &lab.conf;

    // --- headline contract -------------------------------------------------
    let m = &c.detector;
    println!(
        "detector: TP={} FP={} FN={} TN={}  precision={:.4} recall={:.4} f1={:.4}",
        m.true_positives,
        m.false_positives,
        m.false_negatives,
        m.true_negatives,
        m.precision(),
        m.recall(),
        m.f1()
    );
    assert!(m.true_positives > 0, "scenario produced sandwiches");
    assert_eq!(m.precision(), 1.0, "no false positives on labeled traffic");
    assert_eq!(m.recall(), 1.0, "every detectable sandwich found");
    assert_eq!(c.unlabeled_findings, 0, "every finding joins to a label");
    assert!(
        c.near_misses_all_rejected(),
        "near-miss flagged: {:?}",
        c.near_miss_flagged
    );
    assert!(c.near_misses_labeled_total() > 0, "decoys present");

    // --- quantification error ---------------------------------------------
    let loss_cdf = c.quant.loss_abs_cdf();
    let (loss_p50, loss_p90, loss_max) = (
        loss_cdf.quantile(0.5).unwrap_or(0.0),
        loss_cdf.quantile(0.9).unwrap_or(0.0),
        c.quant.max_abs_loss_err(),
    );
    println!(
        "loss error (lamports, |detected - expected|): p50={loss_p50:.0} p90={loss_p90:.0} max={loss_max} over {} priced TPs",
        c.quant.loss_err_lamports.len()
    );
    let gain_exact = c
        .quant
        .gain_err_lamports
        .iter()
        .filter(|&&e| e == 0)
        .count();
    println!(
        "gain error: {}/{} exact after tip netting",
        gain_exact,
        c.quant.gain_err_lamports.len()
    );

    // --- ablation grid -----------------------------------------------------
    println!("per-criterion ablated detectors (scored against the same labels):");
    for (n, p, r, f1) in &lab.per_criterion {
        println!("  without c{n}: precision={p:.4} recall={r:.4} f1={f1:.4}");
    }
    println!("ablation grid (criterion disabled -> matching family admitted):");
    for row in &lab.rows {
        println!(
            "  c{}: {:<24} labeled={:<4} admitted={:<4} admitted_any={:<4} full_detector={}",
            row.criterion,
            row.family,
            row.labeled_matching,
            row.admitted_matching,
            row.admitted_total,
            row.full_detector_admitted
        );
        assert!(
            row.labeled_matching > 0,
            "scenario landed no c{} decoys",
            row.criterion
        );
        assert!(
            row.admitted_matching > 0,
            "criterion {} not load-bearing: its near-miss family survives ablation",
            row.criterion
        );
        assert_eq!(row.full_detector_admitted, 0);
    }

    // --- defensive classifier ----------------------------------------------
    for (threshold, dm) in &lab.defensive {
        if *threshold == DEFENSIVE_TIP_THRESHOLD {
            println!(
                "defensive @ {} lamports: TP={} FP={} FN={} TN={} precision={:.4} recall={:.4}",
                threshold.0,
                dm.true_positives,
                dm.false_positives,
                dm.false_negatives,
                dm.true_negatives,
                dm.precision(),
                dm.recall()
            );
        }
    }

    // --- adversarial fuzzer sweep -------------------------------------------
    let seed: u64 = std::env::var("SANDWICH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_250_209);
    let per_family: usize = std::env::var("SANDWICH_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let full = DetectorConfig::default();
    let mut fuzzer = NearMissFuzzer::new(seed);
    let cases = fuzzer.cases(per_family);
    let mut mutants = 0usize;
    for case in &cases {
        let o = &case.original;
        assert!(
            detect(&full, [&o[0], &o[1], &o[2]]).is_some(),
            "original sandwich must be caught ({})",
            case.family
        );
        for bundle in &case.mutated {
            mutants += 1;
            match case.family {
                NearMissFamily::SplitAcrossBundles => {
                    assert!(bundle.len() < 3, "split bundles carry no triple")
                }
                NearMissFamily::ZeroDeltaPadding => {
                    let metas: Vec<_> = bundle.iter().collect();
                    assert_eq!(
                        detect_in_bundle(&full, &metas).len(),
                        1,
                        "extended scan still finds the padded triple"
                    );
                }
                _ => {
                    assert!(
                        detect(&full, [&bundle[0], &bundle[1], &bundle[2]]).is_none(),
                        "mutant must be rejected ({})",
                        case.family
                    );
                }
            }
        }
        if let Some(n) = case.family.criterion() {
            let ablated = DetectorConfig::without_criterion(n).unwrap();
            for bundle in &case.mutated {
                assert!(
                    detect(&ablated, [&bundle[0], &bundle[1], &bundle[2]]).is_some(),
                    "without c{n} the {} mutant must slip through",
                    case.family
                );
            }
        }
    }
    println!(
        "fuzzer: {} cases / {} mutants across {} families — all rejected, originals caught",
        cases.len(),
        mutants,
        NearMissFamily::all().len()
    );

    // --- scoring throughput -------------------------------------------------
    println!(
        "scoring throughput: {:.0} labeled bundles/sec",
        lab.score_rate
    );

    // --- determinism --------------------------------------------------------
    let lab2 = run_lab(&scenario);
    assert_eq!(
        lab.conf_json, lab2.conf_json,
        "scorecard must be deterministic for a fixed seed"
    );
    println!("determinism: second identical run produced a byte-identical scorecard");

    // --- obs + snapshot ------------------------------------------------------
    let registry = Registry::new();
    conformance::record(&registry, c);

    let crit_rows: Vec<String> = lab
        .per_criterion
        .iter()
        .map(|(n, p, r, f1)| {
            format!(
                "    {{\"criterion\": {n}, \"precision\": {p:.4}, \"recall\": {r:.4}, \"f1\": {f1:.4}}}"
            )
        })
        .collect();
    let grid_rows: Vec<String> = lab
        .rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"criterion\": {}, \"family\": \"{}\", \"labeled\": {}, \"admitted_matching\": {}, \"admitted_total\": {}, \"full_detector_admitted\": {}}}",
                r.criterion,
                r.family,
                r.labeled_matching,
                r.admitted_matching,
                r.admitted_total,
                r.full_detector_admitted
            )
        })
        .collect();
    let paper_defensive = lab
        .defensive
        .iter()
        .find(|(t, _)| *t == DEFENSIVE_TIP_THRESHOLD)
        .map(|(_, m)| *m)
        .unwrap_or_default();
    let out =
        std::env::var("SANDWICH_BENCH_OUT").unwrap_or_else(|_| "BENCH_conformance.json".into());
    let snapshot = format!(
        "{{\n  \"days\": {days},\n  \"seed\": {seed},\n  \"bundles_collected\": {bundles},\n  \"bundles_labeled\": {labeled},\n  \"findings\": {findings},\n  \"detector\": {{\n    \"true_positives\": {tp},\n    \"false_positives\": {fp},\n    \"false_negatives\": {fnn},\n    \"true_negatives\": {tn},\n    \"precision\": {precision:.4},\n    \"recall\": {recall:.4},\n    \"f1\": {f1:.4}\n  }},\n  \"missed_disguised\": {missed_disguised},\n  \"loss_abs_err_lamports\": {{\"p50\": {loss_p50:.0}, \"p90\": {loss_p90:.0}, \"max\": {loss_max}}},\n  \"gain_exact_after_tip\": \"{gain_exact}/{gain_total}\",\n  \"per_criterion_ablated\": [\n{crits}\n  ],\n  \"ablation_grid\": [\n{grid}\n  ],\n  \"defensive_at_paper_threshold\": {{\"true_positives\": {dtp}, \"false_positives\": {dfp}, \"false_negatives\": {dfn}, \"true_negatives\": {dtn}}},\n  \"fuzzer\": {{\"cases\": {cases}, \"mutants\": {mutants}, \"families\": {families}, \"all_rejected\": true, \"originals_caught\": true}},\n  \"deterministic\": true\n}}\n",
        days = scenario.days,
        seed = scenario.seed,
        bundles = lab.bundles,
        labeled = lab.labeled,
        findings = lab.findings,
        tp = m.true_positives,
        fp = m.false_positives,
        fnn = m.false_negatives,
        tn = m.true_negatives,
        precision = m.precision(),
        recall = m.recall(),
        f1 = m.f1(),
        missed_disguised = c.missed_disguised,
        gain_total = c.quant.gain_err_lamports.len(),
        crits = crit_rows.join(",\n"),
        grid = grid_rows.join(",\n"),
        dtp = paper_defensive.true_positives,
        dfp = paper_defensive.false_positives,
        dfn = paper_defensive.false_negatives,
        dtn = paper_defensive.true_negatives,
        cases = cases.len(),
        families = NearMissFamily::all().len(),
    );
    std::fs::write(&out, snapshot).expect("write snapshot");
    println!("snapshot → {out}");
}
