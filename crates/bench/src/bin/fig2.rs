//! Regenerates Figure 2: sandwiches and defensive bundles per day (top),
//! victim losses and attacker gains per day in SOL (bottom).

use sandwich_core::report;

fn main() {
    let fr = sandwich_bench::run_figure_pipeline();
    println!("=== Figure 2: attacks, defense, and flows per day (scaled) ===\n");
    println!("{}", report::figure2(&fr.report, &fr.clock));
    println!(
        "sandwiches/day trend slope: {:+.3} per day (paper: decreasing ~15k → ~1k)",
        fr.report.sandwiches_per_day.trend_slope()
    );
    println!(
        "defensive/day trend slope:  {:+.3} per day (paper: increasing)",
        fr.report.defensive_per_day.trend_slope()
    );
}
