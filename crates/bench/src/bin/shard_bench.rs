//! Shard scaling benchmark: one scale store through 1/2/4/8 shards.
//!
//! Reuses (or generates) a `scale_gen`-shaped store, builds a legacy
//! single-engine byte reference for a fixed probe set, then for each
//! shard count N:
//!
//! 1. drops the persisted shard map and per-shard indexes and re-plans,
//! 2. times the N per-shard index builds running in parallel on one
//!    thread each — the scan-parallelism ladder `scan_speedup_4_shards`
//!    is read from,
//! 3. serves a [`ServingCluster`] over real loopback sockets and asserts
//!    every probe response (summary coverage, leaderboard pages, details,
//!    paginated slot ranges, 404s) byte-identical to the legacy engine,
//! 4. replays a mixed probe load through the router for throughput.
//!
//! Writes `results/BENCH_shard.json` (or `$SANDWICH_BENCH_OUT`) and
//! aborts — in-bench, not just in the gate — unless every response at
//! every shard count matched the single-engine bytes.
//!
//! `--store <dir>` (or `$SANDWICH_SHARD_STORE`) points at a shared store
//! directory: reused when it already holds a manifest, generated there
//! (and kept) when it does not, so `query_bench --store` / `crash_bench
//! --store` can run against the same corpus without regenerating it.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use sandwich_net::HttpClient;
use sandwich_obs::Registry;
use sandwich_query::{
    build_index, build_index_subset, save_index_as, Engine, QueryConfig, QueryRequest,
};
use sandwich_shard::{
    shard_index_file, ClusterConfig, ServingCluster, ShardMap, SHARD_INDEX_PREFIX, SHARD_MAP_FILE,
};
use sandwich_store::{BundleStore, StoreWriter, MANIFEST_FILE};
use sandwich_types::Keypair;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One probe: the router path and its typed form for the legacy
/// single-engine reference evaluation.
#[derive(Clone)]
struct Probe {
    path: String,
    typed: QueryRequest,
}

fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[rank] as f64 / 1_000.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let store_override = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("SANDWICH_SHARD_STORE").ok());
    let bundles = env_u64("SANDWICH_SHARD_BUNDLES", 1_000_000);
    let counts: Vec<usize> = std::env::var("SANDWICH_SHARD_COUNTS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();
    let clients = env_usize("SANDWICH_SHARD_CLIENTS", 4);
    let load_requests = env_usize("SANDWICH_SHARD_REQUESTS", 400);

    // Resolve the store: reuse a directory that already holds a manifest,
    // generate otherwise. A generated store is kept when the caller named
    // the directory (that is the sharing workflow) and deleted when it
    // went to the scratch default.
    let (store_dir, owned) = match store_override {
        Some(dir) => {
            let reused = Path::new(&dir).join(MANIFEST_FILE).exists();
            if !reused {
                generate_store(&dir, bundles);
            }
            println!(
                "shard_bench: {} store {dir}",
                if reused {
                    "reusing"
                } else {
                    "generated shared"
                }
            );
            (dir, false)
        }
        None => {
            let dir = "shard_bench.store".to_string();
            let _ = std::fs::remove_dir_all(&dir);
            generate_store(&dir, bundles);
            (dir, true)
        }
    };

    let store = BundleStore::open(&store_dir).expect("open store");
    let store_bundles = store.manifest().total_bundles();
    let segments = store.segments().len();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("  {store_bundles} bundles in {segments} segments, {cores} cores");

    // Legacy single-engine reference: full-store build on one thread —
    // the same per-worker budget every shard build gets below, so the
    // build-time ladder isolates shard-level scan parallelism.
    let build_config = QueryConfig {
        threads: 1,
        ..Default::default()
    };
    let t = Instant::now();
    let index = build_index(&store, &build_config).expect("legacy index build");
    let legacy_build_s = t.elapsed().as_secs_f64();
    let engine = Engine::new(Arc::new(index));
    let index = engine.index();
    println!(
        "  legacy engine: {} sandwiches, {} attackers, {} pools, built in {legacy_build_s:.2}s (1 thread)",
        index.totals.sandwiches,
        index.attackers.len(),
        index.pools.len(),
    );

    // Probe set: coverage, rollups, paginated leaderboards, details for
    // entities whose refs span shard boundaries, paginated slot ranges,
    // and 404s — every endpoint family the router merges.
    let mut probes: Vec<Probe> = vec![
        Probe {
            path: "/api/summary".into(),
            typed: QueryRequest::Summary,
        },
        Probe {
            path: "/api/days".into(),
            typed: QueryRequest::Days,
        },
        Probe {
            path: "/api/attackers?limit=20".into(),
            typed: QueryRequest::Attackers {
                limit: 20,
                after: 0,
            },
        },
        Probe {
            path: "/api/attackers?limit=100".into(),
            typed: QueryRequest::Attackers {
                limit: 100,
                after: 0,
            },
        },
        Probe {
            path: "/api/attackers?limit=20&after=20".into(),
            typed: QueryRequest::Attackers {
                limit: 20,
                after: 20,
            },
        },
    ];
    for entry in index.attackers.iter().take(3) {
        probes.push(Probe {
            path: format!("/api/attacker/{}", entry.attacker),
            typed: QueryRequest::Attacker {
                pubkey: entry.attacker,
            },
        });
    }
    for entry in index.pools.iter().take(3) {
        probes.push(Probe {
            path: format!("/api/pool/{}", entry.mint),
            typed: QueryRequest::Pool { mint: entry.mint },
        });
    }
    let nobody = Keypair::from_label("shard-bench-nobody").pubkey();
    probes.push(Probe {
        path: format!("/api/attacker/{nobody}"),
        typed: QueryRequest::Attacker { pubkey: nobody },
    });
    probes.push(Probe {
        path: format!("/api/pool/{nobody}"),
        typed: QueryRequest::Pool { mint: nobody },
    });
    let max_slot = index.totals.max_slot.max(1);
    for (from, to, limit, after) in [
        (0, max_slot + 1, 50, 0),
        (0, max_slot + 1, 50, 25),
        (max_slot / 3, 2 * max_slot / 3, 100, 0),
        (max_slot / 3, 2 * max_slot / 3, 100, 100),
        (0, max_slot + 1, 20, u64::MAX as usize / 2),
    ] {
        probes.push(Probe {
            path: format!(
                "/api/sandwiches?from_slot={from}&to_slot={to}&limit={limit}&after={after}"
            ),
            typed: QueryRequest::Sandwiches {
                from_slot: from,
                to_slot: to,
                limit,
                after,
            },
        });
    }
    let reference: Vec<_> = probes.iter().map(|p| engine.evaluate(&p.typed)).collect();

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");

    let mut merged_identical = true;
    let mut build_seconds: Vec<(usize, f64)> = Vec::new();
    let mut throughput_rps: Vec<(usize, f64)> = Vec::new();
    let mut p50_ms: Vec<(usize, f64)> = Vec::new();

    for &n in &counts {
        // Fresh plan for this shard count: drop the persisted map and
        // every per-shard index so the timed builds start cold.
        let _ = std::fs::remove_file(Path::new(&store_dir).join(SHARD_MAP_FILE));
        if let Ok(entries) = std::fs::read_dir(&store_dir) {
            for entry in entries.flatten() {
                if entry
                    .file_name()
                    .to_string_lossy()
                    .starts_with(SHARD_INDEX_PREFIX)
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let map = ShardMap::plan(store.manifest(), n);
        map.save(Path::new(&store_dir)).expect("save shard map");

        // N per-shard builds in parallel, one thread each.
        let t = Instant::now();
        std::thread::scope(|scope| {
            for shard in 0..n {
                let map = &map;
                let store = &store;
                let store_dir = &store_dir;
                let build_config = &build_config;
                scope.spawn(move || {
                    let (serving, quarantined) =
                        map.resolve(store.manifest(), shard).expect("resolve shard");
                    let index = build_index_subset(store, build_config, &serving, &quarantined)
                        .expect("shard index build");
                    let file = shard_index_file(shard, n, &map.fingerprint(shard));
                    save_index_as(Path::new(store_dir), &index, &file).expect("save shard index");
                });
            }
        });
        let build_s = t.elapsed().as_secs_f64();
        build_seconds.push((n, build_s));

        let (identical, rps, p50) = runtime.block_on(serve_and_probe(
            &store_dir,
            n,
            &probes,
            &reference,
            clients,
            load_requests,
        ));
        merged_identical &= identical;
        throughput_rps.push((n, rps));
        p50_ms.push((n, p50));
        println!(
            "  {n} shard(s): build {build_s:.2}s, {rps:.0} req/s, p50 {p50:.2} ms, byte-identical: {identical}"
        );
    }

    let build_of = |n: usize| build_seconds.iter().find(|(c, _)| *c == n).map(|(_, s)| *s);
    let speedup_base = build_of(1).unwrap_or(legacy_build_s);
    let speedup_at = build_of(4)
        .or_else(|| build_seconds.last().map(|(_, s)| *s))
        .unwrap_or(speedup_base);
    let scan_speedup_4_shards = speedup_base / speedup_at.max(1e-9);
    println!(
        "  scan speedup at 4 shards: {scan_speedup_4_shards:.2}x (1-shard {speedup_base:.2}s)"
    );

    let out = std::env::var("SANDWICH_BENCH_OUT").unwrap_or_else(|_| {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_shard.json".into()
    });
    let json_map = |pairs: &[(usize, f64)], precision: usize| -> String {
        let body: Vec<String> = pairs
            .iter()
            .map(|(n, v)| format!("\"{n}\": {v:.precision$}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    };
    let snapshot = format!(
        "{{\n  \"bundles\": {store_bundles},\n  \"segments\": {segments},\n  \"cores\": {cores},\n  \"probes\": {np},\n  \"shard_counts\": [{sc}],\n  \"legacy_build_seconds\": {legacy_build_s:.3},\n  \"build_seconds\": {builds},\n  \"throughput_rps\": {rps},\n  \"p50_ms\": {p50s},\n  \"scan_speedup_4_shards\": {scan_speedup_4_shards:.3},\n  \"merged_identical\": {merged_identical}\n}}\n",
        np = probes.len(),
        sc = counts
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        builds = json_map(&build_seconds, 3),
        rps = json_map(&throughput_rps, 0),
        p50s = json_map(&p50_ms, 3),
    );
    std::fs::write(&out, snapshot).expect("write snapshot");
    println!("  snapshot → {out}");

    drop(engine);
    drop(store);
    if owned {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    assert!(
        merged_identical,
        "sharded responses diverged from the single-engine bytes"
    );
}

/// Generate a scale store into `dir` (the `scale_gen` corpus shape).
fn generate_store(dir: &str, bundles: u64) {
    use sandwich_bench::scale::{generate, ScaleConfig};
    let scale = ScaleConfig {
        bundles,
        segment_bundles: env_usize("SANDWICH_SHARD_SEGMENT", 8_192),
        ..ScaleConfig::default()
    };
    let t = Instant::now();
    let mut writer = StoreWriter::create(dir).expect("create store");
    let stats = generate(&mut writer, &scale).expect("generate scale store");
    drop(writer.into_reader());
    println!(
        "shard_bench: generated {} bundles in {} segments in {:.1}s",
        stats.bundles,
        stats.segments,
        t.elapsed().as_secs_f64()
    );
}

/// Serve an N-shard cluster, byte-check every probe against the legacy
/// reference, and replay a mixed probe load for throughput. Returns
/// `(identical, requests_per_second, p50_ms)`.
async fn serve_and_probe(
    store_dir: &str,
    n: usize,
    probes: &[Probe],
    reference: &[sandwich_query::CachedResponse],
    clients: usize,
    load_requests: usize,
) -> (bool, f64, f64) {
    let mut config = ClusterConfig::new(store_dir, n);
    // Engines load the indexes persisted by the timed build phase; the
    // thread budget only matters for a (unexpected) rebuild.
    config.query.threads = 1;
    let cluster = ServingCluster::serve(config, Registry::new())
        .await
        .expect("serve cluster");
    let addr = cluster.router_addr();
    let client = HttpClient::new(addr);

    let mut identical = true;
    for (probe, want) in probes.iter().zip(reference) {
        let served = client.get(&probe.path).await.expect("probe request");
        let same = served.status == want.status && served.body[..] == want.body[..];
        if !same {
            println!(
                "  MISMATCH at {n} shard(s): {} (status {} vs {}, {} vs {} bytes)",
                probe.path,
                served.status,
                want.status,
                served.body.len(),
                want.body.len(),
            );
            identical = false;
        }
    }

    // Mixed load: the probe set cycled across the client pool.
    let pool = clients.max(1);
    let mut plans: Vec<Vec<String>> = vec![Vec::new(); pool];
    for i in 0..load_requests {
        plans[i % pool].push(probes[i % probes.len()].path.clone());
    }
    let started = Instant::now();
    let mut set = tokio::task::JoinSet::new();
    for plan in plans {
        set.spawn(async move {
            let client = HttpClient::new(addr);
            let mut latencies_us = Vec::with_capacity(plan.len());
            for path in plan {
                let t = Instant::now();
                let response = client.get(&path).await.expect("load request");
                latencies_us.push(t.elapsed().as_micros() as u64);
                assert!(
                    response.status == 200 || response.status == 404,
                    "{path}: status {}",
                    response.status
                );
            }
            latencies_us
        });
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(load_requests);
    while let Some(joined) = set.join_next().await {
        latencies.extend(joined.expect("client task"));
    }
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let rps = latencies.len() as f64 / wall.max(1e-9);
    let p50 = percentile_ms(&latencies, 0.50);

    cluster.shutdown().await;
    (identical, rps, p50)
}
