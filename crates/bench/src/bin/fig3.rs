//! Regenerates Figure 3: cumulative distribution of USD lost per
//! sandwiched transaction.

use sandwich_core::report;

fn main() {
    let fr = sandwich_bench::run_figure_pipeline();
    println!("=== Figure 3: CDF of USD lost per sandwiched transaction ===\n");
    println!("{}", report::figure3(&fr.report));
    println!(
        "median loss ${:.2} (paper ≈ $5); max ${:.2} (paper: tail beyond $100); n = {}",
        fr.report.loss_cdf_usd.median().unwrap_or(0.0),
        fr.report.loss_cdf_usd.max().unwrap_or(0.0),
        fr.report.loss_cdf_usd.len(),
    );
}
