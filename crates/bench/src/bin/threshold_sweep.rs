//! Defensive-threshold sensitivity (DESIGN.md §4): how the "86% of length-1
//! bundles are defensive" figure moves as the 100k-lamport threshold is
//! swept.

use sandwich_core::threshold_sweep;
use sandwich_dex::SolUsdOracle;

fn main() {
    let scenario = sandwich_sim::ScenarioConfig {
        days: std::env::var("SANDWICH_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15),
        downtime_days: vec![],
        ..sandwich_bench::figure_scenario()
    };
    let fr = sandwich_bench::run_pipeline_with(scenario);
    let oracle = SolUsdOracle::default();

    println!("=== defensive-bundling threshold sweep ===");
    println!(
        "{:>14} {:>12} {:>16} {:>16} {:>14}",
        "threshold", "defensive", "share of len-1", "mean tip (lam)", "spend (USD)"
    );
    let thresholds = [
        1_000u64, 5_000, 10_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
    ];
    for (threshold, stats) in threshold_sweep(fr.run.dataset.bundles().iter(), &thresholds) {
        println!(
            "{:>14} {:>12} {:>15.1}% {:>16.0} {:>14.2}",
            threshold.0,
            stats.defensive,
            stats.defensive_fraction() * 100.0,
            stats.mean_defensive_tip(),
            oracle.lamports_to_usd(sandwich_types::Lamports(stats.defensive_tips_lamports)),
        );
    }
    println!("\npaper's operating point: 100,000 lamports → 86% of length-1 bundles.");
}
