//! Criterion: AMM math and on-bank swap execution, plus sandwich planning.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sandwich_dex::{create_pool_ix, plan_optimal, swap_ix, victim_min_out, AmmProgram, PoolState};
use sandwich_ledger::{native_sol_mint, Bank, Instruction, TokenInstruction, TransactionBuilder};
use sandwich_types::{Keypair, Lamports, Pubkey};

fn pool() -> PoolState {
    PoolState::new(
        native_sol_mint(),
        60_000_000_000, // 60 SOL
        Pubkey::derive("mint:BENCH"),
        3_000_000_000_000,
        30,
    )
}

fn bench_math(c: &mut Criterion) {
    let p = pool();
    let sol = native_sol_mint();
    c.bench_function("amm/quote_exact_in", |b| {
        b.iter(|| black_box(p.quote(&sol, black_box(1_000_000_000))))
    });

    let min_out = victim_min_out(&p, &sol, 1_000_000_000, 200).unwrap();
    c.bench_function("amm/plan_optimal_sandwich", |b| {
        b.iter(|| {
            black_box(plan_optimal(
                &p,
                &sol,
                black_box(1_000_000_000),
                min_out,
                u64::MAX / 4,
                1,
            ))
        })
    });
}

fn bench_execution(c: &mut Criterion) {
    let bank = Arc::new(Bank::new(Keypair::from_label("v").pubkey()));
    bank.register_program(Arc::new(AmmProgram));
    let lp = Keypair::from_label("lp");
    let mint = Pubkey::derive("mint:BENCH");
    bank.airdrop(lp.pubkey(), Lamports::from_sol(10_000.0));
    let setup = TransactionBuilder::new(lp)
        .instruction(Instruction::Token(TokenInstruction::CreateMint {
            mint,
            decimals: 6,
            symbol: "B".into(),
        }))
        .instruction(Instruction::Token(TokenInstruction::MintTo {
            mint,
            to: lp.pubkey(),
            amount: u64::MAX / 8,
        }))
        .instruction(create_pool_ix(
            native_sol_mint(),
            1_000_000_000_000,
            mint,
            50_000_000_000_000,
            30,
        ))
        .build();
    assert!(bank.execute_transaction(&setup).unwrap().success);

    let trader = Keypair::from_label("trader");
    bank.airdrop(trader.pubkey(), Lamports::from_sol(1_000_000.0));

    let mut nonce = 0u64;
    c.bench_function("amm/swap_tx_build_and_execute", |b| {
        b.iter(|| {
            nonce += 1;
            let tx = TransactionBuilder::new(trader)
                .nonce(nonce)
                .instruction(swap_ix(native_sol_mint(), mint, 1_000_000, 0))
                .build();
            black_box(bank.execute_transaction(&tx).unwrap());
        })
    });

    c.bench_function("amm/tx_sign_only", |b| {
        b.iter(|| {
            nonce += 1;
            black_box(
                TransactionBuilder::new(trader)
                    .nonce(nonce)
                    .instruction(swap_ix(native_sol_mint(), mint, 1_000_000, 0))
                    .build(),
            );
        })
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30)
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_math, bench_execution
}
criterion_main!(benches);
