//! Criterion: block-engine auction throughput at varying bundle counts.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sandwich_jito::{tip_ix, BlockEngine, Bundle};
use sandwich_ledger::{Bank, TransactionBuilder};
use sandwich_types::{Keypair, Lamports, Slot};

fn make_bundles(bank: &Arc<Bank>, count: usize, base_nonce: u64) -> Vec<Bundle> {
    (0..count)
        .map(|i| {
            let kp = Keypair::from_label(&format!("bidder-{i}"));
            bank.airdrop(kp.pubkey(), Lamports::from_sol(10.0));
            let nonce = base_nonce + i as u64;
            let tx = TransactionBuilder::new(kp)
                .nonce(nonce)
                .instruction(tip_ix(Lamports(1_000 + (i as u64 * 37) % 1_000_000), nonce))
                .build();
            Bundle::new(vec![tx]).unwrap()
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/produce_slot");
    for &count in &[10usize, 100, 1_000] {
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, &count| {
            let bank = Arc::new(
                Bank::new(Keypair::from_label("v").pubkey()).with_signature_verification(false),
            );
            let mut engine = BlockEngine::new(bank.clone());
            let mut slot = 0u64;
            let mut nonce = 0u64;
            b.iter(|| {
                slot += 1;
                nonce += count as u64 + 1;
                let bundles = make_bundles(&bank, count, nonce);
                let result = engine.produce_slot(Slot(slot), bundles, vec![]);
                assert_eq!(result.bundles.len(), count);
            })
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30)
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_engine
}
criterion_main!(benches);
