//! Criterion: HTTP boundary — explorer page fetch round-trips over
//! loopback TCP, at the page sizes the collector actually uses.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parking_lot::RwLock;

use sandwich_explorer::{
    Explorer, ExplorerConfig, HistoryStore, RecentBundlesResponse, RetentionPolicy,
};
use sandwich_jito::LandedBundle;
use sandwich_net::HttpClient;
use sandwich_types::{Hash, Keypair, Lamports, Slot, SlotClock};

fn filled_store(n: u64) -> Arc<RwLock<HistoryStore>> {
    let kp = Keypair::from_label("net-bench");
    let mut store = HistoryStore::new(SlotClock::default(), RetentionPolicy::OnlyBundleLength(3));
    for i in 0..n {
        store.record_bundle(&LandedBundle {
            bundle_id: Hash::digest(&i.to_le_bytes()),
            slot: Slot(i),
            tip: Lamports(1_000 + i),
            metas: vec![sandwich_ledger::TransactionMeta {
                tx_id: kp.sign(&i.to_le_bytes()),
                signer: kp.pubkey(),
                fee: Lamports(5_000),
                priority_fee: Lamports::ZERO,
                success: true,
                error: None,
                sol_deltas: vec![],
                token_deltas: vec![],
            }],
        });
    }
    Arc::new(RwLock::new(store))
}

fn bench_http(c: &mut Criterion) {
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap();
    let explorer = runtime
        .block_on(Explorer::start(
            filled_store(5_000),
            ExplorerConfig::default(),
        ))
        .unwrap();
    let client = HttpClient::new(explorer.addr());

    let mut group = c.benchmark_group("net/bundles_page");
    for &limit in &[25usize, 200, 2_000] {
        group.throughput(Throughput::Elements(limit as u64));
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            let path = format!("/api/v1/bundles?limit={limit}");
            b.iter(|| {
                let page: RecentBundlesResponse = runtime.block_on(client.get_json(&path)).unwrap();
                assert_eq!(page.bundles.len(), limit);
            })
        });
    }
    group.finish();

    runtime.block_on(explorer.shutdown());
}

fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30)
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_http
}
criterion_main!(benches);
