//! Criterion: dataset ingestion and analysis throughput — the hot loops of
//! a four-month collection.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sandwich_core::{analyze, AnalysisConfig, Cdf, Dataset};
use sandwich_explorer::BundleSummaryJson;
use sandwich_types::{Hash, Keypair, SlotClock};

fn page(start: u64, n: u64, len: usize) -> Vec<BundleSummaryJson> {
    let kp = Keypair::from_label("ing");
    (start..start + n)
        .rev()
        .map(|i| BundleSummaryJson {
            bundle_id: Hash::digest(&i.to_le_bytes()),
            slot: i,
            timestamp_ms: i * 400,
            tip_lamports: 1_000 + i % 100_000,
            transactions: (0..len)
                .map(|k| kp.sign(&(i * 10 + k as u64).to_le_bytes()))
                .collect(),
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector/ingest_page");
    for &n in &[100u64, 1_000, 10_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let clock = SlotClock::default();
            let p = page(0, n, 1);
            b.iter(|| {
                let mut ds = Dataset::new();
                black_box(ds.ingest_page(black_box(&p), &clock, 0))
            })
        });
    }
    group.finish();

    // Overlapping-page ingestion: 50% duplicates, the steady-state shape.
    c.bench_function("collector/ingest_overlapping_pages", |b| {
        let clock = SlotClock::default();
        let pages: Vec<_> = (0..10).map(|i| page(i * 500, 1_000, 1)).collect();
        b.iter(|| {
            let mut ds = Dataset::new();
            for p in &pages {
                black_box(ds.ingest_page(p, &clock, 0));
            }
            assert!(ds.overlap_rate() > 0.9);
        })
    });
}

fn bench_analysis(c: &mut Criterion) {
    let clock = SlotClock::default();
    let mut ds = Dataset::new();
    // 20k bundles across lengths over ~10 days of slots.
    for d in 0..10u64 {
        let p: Vec<_> = (0..2_000u64)
            .map(|i| {
                let seed = d * 10_000 + i;
                let len = 1 + (seed % 5) as usize;
                page(seed * 10, 1, len).pop().unwrap()
            })
            .map(|mut b| {
                b.slot = d * sandwich_types::SLOTS_PER_DAY + b.slot % sandwich_types::SLOTS_PER_DAY;
                b
            })
            .collect();
        ds.ingest_page(&p, &clock, d);
    }
    let config = AnalysisConfig::paper_defaults(10);
    let mut group = c.benchmark_group("collector/analyze");
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.bench_function("20k_bundles", |b| {
        b.iter(|| black_box(analyze(black_box(&ds), &clock, &config)))
    });
    group.finish();

    let samples: Vec<f64> = (0..100_000).map(|i| (i as f64).sin().abs() * 1e6).collect();
    c.bench_function("collector/cdf_build_100k", |b| {
        b.iter(|| black_box(Cdf::from_samples(black_box(samples.clone()))))
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30)
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_ingest, bench_analysis
}
criterion_main!(benches);
