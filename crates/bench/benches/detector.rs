//! Criterion: detector throughput — the cost of classifying one length-3
//! bundle's metas, for sandwiches and each decoy shape.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sandwich_core::{detect, extract_trade, DetectorConfig};
use sandwich_jito::tip_account;
use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_types::{Keypair, LamportDelta, Lamports, Pubkey};

fn swap_meta(label: &str, n: u64, sol_trade: i64, tokens: i128, tip: u64) -> TransactionMeta {
    let kp = Keypair::from_label(label);
    let mut sol_deltas = vec![SolDelta {
        account: kp.pubkey(),
        delta: LamportDelta(sol_trade - 5_000 - tip as i64),
    }];
    if tip > 0 {
        sol_deltas.push(SolDelta {
            account: tip_account(0),
            delta: LamportDelta(tip as i64),
        });
    }
    TransactionMeta {
        tx_id: kp.sign(&n.to_le_bytes()),
        signer: kp.pubkey(),
        fee: Lamports(5_000),
        priority_fee: Lamports::ZERO,
        success: true,
        error: None,
        sol_deltas,
        token_deltas: if tokens != 0 {
            vec![TokenDelta {
                owner: kp.pubkey(),
                mint: Pubkey::derive("mint:BENCH"),
                delta: tokens,
            }]
        } else {
            vec![]
        },
    }
}

fn bench_detector(c: &mut Criterion) {
    let config = DetectorConfig::default();

    let sandwich = (
        swap_meta("atk", 1, -100_000_000_000, 10_000, 0),
        swap_meta("vic", 2, -120_000_000_000, 10_000, 0),
        swap_meta("atk", 3, 115_000_000_000, -10_000, 2_000_000),
    );
    c.bench_function("detect/sandwich_hit", |b| {
        b.iter(|| {
            black_box(detect(
                &config,
                [
                    black_box(&sandwich.0),
                    black_box(&sandwich.1),
                    black_box(&sandwich.2),
                ],
            ))
        })
    });

    let decoy_signers = (
        swap_meta("a", 1, -100_000_000_000, 10_000, 0),
        swap_meta("b", 2, -120_000_000_000, 10_000, 0),
        swap_meta("c", 3, 115_000_000_000, -10_000, 0),
    );
    c.bench_function("detect/decoy_signer_miss", |b| {
        b.iter(|| {
            black_box(detect(
                &config,
                [&decoy_signers.0, &decoy_signers.1, &decoy_signers.2],
            ))
        })
    });

    let tip_only = (
        swap_meta("app", 1, -100_000_000_000, 10_000, 0),
        swap_meta("usr", 2, -120_000_000_000, 10_000, 0),
        swap_meta("app", 3, 0, 0, 10_000),
    );
    c.bench_function("detect/decoy_tip_only", |b| {
        b.iter(|| black_box(detect(&config, [&tip_only.0, &tip_only.1, &tip_only.2])))
    });

    let meta = swap_meta("atk", 9, -1_000_000_000, 42_000, 500_000);
    c.bench_function("detect/extract_trade", |b| {
        b.iter(|| black_box(extract_trade(black_box(&meta))))
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30)
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_detector
}
criterion_main!(benches);
