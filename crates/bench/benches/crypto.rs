//! Criterion: the from-scratch primitives — SHA-256, base58, and the
//! Schnorr signing scheme every transaction uses.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sandwich_types::hash::{Hash, Sha256};
use sandwich_types::{base58, Keypair};

fn bench_crypto(c: &mut Criterion) {
    let kib = vec![0xabu8; 1024];
    let mut group = c.benchmark_group("crypto/sha256");
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("1KiB", |b| {
        b.iter(|| black_box(Hash::digest(black_box(&kib))))
    });
    group.finish();

    let big = vec![0xcdu8; 64 * 1024];
    let mut group = c.benchmark_group("crypto/sha256_streaming");
    group.throughput(Throughput::Bytes(64 * 1024));
    group.bench_function("64KiB", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            for chunk in big.chunks(4096) {
                h.update(chunk);
            }
            black_box(h.finalize())
        })
    });
    group.finish();

    let digest = Hash::digest(b"bench").0;
    c.bench_function("crypto/base58_encode_32B", |b| {
        b.iter(|| black_box(base58::encode(black_box(&digest))))
    });
    let encoded = base58::encode(&digest);
    c.bench_function("crypto/base58_decode_32B", |b| {
        b.iter(|| black_box(base58::decode(black_box(&encoded))))
    });

    let kp = Keypair::from_label("bench");
    let msg = vec![0x42u8; 256];
    c.bench_function("crypto/schnorr_sign_256B", |b| {
        b.iter(|| black_box(kp.sign(black_box(&msg))))
    });
    let sig = kp.sign(&msg);
    c.bench_function("crypto/schnorr_verify_256B", |b| {
        b.iter(|| {
            assert!(kp.pubkey().verify(black_box(&msg), black_box(&sig)));
        })
    });
}

fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30)
}
criterion_group! {
    name = benches;
    config = fast();
    targets = bench_crypto
}
criterion_main!(benches);
