//! `store doctor` — offline fsck for a store directory.
//!
//! The doctor walks every segment the manifest knows about, verifies it
//! end to end (magic, sections, checksums, record counts, manifest
//! cross-check), and sorts each into one of three buckets:
//!
//! * **clean** — nothing to do;
//! * **repaired** — the damage is *provably* recoverable: the encoded
//!   body is intact (its FNV-1a checksum still equals the one the
//!   manifest recorded at seal time), so the segment is re-encoded from
//!   the decoded body and rewritten byte-identically. This covers torn
//!   tails, a corrupted columnar section (the v2 fast path degrades to a
//!   v1-style body decode), bit rot in the footer, and even a damaged
//!   leading magic;
//! * **quarantined** — anything touching the body itself. The segment
//!   moves from `segments` to the manifest's quarantine list with a
//!   reason code; scans and index builds skip it but account for it
//!   exactly (see the coverage block in `sandwich-core`/`sandwich-query`).
//!
//! Because re-encoding is deterministic, a successful repair reproduces
//! the original file bit for bit — the manifest entry (including `bytes`)
//! is unchanged, so the store generation, and with it any persisted query
//! index, stays valid. Anything else would be guessing, and the doctor
//! never guesses: if it cannot prove the recovered bytes are the sealed
//! bytes, it quarantines.
//!
//! If the manifest itself is unreadable the doctor rebuilds it from the
//! segment files on disk, trusting each file's own footer (torn tails are
//! truncated back to the last prefix that fully verifies).

use std::path::Path;

use crate::codec::decode_body;
use crate::crash::remove_stale_tmp_files;
use crate::manifest::{Manifest, QuarantinedSegment, SegmentMeta, MANIFEST_FILE};
use crate::segment::{
    decode_segment, encode_segment, encode_segment_v1, fnv1a64, write_segment_file, SegmentFooter,
    FOOTER_LEN, FOOTER_MAGIC, FOOTER_MAGIC_V1, SEGMENT_MAGIC, SEGMENT_MAGIC_V1,
};

/// What the doctor found (and, in repair mode, did) for one segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegmentHealth {
    /// Verifies end to end; manifest entry matches.
    Clean,
    /// Body intact, tail damaged (truncation, appended garbage, footer or
    /// magic rot): re-encoded from the body, byte-identical to the seal.
    RepairedTail {
        /// Bytes the damaged file had beyond the repaired image (0 when
        /// the damage did not change the length).
        bytes_reclaimed: u64,
    },
    /// Body intact, columnar fast-path section damaged: columns rebuilt
    /// from the decoded body (the v2 section degrades to a v1-style
    /// decode during recovery).
    RepairedColumns,
    /// Not provably recoverable: moved to the quarantine list.
    Quarantined {
        /// Machine-readable reason code (see `docs/RELIABILITY.md`).
        reason: String,
    },
}

/// Per-segment line item of a doctor run.
#[derive(Clone, Debug)]
pub struct SegmentCheckReport {
    /// Segment file name.
    pub file: String,
    /// Bundle records at stake (from the manifest entry).
    pub bundles: u64,
    /// Verdict.
    pub health: SegmentHealth,
}

/// Summary of one doctor run.
#[derive(Clone, Debug, Default)]
pub struct DoctorReport {
    /// One line item per segment examined, in manifest order.
    pub checks: Vec<SegmentCheckReport>,
    /// Segments that verified end to end.
    pub clean: u64,
    /// Segments repaired (tail + columnar).
    pub repaired: u64,
    /// Segments newly quarantined by this run.
    pub quarantined: u64,
    /// Segments already in quarantine before this run.
    pub already_quarantined: u64,
    /// Bytes of torn tail reclaimed by repairs.
    pub bytes_reclaimed: u64,
    /// Bundle records in serving segments after the run.
    pub bundles_served: u64,
    /// Bundle records in quarantine after the run (old + new).
    pub bundles_quarantined: u64,
    /// Stale `*.tmp` write-ahead files found (removed in repair mode).
    pub tmp_files: u64,
    /// The manifest was unreadable and has been rebuilt from the segment
    /// files on disk.
    pub manifest_rebuilt: bool,
    /// True when this run actually modified the store (repair mode only).
    pub changed: bool,
}

impl DoctorReport {
    /// No quarantines and nothing left to repair?
    pub fn healthy(&self) -> bool {
        self.quarantined == 0 && self.already_quarantined == 0 && !self.manifest_rebuilt
    }
}

/// Internal verdict for one segment image.
pub(crate) enum Verdict {
    /// Verified; `meta` is the (possibly derived) manifest entry.
    Clean { meta: SegmentMeta },
    /// Provably recoverable; `image` is the byte-exact replacement.
    Rebuild {
        image: Vec<u8>,
        kind: RepairKind,
        meta: SegmentMeta,
    },
    /// Not recoverable.
    Quarantine { reason: &'static str },
}

pub(crate) enum RepairKind {
    Tail,
    Columns,
}

/// Inspect a store directory without touching it.
pub fn diagnose(dir: &Path) -> std::io::Result<DoctorReport> {
    run(dir, false)
}

/// Inspect a store directory and repair/quarantine in place.
pub fn repair(dir: &Path) -> std::io::Result<DoctorReport> {
    run(dir, true)
}

fn run(dir: &Path, repair_mode: bool) -> std::io::Result<DoctorReport> {
    let mut report = DoctorReport {
        tmp_files: if repair_mode {
            remove_stale_tmp_files(dir)?
        } else {
            count_tmp_files(dir)?
        },
        ..DoctorReport::default()
    };
    if repair_mode && report.tmp_files > 0 {
        report.changed = true;
    }

    let (old_manifest, had_manifest) = match Manifest::load(dir) {
        Ok(m) => (m, true),
        Err(_) if dir.join(MANIFEST_FILE).exists() || dir.is_dir() => {
            report.manifest_rebuilt = true;
            (synthesize_manifest(dir)?, false)
        }
        Err(e) => return Err(e),
    };
    report.already_quarantined = old_manifest.quarantined().len() as u64;

    let mut new_manifest = Manifest {
        version: old_manifest.version,
        segments: Vec::new(),
        quarantined: Some(old_manifest.quarantined().to_vec()),
        validators: old_manifest.validators,
    };
    let mut writes: Vec<(std::path::PathBuf, Vec<u8>)> = Vec::new();
    let mut manifest_dirty = report.manifest_rebuilt;

    for meta in &old_manifest.segments {
        let path = Manifest::segment_path(dir, meta);
        let verdict = match std::fs::read(&path) {
            Ok(image) => check_segment(&image, Some(meta)),
            Err(_) => Verdict::Quarantine {
                reason: "missing_file",
            },
        };
        let health = match verdict {
            Verdict::Clean { meta: checked } => {
                report.clean += 1;
                new_manifest.segments.push(checked);
                SegmentHealth::Clean
            }
            Verdict::Rebuild {
                image,
                kind,
                meta: repaired,
            } => {
                report.repaired += 1;
                let damaged_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let reclaimed = damaged_len.saturating_sub(image.len() as u64);
                report.bytes_reclaimed += reclaimed;
                new_manifest.segments.push(repaired);
                writes.push((path, image));
                match kind {
                    RepairKind::Tail => SegmentHealth::RepairedTail {
                        bytes_reclaimed: reclaimed,
                    },
                    RepairKind::Columns => SegmentHealth::RepairedColumns,
                }
            }
            Verdict::Quarantine { reason } => {
                report.quarantined += 1;
                manifest_dirty = true;
                new_manifest
                    .quarantined
                    .get_or_insert_with(Vec::new)
                    .push(QuarantinedSegment {
                        meta: meta.clone(),
                        reason: reason.into(),
                    });
                SegmentHealth::Quarantined {
                    reason: reason.into(),
                }
            }
        };
        report.checks.push(SegmentCheckReport {
            file: meta.file.clone(),
            bundles: meta.bundles,
            health,
        });
    }

    report.bundles_served = new_manifest.total_bundles();
    report.bundles_quarantined = new_manifest.total_quarantined_bundles();

    if repair_mode {
        for (path, image) in writes {
            write_segment_file(&path, &image)?;
            report.changed = true;
        }
        if manifest_dirty || !had_manifest {
            new_manifest.save(dir)?;
            report.changed = true;
        }
    }
    Ok(report)
}

fn count_tmp_files(dir: &Path) -> std::io::Result<u64> {
    let mut n = 0;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tmp") && path.is_file() {
            n += 1;
        }
    }
    Ok(n)
}

/// Rebuild a manifest from the segment files on disk, trusting each
/// file's own footer. Damaged files stay listed (they will be repaired
/// or quarantined by the main pass, which re-examines every entry).
fn synthesize_manifest(dir: &Path) -> std::io::Result<Manifest> {
    let mut files: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        if crate::manifest::parse_segment_index(&name).is_some() {
            files.push(name);
        }
    }
    files.sort();
    let mut manifest = Manifest::new();
    for file in files {
        let image = std::fs::read(dir.join(&file))?;
        let meta = match decode_segment(&image) {
            Ok((_, footer)) => meta_of(&file, &footer, image.len()),
            Err(_) => match recover_by_footer(&image) {
                // Trust the last fully-verifying prefix; the main pass
                // re-checks against this entry and performs the repair.
                Some((end, footer)) => meta_of(&file, &footer, end),
                // Unknown content: synthesize an entry so the main pass
                // quarantines it explicitly instead of forgetting it.
                None => SegmentMeta {
                    file: file.clone(),
                    bundles: 0,
                    details: 0,
                    polls: 0,
                    min_slot: u64::MAX,
                    max_slot: 0,
                    bytes: image.len() as u64,
                    checksum: "unrecoverable".into(),
                },
            },
        };
        manifest.segments.push(meta);
    }
    Ok(manifest)
}

fn meta_of(file: &str, footer: &SegmentFooter, bytes: usize) -> SegmentMeta {
    SegmentMeta {
        file: file.into(),
        bundles: footer.bundles as u64,
        details: footer.details as u64,
        polls: footer.polls as u64,
        min_slot: footer.min_slot,
        max_slot: footer.max_slot,
        bytes: bytes as u64,
        checksum: format!("{:016x}", footer.checksum),
    }
}

/// Examine one segment image against its manifest entry (or, with no
/// entry, against its own footer) and decide clean / rebuild /
/// quarantine.
pub(crate) fn check_segment(image: &[u8], meta: Option<&SegmentMeta>) -> Verdict {
    // Fast path: the image verifies end to end on its own.
    if let Ok((_, footer)) = decode_segment(image) {
        let derived = meta_of(
            meta.map(|m| m.file.as_str()).unwrap_or(""),
            &footer,
            image.len(),
        );
        return match meta {
            None => Verdict::Clean { meta: derived },
            Some(m) => {
                let matches = m.checksum == derived.checksum
                    && m.bundles == derived.bundles
                    && m.details == derived.details
                    && m.polls == derived.polls
                    && m.bytes == derived.bytes;
                if matches {
                    Verdict::Clean { meta: m.clone() }
                } else {
                    // A valid segment that is not the one the manifest
                    // sealed: substituted or silently rewritten.
                    Verdict::Quarantine {
                        reason: "manifest_mismatch",
                    }
                }
            }
        };
    }

    match meta {
        Some(m) => check_against_meta(image, m),
        None => match recover_by_footer(image) {
            Some((end, footer)) => {
                let new_image = image[..end].to_vec();
                let meta = meta_of("", &footer, end);
                Verdict::Rebuild {
                    image: new_image,
                    kind: RepairKind::Tail,
                    meta,
                }
            }
            None => Verdict::Quarantine {
                reason: "body_corrupt",
            },
        },
    }
}

/// The provable-recovery path: the manifest's body checksum is the seal
/// ground truth, so search the file for the byte prefix (after the magic)
/// whose rolling FNV-1a hash equals it. If found and decodable, the
/// canonical re-encode reproduces the sealed file bit for bit.
fn check_against_meta(image: &[u8], meta: &SegmentMeta) -> Verdict {
    let Ok(target) = u64::from_str_radix(&meta.checksum, 16) else {
        return Verdict::Quarantine {
            reason: "manifest_mismatch",
        };
    };
    // Version from the leading magic, or — when the magic itself is
    // damaged — from the trailing footer magic.
    let version = if image.len() >= 8 && &image[..8] == SEGMENT_MAGIC {
        2
    } else if image.len() >= 8 && &image[..8] == SEGMENT_MAGIC_V1 {
        1
    } else if image.ends_with(FOOTER_MAGIC) {
        2
    } else if image.ends_with(FOOTER_MAGIC_V1) {
        1
    } else {
        return Verdict::Quarantine {
            reason: "bad_magic",
        };
    };
    let kind = if columnar_only_damage(image) {
        RepairKind::Columns
    } else {
        RepairKind::Tail
    };
    let sections = if image.len() > 8 {
        &image[8..]
    } else {
        &[][..]
    };
    for body_len in body_lengths_matching(sections, target) {
        let Ok(data) = decode_body(&sections[..body_len]) else {
            // An FNV collision that does not decode: keep searching.
            continue;
        };
        if data.bundles.len() as u64 != meta.bundles
            || data.details.len() as u64 != meta.details
            || data.polls.len() as u64 != meta.polls
        {
            return Verdict::Quarantine {
                reason: "count_mismatch",
            };
        }
        let (new_image, footer) = if version == 1 {
            encode_segment_v1(&data)
        } else {
            encode_segment(&data)
        };
        // The re-encode must reproduce the sealed file exactly —
        // same checksum, same size — or the repair proves nothing.
        if format!("{:016x}", footer.checksum) != meta.checksum
            || new_image.len() as u64 != meta.bytes
        {
            return Verdict::Quarantine {
                reason: "reencode_unstable",
            };
        }
        return Verdict::Rebuild {
            image: new_image,
            kind,
            meta: meta.clone(),
        };
    }
    // The sealed body bytes are not present in the file: the damage
    // reaches into the body, which is unrecoverable.
    Verdict::Quarantine {
        reason: "body_corrupt",
    }
}

/// Every prefix length of `bytes` whose FNV-1a 64 hash equals `target`
/// (rolling hash: one pass, all candidates).
fn body_lengths_matching(bytes: &[u8], target: u64) -> Vec<usize> {
    let mut out = Vec::new();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    if hash == target {
        out.push(0);
    }
    for (i, &b) in bytes.iter().enumerate() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        if hash == target {
            out.push(i + 1);
        }
    }
    out
}

/// Footer intact, section lengths consistent, body checksum good —
/// i.e. the damage is confined to the columnar fast-path section.
fn columnar_only_damage(image: &[u8]) -> bool {
    if image.len() < 8 + FOOTER_LEN || &image[..8] != SEGMENT_MAGIC {
        return false;
    }
    let Ok(footer) = SegmentFooter::from_bytes(&image[image.len() - FOOTER_LEN..]) else {
        return false;
    };
    let sections = (image.len() - 8 - FOOTER_LEN) as u64;
    let Some(total) = footer.body_len.checked_add(footer.col_len) else {
        return false;
    };
    if total != sections || footer.col_len == 0 {
        return false;
    }
    let body = &image[8..8 + footer.body_len as usize];
    fnv1a64(body) == footer.checksum
}

/// Torn-tail detection without a manifest entry: the longest prefix that
/// ends in a footer magic and fully verifies (checksums and counts).
fn recover_by_footer(image: &[u8]) -> Option<(usize, SegmentFooter)> {
    for end in (8..=image.len()).rev() {
        let prefix = &image[..end];
        if !(prefix.ends_with(FOOTER_MAGIC) || prefix.ends_with(FOOTER_MAGIC_V1)) {
            continue;
        }
        if let Ok((_, footer)) = decode_segment(prefix) {
            return Some((end, footer));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{flip_byte, truncate_to, zero_tail};
    use crate::records::CollectedBundle;
    use crate::store::{BundleStore, StoreWriter};
    use sandwich_types::{Hash, Keypair, Lamports, Slot};
    use std::path::PathBuf;

    fn bundle(seed: u64, slot: u64) -> CollectedBundle {
        let kp = Keypair::from_label("doctor");
        CollectedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            timestamp_ms: slot * 400,
            tip: Lamports(seed * 1000),
            tx_ids: vec![kp.sign(&seed.to_le_bytes())],
        }
    }

    fn store_with_two_segments(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swdoctor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::create(&dir).unwrap();
        w.seal_segment(vec![bundle(1, 10), bundle(2, 20)], vec![], vec![])
            .unwrap();
        w.seal_segment(vec![bundle(3, 30), bundle(4, 40)], vec![], vec![])
            .unwrap();
        dir
    }

    #[test]
    fn clean_store_is_healthy() {
        let dir = store_with_two_segments("clean");
        let report = diagnose(&dir).unwrap();
        assert!(report.healthy());
        assert_eq!(report.clean, 2);
        assert_eq!(report.bundles_served, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn columnar_flip_is_repaired_byte_identically() {
        let dir = store_with_two_segments("colflip");
        let path = dir.join("seg-00000.seg");
        let sealed = std::fs::read(&path).unwrap();
        // Flip a byte inside the columnar section (body is intact).
        let parsed = crate::segment::parse_segment(&sealed).unwrap();
        let col_mid = parsed.columns.clone().unwrap().start + 3;
        flip_byte(&path, col_mid as u64).unwrap();

        let report = repair(&dir).unwrap();
        assert_eq!(report.repaired, 1);
        assert_eq!(report.quarantined, 0);
        assert!(matches!(
            report.checks[0].health,
            SegmentHealth::RepairedColumns
        ));
        assert_eq!(std::fs::read(&path).unwrap(), sealed, "bit-for-bit repair");
        // The manifest (and thus the store generation) is untouched.
        assert!(diagnose(&dir).unwrap().healthy());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_repaired_byte_identically() {
        let dir = store_with_two_segments("torn");
        let path = dir.join("seg-00001.seg");
        let sealed = std::fs::read(&path).unwrap();
        let parsed = crate::segment::parse_segment(&sealed).unwrap();
        // Tear into the columnar section: the body stays whole.
        truncate_to(&path, (parsed.body.end + 4) as u64).unwrap();

        let report = repair(&dir).unwrap();
        assert_eq!(report.repaired, 1);
        assert!(report.bytes_reclaimed > 0 || sealed.len() as u64 >= report.bytes_reclaimed);
        assert_eq!(std::fs::read(&path).unwrap(), sealed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zeroed_footer_is_repaired() {
        let dir = store_with_two_segments("zfoot");
        let path = dir.join("seg-00000.seg");
        let sealed = std::fs::read(&path).unwrap();
        zero_tail(&path, 20).unwrap();
        let report = repair(&dir).unwrap();
        assert_eq!(report.repaired, 1);
        assert_eq!(std::fs::read(&path).unwrap(), sealed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn body_damage_is_quarantined_with_exact_accounting() {
        let dir = store_with_two_segments("bodyflip");
        let path = dir.join("seg-00000.seg");
        let sealed = std::fs::read(&path).unwrap();
        let parsed = crate::segment::parse_segment(&sealed).unwrap();
        flip_byte(&path, (parsed.body.start + parsed.body.len() / 2) as u64).unwrap();

        let report = repair(&dir).unwrap();
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.bundles_quarantined, 2);
        assert_eq!(report.bundles_served, 2);

        // The store still opens and serves the surviving segment; the
        // quarantined one is on the books with its reason.
        let store = BundleStore::open(&dir).unwrap();
        assert_eq!(store.segments().len(), 1);
        assert_eq!(store.manifest().quarantined().len(), 1);
        assert_eq!(store.manifest().quarantined()[0].reason, "body_corrupt");
        assert_eq!(store.manifest().total_quarantined_bundles(), 2);
        // A later doctor run reports the standing quarantine but changes
        // nothing further.
        let again = repair(&dir).unwrap();
        assert_eq!(again.quarantined, 0);
        assert_eq!(again.already_quarantined, 1);
        assert!(!again.changed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_file_is_quarantined() {
        let dir = store_with_two_segments("gone");
        std::fs::remove_file(dir.join("seg-00001.seg")).unwrap();
        let report = repair(&dir).unwrap();
        assert_eq!(report.quarantined, 1);
        assert!(matches!(
            &report.checks[1].health,
            SegmentHealth::Quarantined { reason } if reason == "missing_file"
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_manifest_is_rebuilt_from_segments() {
        let dir = store_with_two_segments("rebuild");
        std::fs::write(dir.join(MANIFEST_FILE), b"{ not json").unwrap();
        let report = repair(&dir).unwrap();
        assert!(report.manifest_rebuilt);
        assert_eq!(report.clean, 2);
        let store = BundleStore::open(&dir).unwrap();
        assert_eq!(store.segments().len(), 2);
        assert_eq!(store.manifest().total_bundles(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn diagnose_never_writes() {
        let dir = store_with_two_segments("readonly");
        let path = dir.join("seg-00000.seg");
        flip_byte(&path, 9).unwrap();
        let damaged = std::fs::read(&path).unwrap();
        let manifest_before = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
        let report = diagnose(&dir).unwrap();
        assert!(!report.changed);
        assert_eq!(std::fs::read(&path).unwrap(), damaged);
        assert_eq!(
            std::fs::read(dir.join(MANIFEST_FILE)).unwrap(),
            manifest_before
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
