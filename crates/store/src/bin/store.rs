//! `store` — command-line maintenance for a bundle-store directory.
//!
//! ```text
//! store doctor <dir>            inspect only (exit 0 healthy, 1 problems)
//! store doctor <dir> --repair   repair/quarantine in place
//! store ls <dir>                list the manifest
//! store rebalance <dir> [--min-bundles N] [--max-bundles N]
//!                               merge small segments, split oversized ones
//! ```

use sandwich_store::doctor::{DoctorReport, SegmentHealth};
use sandwich_store::{BundleStore, RebalanceConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("doctor") => cmd_doctor(&args[1..]),
        Some("ls") => cmd_ls(&args[1..]),
        Some("rebalance") => cmd_rebalance(&args[1..]),
        _ => {
            eprintln!(
                "usage: store doctor <dir> [--repair] | store ls <dir> | \
                 store rebalance <dir> [--min-bundles N] [--max-bundles N]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn cmd_rebalance(args: &[String]) -> i32 {
    let usage = "usage: store rebalance <dir> [--min-bundles N] [--max-bundles N]";
    let mut config = RebalanceConfig::default();
    let mut dir: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let bound = match arg.as_str() {
            "--min-bundles" => Some(&mut config.min_bundles),
            "--max-bundles" => Some(&mut config.max_bundles),
            _ if arg.starts_with("--") => {
                eprintln!("{usage}");
                return 2;
            }
            _ => {
                if dir.replace(arg).is_some() {
                    eprintln!("{usage}");
                    return 2;
                }
                None
            }
        };
        if let Some(bound) = bound {
            match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(value)) => *bound = value,
                _ => {
                    eprintln!("{usage}");
                    return 2;
                }
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{usage}");
        return 2;
    };
    match sandwich_store::rebalance(std::path::Path::new(dir), &config) {
        Ok(report) => {
            println!(
                "rebalance: {} -> {} segments ({} merges, {} splits), \
                 {} bundles, {} bytes written",
                report.segments_before,
                report.segments_after,
                report.merges,
                report.splits,
                report.bundles,
                report.bytes_written,
            );
            if !report.changed() {
                println!("(already within bounds — nothing rewritten)");
            }
            0
        }
        Err(e) => {
            eprintln!("store rebalance: {e}");
            2
        }
    }
}

fn cmd_doctor(args: &[String]) -> i32 {
    let repair = args.iter().any(|a| a == "--repair");
    let dirs: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [dir] = dirs.as_slice() else {
        eprintln!("usage: store doctor <dir> [--repair]");
        return 2;
    };
    let dir = std::path::Path::new(dir);
    let result = if repair {
        sandwich_store::doctor::repair(dir)
    } else {
        sandwich_store::doctor::diagnose(dir)
    };
    match result {
        Ok(report) => {
            print_report(&report, repair);
            if report.healthy() && report.quarantined == 0 {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("store doctor: {e}");
            2
        }
    }
}

fn print_report(report: &DoctorReport, repair: bool) {
    let mode = if repair { "repair" } else { "diagnose" };
    if report.manifest_rebuilt {
        println!("manifest: unreadable, rebuilt from segment files");
    }
    for check in &report.checks {
        let verdict = match &check.health {
            SegmentHealth::Clean => "clean".to_string(),
            SegmentHealth::RepairedTail { bytes_reclaimed } => {
                format!("repaired torn tail ({bytes_reclaimed} bytes reclaimed)")
            }
            SegmentHealth::RepairedColumns => "repaired columnar section".to_string(),
            SegmentHealth::Quarantined { reason } => format!("QUARANTINED ({reason})"),
        };
        println!("{:<16} {:>9} bundles  {verdict}", check.file, check.bundles);
    }
    println!(
        "{mode}: {} clean, {} repaired, {} quarantined ({} standing), \
         {} bundles served, {} in quarantine, {} tmp files, {} tail bytes reclaimed",
        report.clean,
        report.repaired,
        report.quarantined,
        report.already_quarantined,
        report.bundles_served,
        report.bundles_quarantined,
        report.tmp_files,
        report.bytes_reclaimed,
    );
    if !repair && (report.repaired > 0 || report.quarantined > 0 || report.tmp_files > 0) {
        println!("(inspect only — rerun with --repair to apply)");
    }
}

fn cmd_ls(args: &[String]) -> i32 {
    let [dir] = args else {
        eprintln!("usage: store ls <dir>");
        return 2;
    };
    match BundleStore::open(dir) {
        Ok(store) => {
            for meta in store.segments() {
                println!(
                    "{:<16} {:>9} bundles  slots {:>10}..{:<10} {:>10} bytes  {}",
                    meta.file,
                    meta.bundles,
                    meta.min_slot,
                    meta.max_slot,
                    meta.bytes,
                    meta.checksum
                );
            }
            for q in store.quarantined() {
                println!(
                    "{:<16} {:>9} bundles  QUARANTINED ({})",
                    q.meta.file, q.meta.bundles, q.reason
                );
            }
            println!(
                "{} segments, {} bundles served, {} quarantined",
                store.segments().len(),
                store.manifest().total_bundles(),
                store.manifest().total_quarantined_bundles(),
            );
            0
        }
        Err(e) => {
            eprintln!("store ls: {e}");
            2
        }
    }
}
