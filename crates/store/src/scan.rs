//! The parallel scan executor: a `std::thread` pool that maps a function
//! over a list of scan units (sealed segments, in-memory chunks — anything
//! `Sync`) and hands the results back **in unit order**.
//!
//! Scheduling is a single shared atomic cursor: every worker steals the
//! next unclaimed unit when it finishes its current one, so a straggler
//! segment never idles the rest of the pool. Because each unit's result is
//! computed independently and the caller reduces them in unit order, the
//! reduction is deterministic regardless of the worker count or the
//! interleaving — the property the analysis layer relies on for
//! bit-identical reports at 1, 2, or 8 threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-worker accounting for the scan-time histograms.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Units this worker processed.
    pub units: u64,
    /// Wall-clock time spent inside the map function.
    pub busy: Duration,
}

/// Map `map(index, &unit)` over `units` on `threads` workers; results come
/// back in unit order alongside per-worker stats.
///
/// `threads == 0` or `1` runs inline on the calling thread (no pool).
/// Panics in `map` propagate to the caller.
pub fn parallel_map<U, T, F>(units: &[U], threads: usize, map: F) -> (Vec<T>, Vec<WorkerStats>)
where
    U: Sync,
    T: Send,
    F: Fn(usize, &U) -> T + Sync,
{
    let threads = threads.max(1).min(units.len().max(1));
    if threads == 1 {
        let mut stats = WorkerStats::default();
        let started = Instant::now();
        let results = units.iter().enumerate().map(|(i, u)| map(i, u)).collect();
        stats.units = units.len() as u64;
        stats.busy = started.elapsed();
        return (results, vec![stats]);
    }

    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(units.len());
    let mut worker_stats = vec![WorkerStats::default(); threads];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let map = &map;
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    let mut stats = WorkerStats::default();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= units.len() {
                            break;
                        }
                        let started = Instant::now();
                        local.push((i, map(i, &units[i])));
                        stats.busy += started.elapsed();
                        stats.units += 1;
                    }
                    (local, stats)
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            let (local, stats) = handle.join().expect("scan worker panicked");
            indexed.extend(local);
            worker_stats[w] = stats;
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    (indexed.into_iter().map(|(_, t)| t).collect(), worker_stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_unit_order() {
        let units: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8] {
            let (out, stats) = parallel_map(&units, threads, |i, &u| {
                // Uneven work so claim order scrambles.
                if u % 7 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
                (i as u64) * 2 + u
            });
            let expect: Vec<u64> = (0..100).map(|i| i * 3).collect();
            assert_eq!(out, expect, "threads={threads}");
            assert_eq!(stats.iter().map(|s| s.units).sum::<u64>(), 100);
        }
    }

    #[test]
    fn empty_units_is_fine() {
        let (out, _) = parallel_map(&Vec::<u8>::new(), 8, |_, &u| u);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        let units = vec![1u8, 2];
        let (out, _) = parallel_map(&units, 16, |_, &u| u * 10);
        assert_eq!(out, vec![10, 20]);
    }
}
