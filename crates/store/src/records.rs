//! The record types persisted by the store: collected bundles, transaction
//! details, and poll-ledger entries.
//!
//! These used to live in `sandwich-core`'s dataset; they moved down here so
//! the binary codec, the in-memory dataset, and the scan engine all share
//! one definition. `sandwich-core` re-exports them under the old paths.

use serde::{Deserialize, Serialize};

use sandwich_ledger::{TransactionId, TransactionMeta};
use sandwich_types::{Lamports, Slot};

/// One collected bundle record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectedBundle {
    /// The bundle id.
    pub bundle_id: sandwich_jito::BundleId,
    /// Landing slot.
    pub slot: Slot,
    /// Landing time (unix ms, from the API).
    pub timestamp_ms: u64,
    /// Tip in lamports.
    pub tip: Lamports,
    /// Transaction ids in bundle order.
    pub tx_ids: Vec<TransactionId>,
}

impl CollectedBundle {
    /// Number of bundled transactions.
    pub fn len(&self) -> usize {
        self.tx_ids.len()
    }

    /// Bundles are never empty.
    pub fn is_empty(&self) -> bool {
        self.tx_ids.is_empty()
    }
}

/// Detail for one transaction of a collected bundle.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectedDetail {
    /// The bundle the transaction belongs to.
    pub bundle_id: sandwich_jito::BundleId,
    /// Landing slot.
    pub slot: Slot,
    /// Execution metadata reconstructed from the wire.
    pub meta: TransactionMeta,
}

/// Result of ingesting one page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PollRecord {
    /// Measurement day the poll happened on.
    pub day: u64,
    /// Bundles in the returned page.
    pub fetched: usize,
    /// Bundles not seen before.
    pub new: usize,
    /// Whether the page overlapped previously collected bundles — if every
    /// successive pair overlaps, nothing was missed.
    pub overlapped_previous: bool,
}
