//! The segment body codec: a compact binary encoding of collected bundles,
//! transaction details, and poll records.
//!
//! Layout of a segment body (all integers LEB128 varints unless noted):
//!
//! ```text
//! pubkey table   varint count, then count × 32 raw bytes
//! bundles        varint count, then per record:
//!                  varint (tx count << 1 | id-is-derived) ·
//!                  zigzag(slot − prev slot) · [bundle id (32 raw)] ·
//!                  zigzag(timestamp − prev timestamp) · tip ·
//!                  tx ids (64 raw each)
//! details        varint count, then per record:
//!                  varint bundle ref (0 = external, else index+1) ·
//!                  external: zigzag(slot − prev slot) ·
//!                            bundle id (32 raw) · tx id (64 raw)
//!                  in-segment: varint tx position (== tx count means a
//!                            raw 64-byte tx id follows) ·
//!                            zigzag(slot − bundle slot)
//!                  then: signer (table index) · fee · priority fee ·
//!                  flags u8 · [error string] ·
//!                  sol deltas (index + zigzag i64) ·
//!                  token deltas (index + index + zigzag i128)
//! polls          varint count, then per record:
//!                  day · fetched · new · flags u8
//! ```
//!
//! Records are expected pre-sorted by slot (the writer sorts at seal time),
//! so the slot/timestamp deltas are small and usually one byte. Pubkeys
//! repeat heavily across details (signers, pool accounts, tip accounts,
//! mints), so they are interned into a per-segment table; transaction
//! signatures are effectively unique and stored raw — once. A bundle id is
//! normally the hash of the ordered tx ids ([`sandwich_jito::bundle_id_of`])
//! and is recomputed on decode instead of stored; a detail normally belongs
//! to a bundle sealed in the same segment and references it by index, so
//! neither its bundle id nor its tx id is repeated. Both carry raw-bytes
//! fallbacks for records that break those expectations.

use std::collections::HashMap;

use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_types::{Hash, LamportDelta, Lamports, Pubkey, Signature, Slot};

use crate::records::{CollectedBundle, CollectedDetail, PollRecord};
use crate::varint::{get_i128, get_i64, get_u64, put_i128, put_i64, put_u64, VarintError};

/// A decoding failure: the body does not parse as a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptSegment(pub String);

impl std::fmt::Display for CorruptSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt segment: {}", self.0)
    }
}

impl std::error::Error for CorruptSegment {}

impl From<VarintError> for CorruptSegment {
    fn from(_: VarintError) -> Self {
        CorruptSegment("truncated or overlong varint".into())
    }
}

/// The decoded contents of one segment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentData {
    /// Bundle summaries, sorted by (slot, bundle id).
    pub bundles: Vec<CollectedBundle>,
    /// Transaction details for bundles in this segment.
    pub details: Vec<CollectedDetail>,
    /// Poll-ledger entries recorded since the previous seal.
    pub polls: Vec<PollRecord>,
}

/// Interns pubkeys into a dense per-segment table.
#[derive(Default)]
struct KeyTable {
    index: HashMap<Pubkey, u64>,
    keys: Vec<Pubkey>,
}

impl KeyTable {
    fn intern(&mut self, key: &Pubkey) -> u64 {
        if let Some(&i) = self.index.get(key) {
            return i;
        }
        let i = self.keys.len() as u64;
        self.index.insert(*key, i);
        self.keys.push(*key);
        i
    }
}

const FLAG_SUCCESS: u8 = 1;
const FLAG_HAS_ERROR: u8 = 2;
const FLAG_OVERLAPPED: u8 = 1;

/// Byte positions of every record inside an encoded body — the raw
/// material for the columnar fast-path section ([`crate::column`]). Only
/// the encoder produces this; readers get the same offsets back from the
/// columnar section itself.
pub(crate) struct BodyLayout {
    /// Offset of each bundle record (the header varint).
    pub bundle_offsets: Vec<u64>,
    /// Offset of each detail record (the bundle-ref varint).
    pub detail_offsets: Vec<u64>,
    /// Offset of the poll-section count varint.
    pub polls_offset: u64,
    /// The interning table built during encoding (pubkey → table index).
    pub key_index: HashMap<Pubkey, u64>,
}

/// Encode a segment body. Records should already be in their canonical
/// order (the writer sorts before calling this).
pub fn encode_body(data: &SegmentData) -> Vec<u8> {
    encode_body_with_layout(data).0
}

/// [`encode_body`] that also reports where each record landed.
pub(crate) fn encode_body_with_layout(data: &SegmentData) -> (Vec<u8>, BodyLayout) {
    // Pass 1: intern every pubkey the details reference.
    let mut table = KeyTable::default();
    for d in &data.details {
        table.intern(&d.meta.signer);
        for s in &d.meta.sol_deltas {
            table.intern(&s.account);
        }
        for t in &d.meta.token_deltas {
            table.intern(&t.owner);
            table.intern(&t.mint);
        }
    }

    let mut out = Vec::new();
    put_u64(&mut out, table.keys.len() as u64);
    for key in &table.keys {
        out.extend_from_slice(key.as_bytes());
    }

    put_u64(&mut out, data.bundles.len() as u64);
    let mut bundle_offsets = Vec::with_capacity(data.bundles.len());
    let mut prev_slot = 0i64;
    let mut prev_ts = 0i64;
    for b in &data.bundles {
        bundle_offsets.push(out.len() as u64);
        let derived = b.bundle_id == sandwich_jito::bundle_id_of(&b.tx_ids);
        put_u64(&mut out, (b.tx_ids.len() as u64) << 1 | u64::from(derived));
        put_i64(&mut out, b.slot.0 as i64 - prev_slot);
        prev_slot = b.slot.0 as i64;
        if !derived {
            out.extend_from_slice(b.bundle_id.as_bytes());
        }
        put_i64(&mut out, b.timestamp_ms as i64 - prev_ts);
        prev_ts = b.timestamp_ms as i64;
        put_u64(&mut out, b.tip.0);
        for tx in &b.tx_ids {
            out.extend_from_slice(&tx.0);
        }
    }

    let mut bundle_index: HashMap<sandwich_jito::BundleId, usize> = HashMap::new();
    for (i, b) in data.bundles.iter().enumerate() {
        bundle_index.entry(b.bundle_id).or_insert(i);
    }

    put_u64(&mut out, data.details.len() as u64);
    let mut detail_offsets = Vec::with_capacity(data.details.len());
    let mut prev_slot = 0i64;
    for d in &data.details {
        detail_offsets.push(out.len() as u64);
        match bundle_index.get(&d.bundle_id) {
            Some(&i) => {
                let b = &data.bundles[i];
                put_u64(&mut out, i as u64 + 1);
                match b.tx_ids.iter().position(|t| *t == d.meta.tx_id) {
                    Some(p) => put_u64(&mut out, p as u64),
                    None => {
                        put_u64(&mut out, b.tx_ids.len() as u64);
                        out.extend_from_slice(&d.meta.tx_id.0);
                    }
                }
                put_i64(&mut out, d.slot.0 as i64 - b.slot.0 as i64);
            }
            None => {
                put_u64(&mut out, 0);
                put_i64(&mut out, d.slot.0 as i64 - prev_slot);
                out.extend_from_slice(d.bundle_id.as_bytes());
                out.extend_from_slice(&d.meta.tx_id.0);
            }
        }
        prev_slot = d.slot.0 as i64;
        put_u64(&mut out, table.intern(&d.meta.signer));
        put_u64(&mut out, d.meta.fee.0);
        put_u64(&mut out, d.meta.priority_fee.0);
        let mut flags = 0u8;
        if d.meta.success {
            flags |= FLAG_SUCCESS;
        }
        if d.meta.error.is_some() {
            flags |= FLAG_HAS_ERROR;
        }
        out.push(flags);
        if let Some(err) = &d.meta.error {
            put_u64(&mut out, err.len() as u64);
            out.extend_from_slice(err.as_bytes());
        }
        put_u64(&mut out, d.meta.sol_deltas.len() as u64);
        for s in &d.meta.sol_deltas {
            put_u64(&mut out, table.intern(&s.account));
            put_i64(&mut out, s.delta.0);
        }
        put_u64(&mut out, d.meta.token_deltas.len() as u64);
        for t in &d.meta.token_deltas {
            put_u64(&mut out, table.intern(&t.owner));
            put_u64(&mut out, table.intern(&t.mint));
            put_i128(&mut out, t.delta);
        }
    }

    let polls_offset = out.len() as u64;
    put_u64(&mut out, data.polls.len() as u64);
    for p in &data.polls {
        put_u64(&mut out, p.day);
        put_u64(&mut out, p.fetched as u64);
        put_u64(&mut out, p.new as u64);
        out.push(if p.overlapped_previous {
            FLAG_OVERLAPPED
        } else {
            0
        });
    }

    (
        out,
        BodyLayout {
            bundle_offsets,
            detail_offsets,
            polls_offset,
            key_index: table.index,
        },
    )
}

fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CorruptSegment> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| CorruptSegment("truncated fixed-width field".into()))?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn get_hash(buf: &[u8], pos: &mut usize) -> Result<Hash, CorruptSegment> {
    let b = get_bytes(buf, pos, 32)?;
    let mut arr = [0u8; 32];
    arr.copy_from_slice(b);
    Ok(Hash(arr))
}

fn get_signature(buf: &[u8], pos: &mut usize) -> Result<Signature, CorruptSegment> {
    let b = get_bytes(buf, pos, 64)?;
    let mut arr = [0u8; 64];
    arr.copy_from_slice(b);
    Ok(Signature(arr))
}

fn get_count(buf: &[u8], pos: &mut usize, max: usize, what: &str) -> Result<usize, CorruptSegment> {
    let n = get_u64(buf, pos)? as usize;
    // A count can never exceed the bytes remaining: each record is ≥ 1 byte.
    if n > max {
        return Err(CorruptSegment(format!("{what} count {n} exceeds body")));
    }
    Ok(n)
}

/// Decode the pubkey interning table at the head of a body. Returns the
/// table and leaves `pos` at the bundle-count varint.
pub(crate) fn decode_key_table(buf: &[u8], pos: &mut usize) -> Result<Vec<Pubkey>, CorruptSegment> {
    let key_count = get_count(buf, pos, buf.len() / 32, "pubkey table")?;
    let mut keys = Vec::with_capacity(key_count);
    for _ in 0..key_count {
        let b = get_bytes(buf, pos, 32)?;
        let mut arr = [0u8; 32];
        arr.copy_from_slice(b);
        keys.push(Pubkey(arr));
    }
    Ok(keys)
}

/// Decode one bundle record at `pos`. `prev_slot`/`prev_ts` are the
/// delta-coding context: the previous bundle's absolute values (0 for the
/// first record). The sequential decoder threads them through the loop;
/// the zero-copy view reads them from the slot column instead.
pub(crate) fn decode_bundle_record(
    buf: &[u8],
    pos: &mut usize,
    prev_slot: i64,
    prev_ts: i64,
) -> Result<CollectedBundle, CorruptSegment> {
    let header = get_u64(buf, pos)?;
    let derived = header & 1 != 0;
    let tx_count = (header >> 1) as usize;
    if tx_count > buf.len() / 64 {
        return Err(CorruptSegment(format!(
            "tx id count {tx_count} exceeds body"
        )));
    }
    let slot = prev_slot
        .checked_add(get_i64(buf, pos)?)
        .ok_or_else(|| CorruptSegment("slot delta overflow".into()))?;
    let stored_id = if derived {
        None
    } else {
        Some(get_hash(buf, pos)?)
    };
    let ts = prev_ts
        .checked_add(get_i64(buf, pos)?)
        .ok_or_else(|| CorruptSegment("timestamp delta overflow".into()))?;
    let tip = get_u64(buf, pos)?;
    let mut tx_ids = Vec::with_capacity(tx_count);
    for _ in 0..tx_count {
        tx_ids.push(get_signature(buf, pos)?);
    }
    if slot < 0 || ts < 0 {
        return Err(CorruptSegment("negative slot or timestamp".into()));
    }
    let bundle_id = stored_id.unwrap_or_else(|| sandwich_jito::bundle_id_of(&tx_ids));
    Ok(CollectedBundle {
        bundle_id,
        slot: Slot(slot as u64),
        timestamp_ms: ts as u64,
        tip: Lamports(tip),
        tx_ids,
    })
}

/// A bundle record parsed just far enough for random access: everything
/// but the delta-coded slot/timestamp (which the zero-copy view reads
/// from the columnar section instead) and the tx ids (left in place as a
/// fixed-stride region so single signatures can be read without
/// materializing the list).
#[derive(Clone, Copy, Debug)]
pub(crate) struct BundleBrief {
    /// The stored bundle id, or `None` when it is derived from the tx ids.
    pub stored_id: Option<Hash>,
    /// Offset of the first signature (64 bytes each).
    pub tx_ids_at: usize,
    /// Number of signatures.
    pub tx_count: usize,
}

impl BundleBrief {
    /// Signature `p` of the bundle, read in place.
    pub fn tx(&self, buf: &[u8], p: usize) -> Option<Signature> {
        if p >= self.tx_count {
            return None;
        }
        let mut pos = self.tx_ids_at + 64 * p;
        get_signature(buf, &mut pos).ok()
    }

    /// The bundle id: the stored one, or derived from the tx ids.
    pub fn bundle_id(&self, buf: &[u8]) -> Result<Hash, CorruptSegment> {
        if let Some(id) = self.stored_id {
            return Ok(id);
        }
        let mut pos = self.tx_ids_at;
        let mut tx_ids = Vec::with_capacity(self.tx_count);
        for _ in 0..self.tx_count {
            tx_ids.push(get_signature(buf, &mut pos)?);
        }
        Ok(sandwich_jito::bundle_id_of(&tx_ids))
    }
}

/// Parse one bundle record at `pos` without reconstructing its slot or
/// timestamp (their deltas are skipped). Same wire walk and bounds checks
/// as [`decode_bundle_record`], minus the work the fast path never needs.
pub(crate) fn decode_bundle_brief(
    buf: &[u8],
    pos: &mut usize,
) -> Result<BundleBrief, CorruptSegment> {
    let header = get_u64(buf, pos)?;
    let derived = header & 1 != 0;
    let tx_count = (header >> 1) as usize;
    if tx_count > buf.len() / 64 {
        return Err(CorruptSegment(format!(
            "tx id count {tx_count} exceeds body"
        )));
    }
    get_i64(buf, pos)?; // slot delta
    let stored_id = if derived {
        None
    } else {
        Some(get_hash(buf, pos)?)
    };
    get_i64(buf, pos)?; // timestamp delta
    get_u64(buf, pos)?; // tip (the columns carry it)
    let tx_ids_at = *pos;
    get_bytes(buf, pos, tx_count * 64)?;
    Ok(BundleBrief {
        stored_id,
        tx_ids_at,
        tx_count,
    })
}

/// What a detail record needs from the bundle it references: enough to
/// resolve its elided bundle id, slot base, and tx id. Implemented by the
/// decoded bundle slice (sequential decode) and by the lazy segment view.
pub(crate) trait BundleBriefs {
    /// `(slot, tx_count)` of bundle `index`, if it exists.
    fn brief(&self, index: usize) -> Option<(Slot, usize)>;
    /// The id of bundle `index`. Separate from [`Self::brief`] because a
    /// derived id costs a hash — callers that only need the meta
    /// ([`decode_detail_meta`]) never ask.
    fn id(&self, index: usize) -> Option<Hash>;
    /// Tx id at position `p` of bundle `index`, if in range.
    fn tx_at(&self, index: usize, p: usize) -> Option<Signature>;
}

impl BundleBriefs for [CollectedBundle] {
    fn brief(&self, index: usize) -> Option<(Slot, usize)> {
        self.get(index).map(|b| (b.slot, b.tx_ids.len()))
    }

    fn id(&self, index: usize) -> Option<Hash> {
        self.get(index).map(|b| b.bundle_id)
    }

    fn tx_at(&self, index: usize, p: usize) -> Option<Signature> {
        self.get(index).and_then(|b| b.tx_ids.get(p)).copied()
    }
}

/// Where a decoded detail's bundle id comes from: stored inline (external
/// details) or resolved from the referenced bundle on demand.
enum IdSource {
    Stored(Hash),
    Bundle(usize),
}

/// Decode one detail record at `pos`. `prev_slot` is the previous
/// *external* detail context (the running detail slot); in-segment details
/// take their slot base from the referenced bundle via `briefs`.
pub(crate) fn decode_detail_record<B, K>(
    buf: &[u8],
    pos: &mut usize,
    prev_slot: i64,
    briefs: &B,
    key_at: &K,
) -> Result<CollectedDetail, CorruptSegment>
where
    B: BundleBriefs + ?Sized,
    K: Fn(u64) -> Result<Pubkey, CorruptSegment>,
{
    let (id, slot, meta) = decode_detail_inner(buf, pos, prev_slot, briefs, key_at)?;
    let bundle_id = match id {
        IdSource::Stored(hash) => hash,
        IdSource::Bundle(index) => briefs
            .id(index)
            .ok_or_else(|| CorruptSegment(format!("detail bundle ref {index} out of segment")))?,
    };
    Ok(CollectedDetail {
        bundle_id,
        slot,
        meta,
    })
}

/// Decode only the transaction meta of a detail record — the id of the
/// bundle it belongs to is never resolved (for derived ids that is a hash
/// per record, which the scan's candidate path doesn't need: the detector
/// consumes metas alone).
pub(crate) fn decode_detail_meta<B, K>(
    buf: &[u8],
    pos: &mut usize,
    prev_slot: i64,
    briefs: &B,
    key_at: &K,
) -> Result<TransactionMeta, CorruptSegment>
where
    B: BundleBriefs + ?Sized,
    K: Fn(u64) -> Result<Pubkey, CorruptSegment>,
{
    decode_detail_inner(buf, pos, prev_slot, briefs, key_at).map(|(_, _, meta)| meta)
}

fn decode_detail_inner<B, K>(
    buf: &[u8],
    pos: &mut usize,
    prev_slot: i64,
    briefs: &B,
    key_at: &K,
) -> Result<(IdSource, Slot, TransactionMeta), CorruptSegment>
where
    B: BundleBriefs + ?Sized,
    K: Fn(u64) -> Result<Pubkey, CorruptSegment>,
{
    let bundle_ref = get_u64(buf, pos)?;
    let (id, tx_id, slot) = if bundle_ref == 0 {
        let slot = prev_slot
            .checked_add(get_i64(buf, pos)?)
            .ok_or_else(|| CorruptSegment("slot delta overflow".into()))?;
        let bundle_id = get_hash(buf, pos)?;
        let tx_id = get_signature(buf, pos)?;
        (IdSource::Stored(bundle_id), tx_id, slot)
    } else {
        let index = bundle_ref as usize - 1;
        let (bundle_slot, tx_count) = briefs.brief(index).ok_or_else(|| {
            CorruptSegment(format!("detail bundle ref {bundle_ref} out of segment"))
        })?;
        let p = get_u64(buf, pos)? as usize;
        let tx_id = if p == tx_count {
            get_signature(buf, pos)?
        } else {
            briefs
                .tx_at(index, p)
                .ok_or_else(|| CorruptSegment(format!("detail tx position {p} out of bundle")))?
        };
        let slot = (bundle_slot.0 as i64)
            .checked_add(get_i64(buf, pos)?)
            .ok_or_else(|| CorruptSegment("slot delta overflow".into()))?;
        (IdSource::Bundle(index), tx_id, slot)
    };
    let signer = key_at(get_u64(buf, pos)?)?;
    let fee = get_u64(buf, pos)?;
    let priority_fee = get_u64(buf, pos)?;
    let flags = *buf
        .get(*pos)
        .ok_or_else(|| CorruptSegment("truncated detail flags".into()))?;
    *pos += 1;
    let error = if flags & FLAG_HAS_ERROR != 0 {
        let len = get_count(buf, pos, buf.len(), "error string")?;
        let bytes = get_bytes(buf, pos, len)?;
        Some(
            String::from_utf8(bytes.to_vec())
                .map_err(|_| CorruptSegment("error string is not utf-8".into()))?,
        )
    } else {
        None
    };
    let sol_count = get_count(buf, pos, buf.len(), "sol delta")?;
    let mut sol_deltas = Vec::with_capacity(sol_count);
    for _ in 0..sol_count {
        let account = key_at(get_u64(buf, pos)?)?;
        let delta = LamportDelta(get_i64(buf, pos)?);
        sol_deltas.push(SolDelta { account, delta });
    }
    let token_count = get_count(buf, pos, buf.len(), "token delta")?;
    let mut token_deltas = Vec::with_capacity(token_count);
    for _ in 0..token_count {
        let owner = key_at(get_u64(buf, pos)?)?;
        let mint = key_at(get_u64(buf, pos)?)?;
        let delta = get_i128(buf, pos)?;
        token_deltas.push(TokenDelta { owner, mint, delta });
    }
    if slot < 0 {
        return Err(CorruptSegment("negative detail slot".into()));
    }
    Ok((
        id,
        Slot(slot as u64),
        TransactionMeta {
            tx_id,
            signer,
            fee: Lamports(fee),
            priority_fee: Lamports(priority_fee),
            success: flags & FLAG_SUCCESS != 0,
            error,
            sol_deltas,
            token_deltas,
        },
    ))
}

/// Decode the poll section at `pos` (the count varint).
pub(crate) fn decode_poll_section(
    buf: &[u8],
    pos: &mut usize,
) -> Result<Vec<PollRecord>, CorruptSegment> {
    let poll_count = get_count(buf, pos, buf.len(), "poll")?;
    let mut polls = Vec::with_capacity(poll_count);
    for _ in 0..poll_count {
        let day = get_u64(buf, pos)?;
        let fetched = get_u64(buf, pos)? as usize;
        let new = get_u64(buf, pos)? as usize;
        let flags = *buf
            .get(*pos)
            .ok_or_else(|| CorruptSegment("truncated poll flags".into()))?;
        *pos += 1;
        polls.push(PollRecord {
            day,
            fetched,
            new,
            overlapped_previous: flags & FLAG_OVERLAPPED != 0,
        });
    }
    Ok(polls)
}

/// Decode a segment body produced by [`encode_body`].
pub fn decode_body(buf: &[u8]) -> Result<SegmentData, CorruptSegment> {
    let mut pos = 0usize;

    let keys = decode_key_table(buf, &mut pos)?;
    let key_at = |i: u64| -> Result<Pubkey, CorruptSegment> {
        keys.get(i as usize)
            .copied()
            .ok_or_else(|| CorruptSegment(format!("pubkey index {i} out of table")))
    };

    let bundle_count = get_count(buf, &mut pos, buf.len(), "bundle")?;
    let mut bundles = Vec::with_capacity(bundle_count);
    let mut prev_slot = 0i64;
    let mut prev_ts = 0i64;
    for _ in 0..bundle_count {
        let b = decode_bundle_record(buf, &mut pos, prev_slot, prev_ts)?;
        prev_slot = b.slot.0 as i64;
        prev_ts = b.timestamp_ms as i64;
        bundles.push(b);
    }

    let detail_count = get_count(buf, &mut pos, buf.len(), "detail")?;
    let mut details = Vec::with_capacity(detail_count);
    let mut prev_slot = 0i64;
    for _ in 0..detail_count {
        let d = decode_detail_record(buf, &mut pos, prev_slot, &bundles[..], &key_at)?;
        prev_slot = d.slot.0 as i64;
        details.push(d);
    }

    let polls = decode_poll_section(buf, &mut pos)?;

    if pos != buf.len() {
        return Err(CorruptSegment(format!(
            "{} trailing bytes after records",
            buf.len() - pos
        )));
    }

    Ok(SegmentData {
        bundles,
        details,
        polls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SegmentData {
        let kp = sandwich_types::Keypair::from_label("codec");
        let other = Pubkey::derive("other");
        let mint = Pubkey::derive("mint");
        let bundles = vec![
            CollectedBundle {
                bundle_id: Hash::digest(b"b1"),
                slot: Slot(100),
                timestamp_ms: 40_000,
                tip: Lamports(5_000),
                tx_ids: vec![kp.sign(b"t1")],
            },
            CollectedBundle {
                bundle_id: Hash::digest(b"b2"),
                slot: Slot(101),
                timestamp_ms: 40_400,
                tip: Lamports(2_000_000),
                tx_ids: vec![kp.sign(b"t2"), kp.sign(b"t3"), kp.sign(b"t4")],
            },
        ];
        let details = vec![CollectedDetail {
            bundle_id: Hash::digest(b"b2"),
            slot: Slot(101),
            meta: TransactionMeta {
                tx_id: kp.sign(b"t2"),
                signer: kp.pubkey(),
                fee: Lamports(5_000),
                priority_fee: Lamports(0),
                success: false,
                error: Some("slippage exceeded".into()),
                sol_deltas: vec![
                    SolDelta {
                        account: kp.pubkey(),
                        delta: LamportDelta(-1_000_000),
                    },
                    SolDelta {
                        account: other,
                        delta: LamportDelta(995_000),
                    },
                ],
                token_deltas: vec![TokenDelta {
                    owner: kp.pubkey(),
                    mint,
                    delta: -170_141_183_460_469_231_731_687_303_715i128,
                }],
            },
        }];
        let polls = vec![
            PollRecord {
                day: 0,
                fetched: 50,
                new: 50,
                overlapped_previous: true,
            },
            PollRecord {
                day: 1,
                fetched: 50,
                new: 3,
                overlapped_previous: false,
            },
        ];
        SegmentData {
            bundles,
            details,
            polls,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let data = sample();
        let body = encode_body(&data);
        let back = decode_body(&body).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_segment_roundtrips() {
        let data = SegmentData::default();
        let body = encode_body(&data);
        assert_eq!(decode_body(&body).unwrap(), data);
    }

    #[test]
    fn truncation_is_detected() {
        let body = encode_body(&sample());
        for cut in [1, body.len() / 2, body.len() - 1] {
            assert!(decode_body(&body[..cut]).is_err(), "cut at {cut} passed");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut body = encode_body(&sample());
        body.push(0);
        assert!(decode_body(&body).is_err());
    }

    #[test]
    fn derived_bundle_ids_and_in_segment_details_are_not_stored() {
        let kp = sandwich_types::Keypair::from_label("codec");
        let tx_ids = vec![kp.sign(b"a"), kp.sign(b"b"), kp.sign(b"c")];
        let bundle_id = sandwich_jito::bundle_id_of(&tx_ids);
        let data = SegmentData {
            bundles: vec![CollectedBundle {
                bundle_id,
                slot: Slot(7),
                timestamp_ms: 2_800,
                tip: Lamports(10_000),
                tx_ids: tx_ids.clone(),
            }],
            details: vec![CollectedDetail {
                bundle_id,
                slot: Slot(7),
                meta: TransactionMeta {
                    tx_id: tx_ids[1],
                    signer: kp.pubkey(),
                    fee: Lamports(5_000),
                    priority_fee: Lamports(0),
                    success: true,
                    error: None,
                    sol_deltas: vec![],
                    token_deltas: vec![],
                },
            }],
            polls: vec![],
        };
        let body = encode_body(&data);
        assert_eq!(decode_body(&body).unwrap(), data);
        // The derivable bundle id is recomputed, not stored: its 32 bytes
        // never appear in the body.
        assert_eq!(
            body.windows(32)
                .filter(|w| *w == bundle_id.as_bytes())
                .count(),
            0
        );
        // The detail references the bundle and its second tx by index, so
        // each signature's 64 bytes appear exactly once (in the bundle).
        for tx in &tx_ids {
            assert_eq!(body.windows(64).filter(|w| *w == &tx.0[..]).count(), 1);
        }
    }

    #[test]
    fn interning_stores_each_pubkey_once() {
        let data = sample();
        let body = encode_body(&data);
        // The signer appears three times across the detail (signer + a sol
        // delta + a token-delta owner) but its 32 raw bytes must appear in
        // the body exactly once — everything else is a one-byte index.
        let signer = sandwich_types::Keypair::from_label("codec").pubkey();
        let occurrences = body.windows(32).filter(|w| *w == signer.as_bytes()).count();
        assert_eq!(occurrences, 1);
    }
}
