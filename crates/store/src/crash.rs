//! Deterministic crash injection for the durable-write path, plus the
//! durable-write primitive itself.
//!
//! Every durable artifact in the store (segment files, the manifest) is
//! written through [`write_durable_with`]: create a temp file, write the
//! image in section-aligned chunks, `fsync` the file, rename it into
//! place, and `fsync` the parent directory. Each of those operations is
//! one enumerated *crash step*. A [`CrashPlan`] — seeded and fully
//! deterministic, like the explorer's `FaultPlan` from the chaos layer —
//! can kill the writer at any step, in one of two flavours:
//!
//! * **clean kill** (process death): everything before the step is
//!   exactly as written; the step itself never happens. Unsynced bytes
//!   survive, because the page cache belongs to the kernel, not the
//!   process.
//! * **torn write** (power loss): unsynced state is partially lost. A
//!   crash during a chunk write leaves a seeded prefix of that chunk; a
//!   crash at file-fsync drops a seeded suffix of everything unsynced; a
//!   crash at directory-fsync may undo the rename itself (the directory
//!   entry was never durable), restoring the pre-rename destination.
//!
//! The same plan run in *counting* mode enumerates how many steps an
//! operation performs, so a test matrix can iterate every crash point
//! exhaustively. An injected crash surfaces as an [`std::io::Error`] of
//! kind [`std::io::ErrorKind::Interrupted`] (see [`is_injected_crash`]);
//! the harness treats the writer as dead from that point on, exactly as a
//! real crash would.
//!
//! The module also hosts the sealed-file mutators ([`flip_byte`],
//! [`truncate_to`], [`zero_tail`]) used by the doctor tests and the crash
//! bench to model bit rot and partial-page damage on already-durable
//! files.

use std::io::Write;
use std::path::Path;

/// Marker carried in the message of every injected-crash error.
const CRASH_MARKER: &str = "crash injected";

/// A deterministic plan for killing a durable write mid-flight.
///
/// Construct with [`CrashPlan::count`] to enumerate the steps of an
/// operation without crashing, or [`CrashPlan::crash_at`] to die at one
/// specific step. The plan is single-use: drive exactly one logical
/// operation (e.g. one `seal_segment` call) through it, then read
/// [`CrashPlan::steps_seen`] / [`CrashPlan::fired`].
#[derive(Debug)]
pub struct CrashPlan {
    /// `None` = counting mode (never fires).
    crash_step: Option<u64>,
    /// Torn-write (power loss) semantics instead of a clean process kill.
    torn: bool,
    /// Steps encountered so far; the next step has this ordinal.
    next_step: u64,
    /// xorshift64 state for torn-write randomness (the store crate is
    /// dependency-free, so it carries its own tiny generator).
    rng: u64,
    /// Description of the step the crash fired at, once it has.
    fired: Option<String>,
}

/// What a step should do, as decided by the plan.
enum Fire {
    Proceed,
    Clean,
    Torn,
}

impl CrashPlan {
    /// A plan that never crashes — used to count the steps of an
    /// operation so a matrix can enumerate `0..steps_seen()` crash points.
    pub fn count() -> CrashPlan {
        CrashPlan {
            crash_step: None,
            torn: false,
            next_step: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
            fired: None,
        }
    }

    /// A plan that crashes at crash point `step` (0-based, in encounter
    /// order). `torn` selects power-loss semantics; `seed` drives every
    /// random choice the torn path makes.
    pub fn crash_at(step: u64, torn: bool, seed: u64) -> CrashPlan {
        // splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        CrashPlan {
            crash_step: Some(step),
            torn,
            next_step: 0,
            rng: (z ^ (z >> 31)) | 1,
            fired: None,
        }
    }

    /// Steps encountered so far (after a counting run: the total number
    /// of crash points the operation exposes).
    pub fn steps_seen(&self) -> u64 {
        self.next_step
    }

    /// The step description the crash fired at, if it has fired.
    pub fn fired(&self) -> Option<&str> {
        self.fired.as_deref()
    }

    /// Draw the next torn-write random value.
    fn draw(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Record one step and decide whether to crash at it.
    fn step(&mut self, op: &str) -> Fire {
        let ordinal = self.next_step;
        self.next_step += 1;
        if self.crash_step == Some(ordinal) {
            self.fired = Some(format!("step {ordinal} ({op})"));
            if self.torn {
                Fire::Torn
            } else {
                Fire::Clean
            }
        } else {
            Fire::Proceed
        }
    }
}

/// Is this error an injected crash (as opposed to a real I/O failure)?
pub fn is_injected_crash(err: &std::io::Error) -> bool {
    err.kind() == std::io::ErrorKind::Interrupted && err.to_string().contains(CRASH_MARKER)
}

fn crash_error(plan: &CrashPlan) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!(
            "{CRASH_MARKER} at {}",
            plan.fired.as_deref().unwrap_or("unknown step")
        ),
    )
}

/// Decide the fate of the next step. With no plan, always proceed.
fn check(plan: &mut Option<&mut CrashPlan>, op: &str) -> Fire {
    match plan {
        Some(p) => p.step(op),
        None => Fire::Proceed,
    }
}

/// `fsync` a directory so a just-renamed entry inside it is durable.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Durably write `bytes` to `path`: temp file, chunked writes split at
/// `boundaries` (sorted offsets into `bytes`, each a crash point),
/// `fsync`, atomic rename, parent-directory `fsync`. With a [`CrashPlan`]
/// attached, every operation is an enumerated crash step and the
/// simulated on-disk state after an injected crash is exactly what the
/// chosen crash model leaves behind.
pub fn write_durable_with(
    path: &Path,
    bytes: &[u8],
    boundaries: &[usize],
    mut plan: Option<&mut CrashPlan>,
) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");

    let mut f = match check(&mut plan, "create temp file") {
        Fire::Proceed => std::fs::File::create(&tmp)?,
        // Crash before the temp file exists: nothing on disk changed.
        Fire::Clean | Fire::Torn => return Err(crash_error(plan.as_deref().unwrap())),
    };

    let mut written = 0usize;
    for (i, chunk) in chunks_of(bytes, boundaries).into_iter().enumerate() {
        match check(&mut plan, &format!("write chunk {i}")) {
            Fire::Proceed => {
                f.write_all(chunk)?;
                written += chunk.len();
            }
            // Clean kill mid-write: the chunk was never handed to the
            // kernel (write_all is all-or-nothing at this granularity).
            Fire::Clean => return Err(crash_error(plan.as_deref().unwrap())),
            // Torn: a seeded prefix of the chunk made it to the page
            // cache before power was lost — and nothing was fsynced, so
            // model the surviving file directly.
            Fire::Torn => {
                let p = plan.as_deref_mut().unwrap();
                let keep = (p.draw() as usize) % (chunk.len() + 1);
                f.write_all(&chunk[..keep])?;
                drop(f);
                let survives = (p.draw() as usize) % (written + keep + 1);
                let tf = std::fs::OpenOptions::new().write(true).open(&tmp)?;
                tf.set_len(survives as u64)?;
                return Err(crash_error(plan.as_deref().unwrap()));
            }
        }
    }

    match check(&mut plan, "fsync temp file") {
        Fire::Proceed => f.sync_all()?,
        // Clean kill before fsync: the kernel still holds the pages; the
        // fully-written temp file survives the process.
        Fire::Clean => return Err(crash_error(plan.as_deref().unwrap())),
        // Power loss before fsync: a seeded suffix of the unsynced bytes
        // never reached the platter.
        Fire::Torn => {
            drop(f);
            let p = plan.as_deref_mut().unwrap();
            let survives = (p.draw() as usize) % (written + 1);
            let tf = std::fs::OpenOptions::new().write(true).open(&tmp)?;
            tf.set_len(survives as u64)?;
            return Err(crash_error(plan.as_deref().unwrap()));
        }
    }
    drop(f);

    // Capture the pre-rename destination so a torn directory-fsync crash
    // can restore it. Only the injection path pays for this read.
    let old_dest = match &plan {
        Some(_) if path.exists() => Some(std::fs::read(path)?),
        _ => None,
    };

    match check(&mut plan, "rename into place") {
        Fire::Proceed => std::fs::rename(&tmp, path)?,
        // Crash before rename: the synced temp file remains, the
        // destination is untouched. Same outcome for both flavours —
        // the rename either happened or it did not.
        Fire::Clean | Fire::Torn => return Err(crash_error(plan.as_deref().unwrap())),
    }

    match check(&mut plan, "fsync directory") {
        Fire::Proceed => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                fsync_dir(parent)?;
            }
        }
        // Clean kill after rename: the directory entry is in cache and
        // survives the process.
        Fire::Clean => return Err(crash_error(plan.as_deref().unwrap())),
        // Power loss before the directory fsync: the rename itself may
        // not be durable. A seeded coin decides whether the directory
        // entry was lost, which reverts the store to its pre-rename
        // state (new image back under the temp name, old destination
        // restored).
        Fire::Torn => {
            let p = plan.as_deref_mut().unwrap();
            if p.draw() % 2 == 1 {
                std::fs::write(&tmp, bytes)?;
                match old_dest {
                    Some(old) => std::fs::write(path, old)?,
                    None => {
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
            return Err(crash_error(plan.as_deref().unwrap()));
        }
    }
    Ok(())
}

/// Split `bytes` at `boundaries` (offsets, need not be sorted or unique;
/// out-of-range and degenerate offsets are dropped).
fn chunks_of<'a>(bytes: &'a [u8], boundaries: &[usize]) -> Vec<&'a [u8]> {
    let mut cuts: Vec<usize> = boundaries
        .iter()
        .copied()
        .filter(|&b| b > 0 && b < bytes.len())
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0;
    for cut in cuts {
        out.push(&bytes[start..cut]);
        start = cut;
    }
    out.push(&bytes[start..]);
    out
}

/// Flip one bit of the byte at `offset` in a sealed file (bit-rot model).
pub fn flip_byte(path: &Path, offset: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= 0x40;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)?;
    f.sync_all()
}

/// Truncate a sealed file to `len` bytes (torn-tail model).
pub fn truncate_to(path: &Path, len: u64) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()
}

/// Zero the last `n` bytes of a sealed file without changing its length
/// (partial-page / unwritten-sector model).
pub fn zero_tail(path: &Path, n: u64) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom};
    let mut f = std::fs::OpenOptions::new().write(true).open(path)?;
    let len = f.metadata()?.len();
    let n = n.min(len);
    f.seek(SeekFrom::Start(len - n))?;
    f.write_all(&vec![0u8; n as usize])?;
    f.sync_all()
}

/// Remove every `*.tmp` file in `dir` (write-ahead leftovers from a
/// crashed writer). Returns how many were removed.
pub fn remove_stale_tmp_files(dir: &Path) -> std::io::Result<u64> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") && path.is_file() {
            std::fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("swcrash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn counting_run_writes_and_counts() {
        let dir = tmp_dir("count");
        let path = dir.join("file.bin");
        let bytes: Vec<u8> = (0..=255).collect();
        let mut plan = CrashPlan::count();
        write_durable_with(&path, &bytes, &[64, 128, 192], Some(&mut plan)).unwrap();
        // create + 4 chunk writes + fsync + rename + dir fsync.
        assert_eq!(plan.steps_seen(), 8);
        assert!(plan.fired().is_none());
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_crash_point_leaves_old_destination_or_new_image() {
        let dir = tmp_dir("matrix");
        let path = dir.join("file.bin");
        let old: Vec<u8> = vec![0xAA; 100];
        let new: Vec<u8> = (0..=199).collect();
        let mut count = CrashPlan::count();
        std::fs::write(&path, &old).unwrap();
        write_durable_with(&path, &new, &[50, 100, 150], Some(&mut count)).unwrap();
        let total = count.steps_seen();
        assert!(total >= 8);

        for torn in [false, true] {
            for step in 0..total {
                for seed in [1u64, 7, 42] {
                    std::fs::write(&path, &old).unwrap();
                    let _ = std::fs::remove_file(path.with_extension("tmp"));
                    let mut plan = CrashPlan::crash_at(step, torn, seed);
                    let err = write_durable_with(&path, &new, &[50, 100, 150], Some(&mut plan))
                        .unwrap_err();
                    assert!(is_injected_crash(&err), "step {step}: {err}");
                    // The invariant durable writes exist to provide: the
                    // destination is always entirely-old or entirely-new.
                    let after = std::fs::read(&path).unwrap();
                    assert!(
                        after == old || after == new,
                        "torn={torn} step={step} seed={seed}: destination half-written"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_past_the_end_never_fires() {
        let dir = tmp_dir("past");
        let path = dir.join("file.bin");
        let mut plan = CrashPlan::crash_at(1_000, true, 3);
        write_durable_with(&path, b"hello", &[], Some(&mut plan)).unwrap();
        assert!(plan.fired().is_none());
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutators_do_what_they_say() {
        let dir = tmp_dir("mut");
        let path = dir.join("file.bin");
        std::fs::write(&path, [1u8; 64]).unwrap();
        flip_byte(&path, 10).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[10], 1 ^ 0x40);
        zero_tail(&path, 8).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 64);
        assert!(bytes[56..].iter().all(|&b| b == 0));
        truncate_to(&path, 16).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_removed() {
        let dir = tmp_dir("tmp");
        std::fs::write(dir.join("seg-00000.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("seg-00000.seg"), b"keep").unwrap();
        assert_eq!(remove_stale_tmp_files(&dir).unwrap(), 1);
        assert!(dir.join("seg-00000.seg").exists());
        assert!(!dir.join("seg-00000.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
