//! The store manifest: one small JSON file listing every sealed segment
//! with its footer metadata. The manifest is the store's source of truth —
//! a checkpoint references it instead of re-serializing collected data,
//! and a scan plans its work from it without opening a single segment.
//!
//! Since the crash-safety work the manifest also carries the *quarantine
//! list*: segments the doctor found damaged beyond provable repair, moved
//! out of `segments` (so no scan ever reads them) but kept on the books
//! with a reason code, so coverage accounting stays exact — a reader can
//! always say how many bundles are served and how many sit in quarantine.
//! Saves go through the durable write path (temp file + fsync + atomic
//! rename + directory fsync); a crash mid-save leaves either the old or
//! the new manifest, never a torn one.

use std::path::{Path, PathBuf};

use sandwich_attrib::ValidatorSpec;
use serde::{Deserialize, Serialize};

use crate::crash::{write_durable_with, CrashPlan};

/// Manifest-resident description of one sealed segment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name inside the store directory (e.g. `seg-00003.seg`).
    pub file: String,
    /// Bundle records in the segment.
    pub bundles: u64,
    /// Detail records in the segment.
    pub details: u64,
    /// Poll records in the segment.
    pub polls: u64,
    /// Lowest bundle slot (`u64::MAX` when the segment has no bundles).
    pub min_slot: u64,
    /// Highest bundle slot (0 when the segment has no bundles).
    pub max_slot: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 body checksum, hex-encoded.
    pub checksum: String,
}

/// A segment the doctor removed from service: its last-known metadata
/// plus the reason code explaining why it cannot be served.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedSegment {
    /// The segment's manifest entry at the time it was quarantined.
    pub meta: SegmentMeta,
    /// Machine-readable reason code (see `docs/RELIABILITY.md`):
    /// `missing_file`, `bad_magic`, `body_corrupt`, `count_mismatch`,
    /// `manifest_mismatch`, `reencode_unstable`.
    pub reason: String,
}

/// The manifest: an ordered list of sealed segments, plus the quarantine
/// list.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version.
    pub version: u32,
    /// Sealed segments in seal order.
    pub segments: Vec<SegmentMeta>,
    /// Segments pulled from service by the doctor. `None` only when
    /// loaded from a pre-quarantine manifest (reads as empty); saves
    /// always write the list.
    pub quarantined: Option<Vec<QuarantinedSegment>>,
    /// The validator set the recorded chain ran under — public chain
    /// data (seed and count fully determine identities, stakes, and the
    /// leader of every slot), which is what lets the index attribute each
    /// sandwich to its slot leader without any per-slot data on the wire.
    /// `None` when the store predates attribution (reads degrade to an
    /// unattributed index).
    pub validators: Option<ValidatorSpec>,
}

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

impl Manifest {
    /// A fresh, empty manifest.
    pub fn new() -> Self {
        Manifest {
            version: 1,
            segments: Vec::new(),
            quarantined: Some(Vec::new()),
            validators: None,
        }
    }

    /// Total bundle records across all sealed segments.
    pub fn total_bundles(&self) -> u64 {
        self.segments.iter().map(|s| s.bundles).sum()
    }

    /// Total bytes across all sealed segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Highest bundle slot across all sealed segments.
    pub fn max_slot(&self) -> Option<u64> {
        self.segments
            .iter()
            .filter(|s| s.bundles > 0)
            .map(|s| s.max_slot)
            .max()
    }

    /// The quarantine list (empty for pre-quarantine manifests).
    pub fn quarantined(&self) -> &[QuarantinedSegment] {
        self.quarantined.as_deref().unwrap_or(&[])
    }

    /// Total bundle records sitting in quarantine.
    pub fn total_quarantined_bundles(&self) -> u64 {
        self.quarantined().iter().map(|q| q.meta.bundles).sum()
    }

    /// Move the segment at `index` out of service with a reason code.
    pub fn quarantine(&mut self, index: usize, reason: impl Into<String>) -> QuarantinedSegment {
        let meta = self.segments.remove(index);
        let entry = QuarantinedSegment {
            meta,
            reason: reason.into(),
        };
        self.quarantined
            .get_or_insert_with(Vec::new)
            .push(entry.clone());
        entry
    }

    /// The index the next sealed segment file should use: one past the
    /// highest index present anywhere in the manifest — including the
    /// quarantine list, so a new segment never reuses the file name of a
    /// quarantined one.
    pub fn next_segment_index(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.file.as_str())
            .chain(self.quarantined().iter().map(|q| q.meta.file.as_str()))
            .filter_map(parse_segment_index)
            .map(|i| i + 1)
            .max()
            .unwrap_or(0)
    }

    /// Save durably (temp file + fsync + atomic rename + directory
    /// fsync) into `dir`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        self.save_with(dir, None)
    }

    /// [`Self::save`] with an optional crash plan threaded through the
    /// durable write (each chunk/fsync/rename is an enumerated crash
    /// step).
    pub fn save_with(&self, dir: &Path, plan: Option<&mut CrashPlan>) -> std::io::Result<()> {
        let bytes = serde_json::to_string(self)?.into_bytes();
        // Split the JSON into thirds so torn-manifest crash points land
        // inside the document, not only at its edges.
        let cuts = [bytes.len() / 3, 2 * bytes.len() / 3];
        write_durable_with(&dir.join(MANIFEST_FILE), &bytes, &cuts, plan)
    }

    /// Load from `dir`.
    pub fn load(dir: &Path) -> std::io::Result<Manifest> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Absolute path of one segment.
    pub fn segment_path(dir: &Path, meta: &SegmentMeta) -> PathBuf {
        dir.join(&meta.file)
    }
}

/// What changed between a previously indexed manifest snapshot and the
/// current one, expressed as indexes into the current lists. `None` from
/// [`Manifest::delta_from`] means the history is not append-only (a
/// covered segment was removed, quarantined, or un-quarantined) and an
/// incremental consumer must rebuild from scratch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ManifestDelta {
    /// Indexes into [`Manifest::segments`] of newly sealed segments.
    pub new_serving: Vec<usize>,
    /// Indexes into [`Manifest::quarantined`] of segments quarantined
    /// since the snapshot (and never covered while serving).
    pub new_quarantined: Vec<usize>,
}

impl ManifestDelta {
    /// `true` when nothing changed (the generation moved for another
    /// reason, or the caller diffed against itself).
    pub fn is_empty(&self) -> bool {
        self.new_serving.is_empty() && self.new_quarantined.is_empty()
    }

    /// Segments in the delta, serving plus quarantined.
    pub fn len(&self) -> usize {
        self.new_serving.len() + self.new_quarantined.len()
    }
}

impl Manifest {
    /// Diff this manifest against a previously covered snapshot, given as
    /// the file names the consumer already folded (`covered_serving` from
    /// the serving list, `covered_quarantined` from the quarantine list).
    ///
    /// Returns the strictly-new work when the history is append-only:
    /// every covered serving file is still serving and every covered
    /// quarantined file is still quarantined. Any other shape — a covered
    /// segment deleted, moved into quarantine, or resurrected — returns
    /// `None`, because folded aggregates cannot be subtracted.
    pub fn delta_from(
        &self,
        covered_serving: &[String],
        covered_quarantined: &[String],
    ) -> Option<ManifestDelta> {
        let serving: std::collections::BTreeSet<&str> =
            covered_serving.iter().map(String::as_str).collect();
        let quarantined: std::collections::BTreeSet<&str> =
            covered_quarantined.iter().map(String::as_str).collect();

        let current_serving: std::collections::BTreeSet<&str> =
            self.segments.iter().map(|s| s.file.as_str()).collect();
        let current_quarantined: std::collections::BTreeSet<&str> = self
            .quarantined()
            .iter()
            .map(|q| q.meta.file.as_str())
            .collect();
        if !serving.iter().all(|f| current_serving.contains(f))
            || !quarantined.iter().all(|f| current_quarantined.contains(f))
        {
            return None;
        }

        let mut delta = ManifestDelta::default();
        for (i, meta) in self.segments.iter().enumerate() {
            let file = meta.file.as_str();
            if quarantined.contains(file) {
                return None; // resurrected from quarantine: not foldable
            }
            if !serving.contains(file) {
                delta.new_serving.push(i);
            }
        }
        for (i, q) in self.quarantined().iter().enumerate() {
            let file = q.meta.file.as_str();
            if serving.contains(file) {
                return None; // covered while serving, now quarantined
            }
            if !quarantined.contains(file) {
                delta.new_quarantined.push(i);
            }
        }
        Some(delta)
    }
}

/// Cheap stat-based change detection on the manifest file, for daemon
/// reload loops: `changed()` is true the first time and whenever the
/// manifest's `(len, mtime)` differs from the last observation, so an
/// idle loop skips even the manifest parse. A same-byte rewrite (touch)
/// still reports changed — the caller's generation check makes that a
/// no-op without invalidating anything.
#[derive(Debug)]
pub struct SealWatcher {
    path: PathBuf,
    last: Option<(u64, std::time::SystemTime)>,
}

impl SealWatcher {
    /// Watch the manifest inside store directory `dir`.
    pub fn new(dir: &Path) -> SealWatcher {
        SealWatcher {
            path: dir.join(MANIFEST_FILE),
            last: None,
        }
    }

    /// Re-stat the manifest; `true` when it looks different from the last
    /// call (or on the first call, or when the stat fails — the caller's
    /// reload surfaces the real error).
    pub fn changed(&mut self) -> bool {
        let stat = std::fs::metadata(&self.path)
            .and_then(|m| Ok((m.len(), m.modified()?)))
            .ok();
        match stat {
            None => {
                self.last = None;
                true
            }
            Some(observed) => {
                let changed = self.last != Some(observed);
                self.last = Some(observed);
                changed
            }
        }
    }
}

/// Parse the numeric index out of a `seg-NNNNN.seg` file name.
pub(crate) fn parse_segment_index(name: &str) -> Option<usize> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique per-test directory: temp dirs keyed on pid alone collide
    /// when tests run in parallel within one process or when a dirty
    /// previous run left the directory behind.
    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swmanifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(file: &str, bundles: u64) -> SegmentMeta {
        SegmentMeta {
            file: file.into(),
            bundles,
            details: 6,
            polls: 3,
            min_slot: 10,
            max_slot: 99,
            bytes: 1234,
            checksum: format!("{:016x}", 0xdead_beef_u64),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut m = Manifest::new();
        m.segments.push(meta("seg-00000.seg", 42));
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_bundles(), 42);
        assert_eq!(back.max_slot(), Some(99));
        assert!(back.quarantined().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmp_dir("missing");
        assert!(Manifest::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_quarantine_manifest_still_loads() {
        let dir = tmp_dir("compat");
        // A manifest saved before the quarantine list existed.
        std::fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"version":1,"segments":[{"file":"seg-00000.seg","bundles":7,"details":0,"polls":0,"min_slot":1,"max_slot":9,"bytes":100,"checksum":"00000000deadbeef"}]}"#,
        )
        .unwrap();
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.total_bundles(), 7);
        assert!(m.quarantined().is_empty());
        assert_eq!(m.total_quarantined_bundles(), 0);
        assert_eq!(m.validators, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_attribution_manifest_still_loads() {
        let dir = tmp_dir("compat-attrib");
        // A manifest saved before the validator spec existed (but after
        // the quarantine list did).
        std::fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"version":1,"segments":[{"file":"seg-00000.seg","bundles":3,"details":0,"polls":0,"min_slot":1,"max_slot":9,"bytes":100,"checksum":"00000000deadbeef"}],"quarantined":[]}"#,
        )
        .unwrap();
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.total_bundles(), 3);
        assert_eq!(m.validators, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validator_spec_roundtrips_through_save() {
        let dir = tmp_dir("spec-roundtrip");
        let mut m = Manifest::new();
        m.validators = Some(ValidatorSpec::new(42, 24));
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back.validators, Some(ValidatorSpec::new(42, 24)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_moves_a_segment_off_the_serving_list() {
        let mut m = Manifest::new();
        m.segments.push(meta("seg-00000.seg", 10));
        m.segments.push(meta("seg-00001.seg", 20));
        let q = m.quarantine(0, "body_corrupt");
        assert_eq!(q.meta.file, "seg-00000.seg");
        assert_eq!(m.segments.len(), 1);
        assert_eq!(m.quarantined().len(), 1);
        assert_eq!(m.total_bundles(), 20);
        assert_eq!(m.total_quarantined_bundles(), 10);
        // The next seal must not reuse the quarantined segment's name.
        assert_eq!(m.next_segment_index(), 2);
    }

    #[test]
    fn next_index_is_zero_for_an_empty_manifest() {
        assert_eq!(Manifest::new().next_segment_index(), 0);
    }

    #[test]
    fn delta_lists_only_new_segments() {
        let mut m = Manifest::new();
        m.segments.push(meta("seg-00000.seg", 10));
        m.segments.push(meta("seg-00001.seg", 20));
        let covered = vec!["seg-00000.seg".to_string()];
        let delta = m.delta_from(&covered, &[]).unwrap();
        assert_eq!(delta.new_serving, vec![1]);
        assert!(delta.new_quarantined.is_empty());
        assert_eq!(delta.len(), 1);

        // Full coverage diffs to an empty delta.
        let all = vec!["seg-00000.seg".to_string(), "seg-00001.seg".to_string()];
        assert!(m.delta_from(&all, &[]).unwrap().is_empty());
    }

    #[test]
    fn delta_refuses_non_append_only_histories() {
        let mut m = Manifest::new();
        m.segments.push(meta("seg-00000.seg", 10));
        m.segments.push(meta("seg-00001.seg", 20));

        // A covered segment that vanished entirely.
        let gone = vec!["seg-00000.seg".to_string(), "seg-00009.seg".to_string()];
        assert_eq!(m.delta_from(&gone, &[]), None);

        // A covered serving segment moved into quarantine.
        let covered = vec!["seg-00000.seg".to_string(), "seg-00001.seg".to_string()];
        m.quarantine(0, "body_corrupt");
        assert_eq!(m.delta_from(&covered, &[]), None);

        // But a *new* quarantined segment (never covered) folds fine.
        let delta = m.delta_from(&["seg-00001.seg".to_string()], &[]).unwrap();
        assert!(delta.new_serving.is_empty());
        assert_eq!(delta.new_quarantined, vec![0]);

        // A covered quarantined segment resurrected to serving.
        let mut back = Manifest::new();
        back.segments.push(meta("seg-00000.seg", 10));
        assert_eq!(back.delta_from(&[], &["seg-00000.seg".to_string()]), None);
    }

    #[test]
    fn seal_watcher_reports_manifest_changes_once() {
        let dir = tmp_dir("watcher");
        let mut m = Manifest::new();
        m.segments.push(meta("seg-00000.seg", 1));
        m.save(&dir).unwrap();

        let mut watcher = SealWatcher::new(&dir);
        assert!(watcher.changed(), "first observation always fires");
        assert!(!watcher.changed(), "no change, no fire");

        // Growing the manifest fires exactly once.
        m.segments.push(meta("seg-00001.seg", 2));
        m.save(&dir).unwrap();
        assert!(watcher.changed());
        assert!(!watcher.changed());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
