//! The store manifest: one small JSON file listing every sealed segment
//! with its footer metadata. The manifest is the store's source of truth —
//! a checkpoint references it instead of re-serializing collected data,
//! and a scan plans its work from it without opening a single segment.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Manifest-resident description of one sealed segment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name inside the store directory (e.g. `seg-00003.seg`).
    pub file: String,
    /// Bundle records in the segment.
    pub bundles: u64,
    /// Detail records in the segment.
    pub details: u64,
    /// Poll records in the segment.
    pub polls: u64,
    /// Lowest bundle slot (`u64::MAX` when the segment has no bundles).
    pub min_slot: u64,
    /// Highest bundle slot (0 when the segment has no bundles).
    pub max_slot: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 body checksum, hex-encoded.
    pub checksum: String,
}

/// The manifest: an ordered list of sealed segments.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version.
    pub version: u32,
    /// Sealed segments in seal order.
    pub segments: Vec<SegmentMeta>,
}

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

impl Manifest {
    /// A fresh, empty manifest.
    pub fn new() -> Self {
        Manifest {
            version: 1,
            segments: Vec::new(),
        }
    }

    /// Total bundle records across all sealed segments.
    pub fn total_bundles(&self) -> u64 {
        self.segments.iter().map(|s| s.bundles).sum()
    }

    /// Total bytes across all sealed segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Highest bundle slot across all sealed segments.
    pub fn max_slot(&self) -> Option<u64> {
        self.segments
            .iter()
            .filter(|s| s.bundles > 0)
            .map(|s| s.max_slot)
            .max()
    }

    /// Save atomically (temp file + rename) into `dir`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let path = dir.join(MANIFEST_FILE);
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        std::fs::write(&tmp, serde_json::to_string(self)?)?;
        std::fs::rename(&tmp, &path)
    }

    /// Load from `dir`.
    pub fn load(dir: &Path) -> std::io::Result<Manifest> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Absolute path of one segment.
    pub fn segment_path(dir: &Path, meta: &SegmentMeta) -> PathBuf {
        dir.join(&meta.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("swmanifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = Manifest::new();
        m.segments.push(SegmentMeta {
            file: "seg-00000.seg".into(),
            bundles: 42,
            details: 6,
            polls: 3,
            min_slot: 10,
            max_slot: 99,
            bytes: 1234,
            checksum: format!("{:016x}", 0xdead_beef_u64),
        });
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_bundles(), 42);
        assert_eq!(back.max_slot(), Some(99));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = std::env::temp_dir().join("swmanifest-none");
        assert!(Manifest::load(&dir).is_err());
    }
}
