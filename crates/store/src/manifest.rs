//! The store manifest: one small JSON file listing every sealed segment
//! with its footer metadata. The manifest is the store's source of truth —
//! a checkpoint references it instead of re-serializing collected data,
//! and a scan plans its work from it without opening a single segment.
//!
//! Since the crash-safety work the manifest also carries the *quarantine
//! list*: segments the doctor found damaged beyond provable repair, moved
//! out of `segments` (so no scan ever reads them) but kept on the books
//! with a reason code, so coverage accounting stays exact — a reader can
//! always say how many bundles are served and how many sit in quarantine.
//! Saves go through the durable write path (temp file + fsync + atomic
//! rename + directory fsync); a crash mid-save leaves either the old or
//! the new manifest, never a torn one.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::crash::{write_durable_with, CrashPlan};

/// Manifest-resident description of one sealed segment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name inside the store directory (e.g. `seg-00003.seg`).
    pub file: String,
    /// Bundle records in the segment.
    pub bundles: u64,
    /// Detail records in the segment.
    pub details: u64,
    /// Poll records in the segment.
    pub polls: u64,
    /// Lowest bundle slot (`u64::MAX` when the segment has no bundles).
    pub min_slot: u64,
    /// Highest bundle slot (0 when the segment has no bundles).
    pub max_slot: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 body checksum, hex-encoded.
    pub checksum: String,
}

/// A segment the doctor removed from service: its last-known metadata
/// plus the reason code explaining why it cannot be served.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedSegment {
    /// The segment's manifest entry at the time it was quarantined.
    pub meta: SegmentMeta,
    /// Machine-readable reason code (see `docs/RELIABILITY.md`):
    /// `missing_file`, `bad_magic`, `body_corrupt`, `count_mismatch`,
    /// `manifest_mismatch`, `reencode_unstable`.
    pub reason: String,
}

/// The manifest: an ordered list of sealed segments, plus the quarantine
/// list.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version.
    pub version: u32,
    /// Sealed segments in seal order.
    pub segments: Vec<SegmentMeta>,
    /// Segments pulled from service by the doctor. `None` only when
    /// loaded from a pre-quarantine manifest (reads as empty); saves
    /// always write the list.
    pub quarantined: Option<Vec<QuarantinedSegment>>,
}

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

impl Manifest {
    /// A fresh, empty manifest.
    pub fn new() -> Self {
        Manifest {
            version: 1,
            segments: Vec::new(),
            quarantined: Some(Vec::new()),
        }
    }

    /// Total bundle records across all sealed segments.
    pub fn total_bundles(&self) -> u64 {
        self.segments.iter().map(|s| s.bundles).sum()
    }

    /// Total bytes across all sealed segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Highest bundle slot across all sealed segments.
    pub fn max_slot(&self) -> Option<u64> {
        self.segments
            .iter()
            .filter(|s| s.bundles > 0)
            .map(|s| s.max_slot)
            .max()
    }

    /// The quarantine list (empty for pre-quarantine manifests).
    pub fn quarantined(&self) -> &[QuarantinedSegment] {
        self.quarantined.as_deref().unwrap_or(&[])
    }

    /// Total bundle records sitting in quarantine.
    pub fn total_quarantined_bundles(&self) -> u64 {
        self.quarantined().iter().map(|q| q.meta.bundles).sum()
    }

    /// Move the segment at `index` out of service with a reason code.
    pub fn quarantine(&mut self, index: usize, reason: impl Into<String>) -> QuarantinedSegment {
        let meta = self.segments.remove(index);
        let entry = QuarantinedSegment {
            meta,
            reason: reason.into(),
        };
        self.quarantined
            .get_or_insert_with(Vec::new)
            .push(entry.clone());
        entry
    }

    /// The index the next sealed segment file should use: one past the
    /// highest index present anywhere in the manifest — including the
    /// quarantine list, so a new segment never reuses the file name of a
    /// quarantined one.
    pub fn next_segment_index(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.file.as_str())
            .chain(self.quarantined().iter().map(|q| q.meta.file.as_str()))
            .filter_map(parse_segment_index)
            .map(|i| i + 1)
            .max()
            .unwrap_or(0)
    }

    /// Save durably (temp file + fsync + atomic rename + directory
    /// fsync) into `dir`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        self.save_with(dir, None)
    }

    /// [`Self::save`] with an optional crash plan threaded through the
    /// durable write (each chunk/fsync/rename is an enumerated crash
    /// step).
    pub fn save_with(&self, dir: &Path, plan: Option<&mut CrashPlan>) -> std::io::Result<()> {
        let bytes = serde_json::to_string(self)?.into_bytes();
        // Split the JSON into thirds so torn-manifest crash points land
        // inside the document, not only at its edges.
        let cuts = [bytes.len() / 3, 2 * bytes.len() / 3];
        write_durable_with(&dir.join(MANIFEST_FILE), &bytes, &cuts, plan)
    }

    /// Load from `dir`.
    pub fn load(dir: &Path) -> std::io::Result<Manifest> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Absolute path of one segment.
    pub fn segment_path(dir: &Path, meta: &SegmentMeta) -> PathBuf {
        dir.join(&meta.file)
    }
}

/// Parse the numeric index out of a `seg-NNNNN.seg` file name.
pub(crate) fn parse_segment_index(name: &str) -> Option<usize> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique per-test directory: temp dirs keyed on pid alone collide
    /// when tests run in parallel within one process or when a dirty
    /// previous run left the directory behind.
    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swmanifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(file: &str, bundles: u64) -> SegmentMeta {
        SegmentMeta {
            file: file.into(),
            bundles,
            details: 6,
            polls: 3,
            min_slot: 10,
            max_slot: 99,
            bytes: 1234,
            checksum: format!("{:016x}", 0xdead_beef_u64),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut m = Manifest::new();
        m.segments.push(meta("seg-00000.seg", 42));
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_bundles(), 42);
        assert_eq!(back.max_slot(), Some(99));
        assert!(back.quarantined().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmp_dir("missing");
        assert!(Manifest::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_quarantine_manifest_still_loads() {
        let dir = tmp_dir("compat");
        // A manifest saved before the quarantine list existed.
        std::fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"version":1,"segments":[{"file":"seg-00000.seg","bundles":7,"details":0,"polls":0,"min_slot":1,"max_slot":9,"bytes":100,"checksum":"00000000deadbeef"}]}"#,
        )
        .unwrap();
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.total_bundles(), 7);
        assert!(m.quarantined().is_empty());
        assert_eq!(m.total_quarantined_bundles(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_moves_a_segment_off_the_serving_list() {
        let mut m = Manifest::new();
        m.segments.push(meta("seg-00000.seg", 10));
        m.segments.push(meta("seg-00001.seg", 20));
        let q = m.quarantine(0, "body_corrupt");
        assert_eq!(q.meta.file, "seg-00000.seg");
        assert_eq!(m.segments.len(), 1);
        assert_eq!(m.quarantined().len(), 1);
        assert_eq!(m.total_bundles(), 20);
        assert_eq!(m.total_quarantined_bundles(), 10);
        // The next seal must not reuse the quarantined segment's name.
        assert_eq!(m.next_segment_index(), 2);
    }

    #[test]
    fn next_index_is_zero_for_an_empty_manifest() {
        assert_eq!(Manifest::new().next_segment_index(), 0);
    }
}
