//! Zero-copy segment access: a memory-mapped segment image plus lazy
//! decoding driven by the columnar section.
//!
//! [`SegmentView::open`] maps the file, validates both checksums, and
//! locates the interning table and the columnar section — but decodes no
//! records. A scan then classifies every bundle from the columns alone
//! and decodes a record only when a pre-filter says the full detector
//! must run ([`SegmentView::bundle_record`] / [`SegmentView::detail`]).
//! The interning table is resolved in place: [`SegmentView::key_at`]
//! reads 32 bytes at a fixed stride instead of materializing a `Vec`.

use std::ops::Range;
use std::path::Path;

use sandwich_types::{Hash, Pubkey, Signature, Slot};

use crate::codec::{self, decode_body, decode_poll_section, CorruptSegment, SegmentData};
use crate::column::{decode_columns, Columns};
use crate::mmap::Mapped;
use crate::records::{CollectedDetail, PollRecord};
use crate::segment::{parse_segment, SegmentFooter};

/// A bundle record decoded on demand from a view — the fields the
/// candidate path needs (slot and tip come from the columns; the
/// timestamp is never reconstructed).
#[derive(Clone, Debug)]
pub struct ViewBundle {
    /// The bundle id (stored or derived).
    pub bundle_id: Hash,
    /// Transaction ids in bundle order.
    pub tx_ids: Vec<Signature>,
}

/// A sealed segment, memory-mapped and checksum-verified, ready for
/// lazy decoding.
pub struct SegmentView {
    map: Mapped,
    version: u8,
    footer: SegmentFooter,
    body: Range<usize>,
    columns: Option<Range<usize>>,
    key_count: u64,
    keys_at: usize,
}

impl SegmentView {
    /// Map and validate a segment file (either format version). Both the
    /// body and columnar checksums are verified here, so every scan of a
    /// view re-checks segment integrity end to end.
    pub fn open(path: &Path) -> std::io::Result<SegmentView> {
        let map = Mapped::open(path)?;
        let corrupt =
            |e: CorruptSegment| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
        let parsed = parse_segment(&map).map_err(corrupt)?;
        let body = &map[parsed.body.clone()];
        let mut pos = 0usize;
        let key_count = crate::varint::get_u64(body, &mut pos).map_err(|e| corrupt(e.into()))?;
        if key_count > body.len() as u64 / 32 {
            return Err(corrupt(CorruptSegment(format!(
                "pubkey table count {key_count} exceeds body"
            ))));
        }
        let keys_at = pos;
        Ok(SegmentView {
            version: parsed.version,
            footer: parsed.footer,
            body: parsed.body,
            columns: parsed.columns,
            key_count,
            keys_at,
            map,
        })
    }

    /// The segment's format version (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The validated footer.
    pub fn footer(&self) -> &SegmentFooter {
        &self.footer
    }

    /// Whether the image is an actual file mapping (false = heap fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Whether the segment carries a columnar fast-path section.
    pub fn has_columns(&self) -> bool {
        self.columns.is_some()
    }

    /// The encoded body bytes.
    pub fn body(&self) -> &[u8] {
        &self.map[self.body.clone()]
    }

    /// Decode the columnar section into `cols`, reusing its buffers.
    /// Errors when the segment has none (check [`Self::has_columns`]).
    pub fn read_columns(&self, cols: &mut Columns) -> Result<(), CorruptSegment> {
        let range = self
            .columns
            .clone()
            .ok_or_else(|| CorruptSegment("v1 segment has no columnar section".into()))?;
        decode_columns(&self.map[range], cols)
    }

    /// Pubkey `i` of the interning table, read in place.
    pub fn key_at(&self, i: u64) -> Result<Pubkey, CorruptSegment> {
        if i >= self.key_count {
            return Err(CorruptSegment(format!("pubkey index {i} out of table")));
        }
        let at = self.keys_at + 32 * i as usize;
        let mut arr = [0u8; 32];
        arr.copy_from_slice(&self.body()[at..at + 32]);
        Ok(Pubkey(arr))
    }

    /// Decode bundle `i` on demand (id and tx ids only — slot and tip are
    /// already in the columns).
    pub fn bundle_record(&self, cols: &Columns, i: usize) -> Result<ViewBundle, CorruptSegment> {
        let body = self.body();
        let mut pos = offset_at(&cols.bundle_off, i, body.len())?;
        let brief = codec::decode_bundle_brief(body, &mut pos)?;
        let mut tx_ids = Vec::with_capacity(brief.tx_count);
        for p in 0..brief.tx_count {
            tx_ids.push(brief.tx(body, p).expect("p < tx_count, bounds checked"));
        }
        Ok(ViewBundle {
            bundle_id: brief.bundle_id(body)?,
            tx_ids,
        })
    }

    /// Decode detail `i` on demand. Shares the record decoder with the
    /// sequential path; the delta context comes from the columns instead
    /// of a left-to-right walk.
    pub fn detail(&self, cols: &Columns, i: usize) -> Result<CollectedDetail, CorruptSegment> {
        let body = self.body();
        let mut pos = offset_at(&cols.detail_off, i, body.len())?;
        let prev_slot = if i > 0 {
            cols.detail_slot[i - 1] as i64
        } else {
            0
        };
        let briefs = ViewBriefs { body, cols };
        let key_at = |k: u64| self.key_at(k);
        codec::decode_detail_record(body, &mut pos, prev_slot, &briefs, &key_at)
    }

    /// Decode only the transaction meta of detail `i` — what the detector
    /// consumes. Skips resolving the detail's bundle id, which for derived
    /// ids costs a hash per record.
    pub fn detail_meta(
        &self,
        cols: &Columns,
        i: usize,
    ) -> Result<sandwich_ledger::TransactionMeta, CorruptSegment> {
        let body = self.body();
        let mut pos = offset_at(&cols.detail_off, i, body.len())?;
        let prev_slot = if i > 0 {
            cols.detail_slot[i - 1] as i64
        } else {
            0
        };
        let briefs = ViewBriefs { body, cols };
        let key_at = |k: u64| self.key_at(k);
        codec::decode_detail_meta(body, &mut pos, prev_slot, &briefs, &key_at)
    }

    /// Decode the poll section (it sits at a known offset, after the last
    /// detail record).
    pub fn polls(&self, cols: &Columns) -> Result<Vec<PollRecord>, CorruptSegment> {
        let body = self.body();
        let mut pos = offset_at(&[cols.polls_offset], 0, body.len())?;
        let polls = decode_poll_section(body, &mut pos)?;
        if pos != body.len() {
            return Err(CorruptSegment(format!(
                "{} trailing bytes after records",
                body.len() - pos
            )));
        }
        Ok(polls)
    }

    /// Fully decode the segment (the materializing path — used when the
    /// segment has no columns or the scan needs every record anyway).
    pub fn decode_all(&self) -> Result<SegmentData, CorruptSegment> {
        let data = decode_body(self.body())?;
        if data.bundles.len() as u32 != self.footer.bundles
            || data.details.len() as u32 != self.footer.details
            || data.polls.len() as u32 != self.footer.polls
        {
            return Err(CorruptSegment("record counts disagree with footer".into()));
        }
        Ok(data)
    }
}

fn offset_at(offsets: &[u64], i: usize, body_len: usize) -> Result<usize, CorruptSegment> {
    let off = *offsets
        .get(i)
        .ok_or_else(|| CorruptSegment(format!("record index {i} out of columns")))?;
    if off >= body_len as u64 {
        return Err(CorruptSegment(format!("record offset {off} out of body")));
    }
    Ok(off as usize)
}

/// Bundle lookups for the shared detail decoder, resolved lazily from the
/// columns plus an in-place parse of the referenced bundle record.
struct ViewBriefs<'a> {
    body: &'a [u8],
    cols: &'a Columns,
}

impl ViewBriefs<'_> {
    fn brief_at(&self, index: usize) -> Option<codec::BundleBrief> {
        let mut pos = offset_at(&self.cols.bundle_off, index, self.body.len()).ok()?;
        codec::decode_bundle_brief(self.body, &mut pos).ok()
    }
}

impl codec::BundleBriefs for ViewBriefs<'_> {
    fn brief(&self, index: usize) -> Option<(Slot, usize)> {
        let brief = self.brief_at(index)?;
        Some((Slot(*self.cols.slot.get(index)?), brief.tx_count))
    }

    fn id(&self, index: usize) -> Option<Hash> {
        self.brief_at(index)?.bundle_id(self.body).ok()
    }

    fn tx_at(&self, index: usize, p: usize) -> Option<Signature> {
        self.brief_at(index)?.tx(self.body, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::CollectedBundle;
    use crate::segment::{encode_segment, encode_segment_v1, write_segment_file};
    use crate::store::StoreWriter;
    use sandwich_ledger::{SolDelta, TransactionMeta};
    use sandwich_types::{Keypair, LamportDelta, Lamports};

    fn sample() -> SegmentData {
        let kp = Keypair::from_label("view");
        let tx_ids: Vec<_> = (0..3u64).map(|i| kp.sign(&i.to_le_bytes())).collect();
        let bundle_id = sandwich_jito::bundle_id_of(&tx_ids);
        SegmentData {
            bundles: vec![
                CollectedBundle {
                    bundle_id,
                    slot: Slot(100),
                    timestamp_ms: 40_000,
                    tip: Lamports(5_000),
                    tx_ids: tx_ids.clone(),
                },
                CollectedBundle {
                    bundle_id: Hash::digest(b"v2"),
                    slot: Slot(110),
                    timestamp_ms: 44_000,
                    tip: Lamports(80_000),
                    tx_ids: vec![kp.sign(b"solo")],
                },
            ],
            details: vec![CollectedDetail {
                bundle_id,
                slot: Slot(100),
                meta: TransactionMeta {
                    tx_id: tx_ids[1],
                    signer: kp.pubkey(),
                    fee: Lamports(5_000),
                    priority_fee: Lamports::ZERO,
                    success: true,
                    error: None,
                    sol_deltas: vec![SolDelta {
                        account: kp.pubkey(),
                        delta: LamportDelta(-9_000),
                    }],
                    token_deltas: vec![],
                },
            }],
            polls: vec![PollRecord {
                day: 0,
                fetched: 2,
                new: 2,
                overlapped_previous: false,
            }],
        }
    }

    fn write_tmp(tag: &str, image: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("swview-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-00000.seg");
        write_segment_file(&path, image).unwrap();
        path
    }

    #[test]
    fn lazy_access_equals_full_decode() {
        let data = sample();
        let (image, _) = encode_segment(&data);
        let path = write_tmp("lazy", &image);
        let view = SegmentView::open(&path).unwrap();
        assert!(view.has_columns());
        assert_eq!(view.version(), crate::segment::FORMAT_VERSION);

        let mut cols = Columns::default();
        view.read_columns(&mut cols).unwrap();
        assert_eq!(cols.slot, vec![100, 110]);
        assert_eq!(cols.tip, vec![5_000, 80_000]);
        assert_eq!(cols.tx_count, vec![3, 1]);

        for (i, b) in data.bundles.iter().enumerate() {
            let v = view.bundle_record(&cols, i).unwrap();
            assert_eq!(v.bundle_id, b.bundle_id);
            assert_eq!(v.tx_ids, b.tx_ids);
        }
        for (i, d) in data.details.iter().enumerate() {
            assert_eq!(&view.detail(&cols, i).unwrap(), d);
        }
        assert_eq!(view.polls(&cols).unwrap(), data.polls);
        assert_eq!(view.decode_all().unwrap(), data);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn v1_segment_opens_without_columns() {
        let data = sample();
        let (image, _) = encode_segment_v1(&data);
        let path = write_tmp("v1", &image);
        let view = SegmentView::open(&path).unwrap();
        assert_eq!(view.version(), 1);
        assert!(!view.has_columns());
        let mut cols = Columns::default();
        assert!(view.read_columns(&mut cols).is_err());
        assert_eq!(view.decode_all().unwrap(), data);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn store_open_view_checks_the_manifest() {
        let dir = std::env::temp_dir().join(format!("swview-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::create(&dir).unwrap();
        let data = sample();
        w.seal_segment(
            data.bundles.clone(),
            data.details.clone(),
            data.polls.clone(),
        )
        .unwrap();
        let store = w.into_reader();
        let view = store.open_view(0).unwrap();
        assert_eq!(view.footer().bundles, 2);
        assert!(store.open_view(1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interned_keys_resolve_in_place() {
        let data = sample();
        let (image, _) = encode_segment(&data);
        let path = write_tmp("keys", &image);
        let view = SegmentView::open(&path).unwrap();
        assert_eq!(
            view.key_at(0).unwrap(),
            Keypair::from_label("view").pubkey()
        );
        assert!(view.key_at(99).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
