//! Segment rebalance/compaction: merge runs of small segments, split
//! oversized ones, and swap the manifest atomically.
//!
//! A long-running collector seals whatever its flush cadence produced —
//! trickle periods leave confetti segments (each one is a scan unit and an
//! open/verify round-trip), hot slot ranges leave monsters that serialize
//! a whole worker. Rebalancing rewrites both shapes into segments between
//! `min_bundles` and `max_bundles` while preserving the record set
//! *exactly*: every bundle, detail, and poll survives with the same
//! canonical in-segment ordering the sealer produces, so any index built
//! before and after the rebalance answers every query identically (only
//! the manifest `generation` moves).
//!
//! Crash ordering mirrors a seal: new segment files are written durably
//! first (unreferenced until the swap — a crash strands files a later
//! rebalance or seal simply overwrites, never corrupts), then the
//! manifest swap commits through the durable-write path, then the
//! replaced files are deleted best-effort. The operation is safe under a
//! live reader: an open `BundleStore` keeps answering from the old
//! manifest snapshot and old segment files it has already opened; a
//! serving daemon picks the new generation up on its next reload.

use std::collections::HashMap;
use std::path::Path;

use crate::codec::SegmentData;
use crate::manifest::{Manifest, SegmentMeta};
use crate::segment::{encode_segment, write_segment_file_with};
use crate::store::{segment_file_name, BundleStore};

/// Size targets for one rebalance pass.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Segments with fewer bundles than this are merge candidates.
    pub min_bundles: u64,
    /// No produced segment exceeds this many bundles; segments above it
    /// are split.
    pub max_bundles: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            min_bundles: 10_000,
            max_bundles: 200_000,
        }
    }
}

/// What one rebalance pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Merge operations performed (each folds ≥ 2 segments into one).
    pub merges: usize,
    /// Split operations performed (each fans 1 segment into ≥ 2).
    pub splits: usize,
    /// Serving segments before the pass.
    pub segments_before: usize,
    /// Serving segments after the pass.
    pub segments_after: usize,
    /// Total bundles across serving segments (unchanged by the pass).
    pub bundles: u64,
    /// Bytes of new segment files written.
    pub bytes_written: u64,
}

impl RebalanceReport {
    /// Whether the pass rewrote anything at all.
    pub fn changed(&self) -> bool {
        self.merges > 0 || self.splits > 0
    }
}

/// One planned unit of work over the old manifest.
enum Op {
    /// Carry the segment at this index through untouched.
    Keep(usize),
    /// Fold these consecutive indices into one new segment.
    Merge(Vec<usize>),
    /// Fan the segment at this index into `max_bundles`-sized chunks.
    Split(usize),
}

/// Plan merge runs and splits over the serving list in manifest order.
fn plan(segments: &[SegmentMeta], config: &RebalanceConfig) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut run: Vec<usize> = Vec::new();
    let mut run_bundles = 0u64;
    let flush = |run: &mut Vec<usize>, run_bundles: &mut u64, ops: &mut Vec<Op>| {
        if run.len() >= 2 {
            ops.push(Op::Merge(std::mem::take(run)));
        } else {
            ops.extend(run.drain(..).map(Op::Keep));
        }
        *run_bundles = 0;
    };
    for (i, meta) in segments.iter().enumerate() {
        if meta.bundles < config.min_bundles {
            if run_bundles + meta.bundles > config.max_bundles {
                flush(&mut run, &mut run_bundles, &mut ops);
            }
            run_bundles += meta.bundles;
            run.push(i);
            continue;
        }
        flush(&mut run, &mut run_bundles, &mut ops);
        if meta.bundles > config.max_bundles {
            ops.push(Op::Split(i));
        } else {
            ops.push(Op::Keep(i));
        }
    }
    flush(&mut run, &mut run_bundles, &mut ops);
    ops
}

/// Canonicalize, encode, durably write, and describe one new segment.
fn seal_new(
    dir: &Path,
    next_index: &mut usize,
    mut data: SegmentData,
) -> std::io::Result<(SegmentMeta, u64)> {
    data.bundles.sort_by_key(|b| (b.slot, b.bundle_id.0));
    data.details.sort_by_key(|d| (d.slot, d.meta.tx_id.0));
    let (image, footer) = encode_segment(&data);
    let file = segment_file_name(*next_index);
    *next_index += 1;
    write_segment_file_with(&dir.join(&file), &image, None)?;
    let bytes = image.len() as u64;
    Ok((
        SegmentMeta {
            file,
            bundles: footer.bundles as u64,
            details: footer.details as u64,
            polls: footer.polls as u64,
            min_slot: footer.min_slot,
            max_slot: footer.max_slot,
            bytes,
            checksum: format!("{:016x}", footer.checksum),
        },
        bytes,
    ))
}

/// Split one decoded segment into chunks of at most `max_bundles`
/// bundles. Details follow the bundle that carries their transaction;
/// details whose transaction matches no bundle — and every poll — land in
/// the first chunk, so nothing is dropped.
fn split_chunks(data: SegmentData, max_bundles: u64) -> Vec<SegmentData> {
    let per = max_bundles.max(1) as usize;
    let chunks = data.bundles.len().div_ceil(per).max(1);
    let mut route = HashMap::new();
    let mut out: Vec<SegmentData> = (0..chunks).map(|_| SegmentData::default()).collect();
    for (i, bundle) in data.bundles.into_iter().enumerate() {
        let chunk = i / per;
        for tx in &bundle.tx_ids {
            route.insert(tx.0, chunk);
        }
        out[chunk].bundles.push(bundle);
    }
    for detail in data.details {
        let chunk = route.get(&detail.meta.tx_id.0).copied().unwrap_or(0);
        out[chunk].details.push(detail);
    }
    out[0].polls = data.polls;
    out
}

/// Run one rebalance pass over the store at `dir`. Returns without
/// touching disk when the plan is all `Keep`s. See the module docs for
/// the crash-ordering contract.
pub fn rebalance(dir: &Path, config: &RebalanceConfig) -> std::io::Result<RebalanceReport> {
    if config.min_bundles > config.max_bundles {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "min_bundles {} exceeds max_bundles {}",
                config.min_bundles, config.max_bundles
            ),
        ));
    }
    let store = BundleStore::open(dir)?;
    let old = store.manifest().clone();
    let ops = plan(&old.segments, config);

    let mut report = RebalanceReport {
        segments_before: old.segments.len(),
        bundles: old.total_bundles(),
        ..RebalanceReport::default()
    };
    if !ops.iter().any(|op| !matches!(op, Op::Keep(_))) {
        report.segments_after = report.segments_before;
        return Ok(report);
    }

    let mut next_index = old.next_segment_index();
    let mut new_segments: Vec<SegmentMeta> = Vec::new();
    let mut replaced: Vec<String> = Vec::new();
    for op in ops {
        match op {
            Op::Keep(i) => new_segments.push(old.segments[i].clone()),
            Op::Merge(indices) => {
                let mut data = SegmentData::default();
                for &i in &indices {
                    let part = store.read_segment(i)?;
                    data.bundles.extend(part.bundles);
                    data.details.extend(part.details);
                    data.polls.extend(part.polls);
                    replaced.push(old.segments[i].file.clone());
                }
                let (meta, bytes) = seal_new(dir, &mut next_index, data)?;
                report.bytes_written += bytes;
                report.merges += 1;
                new_segments.push(meta);
            }
            Op::Split(i) => {
                let data = store.read_segment(i)?;
                replaced.push(old.segments[i].file.clone());
                for chunk in split_chunks(data, config.max_bundles) {
                    let (meta, bytes) = seal_new(dir, &mut next_index, chunk)?;
                    report.bytes_written += bytes;
                    new_segments.push(meta);
                }
                report.splits += 1;
            }
        }
    }

    // The commit point: one durable manifest swap.
    let manifest = Manifest {
        version: old.version,
        segments: new_segments,
        quarantined: Some(old.quarantined().to_vec()),
        validators: old.validators,
    };
    manifest.save(dir)?;
    report.segments_after = manifest.segments.len();

    // Old files are garbage now; deleting them is best-effort (a survivor
    // only wastes disk — nothing references it).
    for file in replaced {
        let _ = std::fs::remove_file(dir.join(file));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CollectedBundle, CollectedDetail, PollRecord};
    use crate::store::StoreWriter;
    use sandwich_ledger::{SolDelta, TransactionMeta};
    use sandwich_types::{Hash, Keypair, LamportDelta, Lamports, Slot};
    use std::path::PathBuf;

    fn bundle(seed: u64, slot: u64) -> CollectedBundle {
        let kp = Keypair::from_label("rebal");
        CollectedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            timestamp_ms: slot * 400,
            tip: Lamports(10_000 + seed),
            tx_ids: vec![kp.sign(&seed.to_le_bytes())],
        }
    }

    fn detail_for(b: &CollectedBundle) -> CollectedDetail {
        let kp = Keypair::from_label("rebal");
        CollectedDetail {
            bundle_id: b.bundle_id,
            slot: b.slot,
            meta: TransactionMeta {
                tx_id: b.tx_ids[0],
                signer: kp.pubkey(),
                fee: Lamports(5_000),
                priority_fee: Lamports::ZERO,
                success: true,
                error: None,
                sol_deltas: vec![SolDelta {
                    account: kp.pubkey(),
                    delta: LamportDelta(-9_000),
                }],
                token_deltas: vec![],
            },
        }
    }

    fn poll() -> PollRecord {
        PollRecord {
            day: 0,
            fetched: 1,
            new: 1,
            overlapped_previous: true,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swrebal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Every record in the store, as a canonical sorted list that ignores
    /// segmentation entirely.
    fn flatten(dir: &Path) -> (Vec<(u64, [u8; 32])>, usize, usize) {
        let store = BundleStore::open(dir).unwrap();
        let mut bundles = Vec::new();
        let mut details = 0;
        let mut polls = 0;
        for i in 0..store.segments().len() {
            let data = store.read_segment(i).unwrap();
            bundles.extend(data.bundles.iter().map(|b| (b.slot.0, b.bundle_id.0)));
            details += data.details.len();
            polls += data.polls.len();
        }
        bundles.sort();
        (bundles, details, polls)
    }

    #[test]
    fn merges_a_run_of_confetti_segments() {
        let dir = tmp_dir("merge");
        let mut w = StoreWriter::create(&dir).unwrap();
        for seg in 0..4u64 {
            let b = bundle(seg, 100 + seg * 10);
            let d = detail_for(&b);
            w.seal_segment(vec![b], vec![d], vec![poll()]).unwrap();
        }
        let before = flatten(&dir);

        let report = rebalance(
            &dir,
            &RebalanceConfig {
                min_bundles: 10,
                max_bundles: 100,
            },
        )
        .unwrap();
        assert_eq!(report.merges, 1);
        assert_eq!(report.splits, 0);
        assert_eq!(report.segments_before, 4);
        assert_eq!(report.segments_after, 1);
        assert!(report.changed());

        let store = BundleStore::open(&dir).unwrap();
        assert_eq!(store.segments().len(), 1);
        assert_eq!(store.segments()[0].file, "seg-00004.seg");
        assert_eq!(flatten(&dir), before, "record set preserved exactly");
        for seg in 0..4 {
            assert!(!dir.join(segment_file_name(seg)).exists(), "old file gone");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn splits_an_oversized_segment_and_routes_details() {
        let dir = tmp_dir("split");
        let mut w = StoreWriter::create(&dir).unwrap();
        let bundles: Vec<CollectedBundle> = (0..10).map(|i| bundle(i, 50 + i)).collect();
        let details: Vec<CollectedDetail> = bundles.iter().map(detail_for).collect();
        w.seal_segment(bundles, details, vec![poll()]).unwrap();
        let before = flatten(&dir);

        let report = rebalance(
            &dir,
            &RebalanceConfig {
                min_bundles: 1,
                max_bundles: 4,
            },
        )
        .unwrap();
        assert_eq!(report.splits, 1);
        assert_eq!(report.segments_after, 3, "10 bundles / max 4 = 3 chunks");

        let store = BundleStore::open(&dir).unwrap();
        for i in 0..store.segments().len() {
            let data = store.read_segment(i).unwrap();
            assert!(data.bundles.len() <= 4);
            // Each detail rides with its bundle's chunk.
            for d in &data.details {
                assert!(
                    data.bundles.iter().any(|b| b.tx_ids[0] == d.meta.tx_id),
                    "detail stranded away from its bundle"
                );
            }
        }
        assert_eq!(flatten(&dir), before, "record set preserved exactly");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn well_sized_store_is_untouched() {
        let dir = tmp_dir("noop");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.seal_segment((0..5).map(|i| bundle(i, 10 + i)).collect(), vec![], vec![])
            .unwrap();
        let manifest_before = std::fs::read(dir.join(crate::manifest::MANIFEST_FILE)).unwrap();
        let report = rebalance(
            &dir,
            &RebalanceConfig {
                min_bundles: 2,
                max_bundles: 100,
            },
        )
        .unwrap();
        assert!(!report.changed());
        assert_eq!(
            std::fs::read(dir.join(crate::manifest::MANIFEST_FILE)).unwrap(),
            manifest_before,
            "no-op pass does not rewrite the manifest"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_inverted_bounds() {
        let dir = tmp_dir("bounds");
        StoreWriter::create(&dir).unwrap();
        let err = rebalance(
            &dir,
            &RebalanceConfig {
                min_bundles: 100,
                max_bundles: 10,
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
