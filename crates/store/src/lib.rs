//! `sandwich-store` — the segmented binary bundle store and the parallel
//! scan executor underneath the analysis pipeline.
//!
//! The paper's measurement collects ~14.8M bundles/day for four months and
//! then runs the full analysis over the corpus. That only works when the
//! scan layer is a storage-aware batch engine rather than "one `Vec`, one
//! thread". This crate provides the storage half and the execution half:
//!
//! * [`records`] — the collected-record types (bundles, details, polls);
//! * [`varint`] / [`codec`] — a compact binary encoding: delta+varint
//!   slots and timestamps, interned pubkeys, zigzagged balance deltas;
//! * [`segment`] — sealed segment files with a checksummed footer carrying
//!   the slot range and record counts;
//! * [`manifest`] — the JSON manifest listing every sealed segment, the
//!   handle checkpoints reference instead of re-serializing data;
//! * [`store`] — [`StoreWriter`] (append/seal) and [`BundleStore`] (read);
//! * [`scan`] — [`parallel_map`], the work-stealing executor whose
//!   unit-ordered results make parallel reductions deterministic;
//! * [`crash`] — the durable-write primitive (temp file + fsync + atomic
//!   rename + directory fsync) and the deterministic [`CrashPlan`]
//!   injection harness over its enumerated steps;
//! * [`doctor`] — offline fsck: verify every checksum, repair what is
//!   provably recoverable, quarantine the rest with reason codes;
//! * [`rebalance`] — compaction: merge runs of small segments, split
//!   oversized ones, and swap the manifest atomically, preserving the
//!   record set exactly (safe under a live reader).
//!
//! The crate is std-only (plus the workspace serde shim for the manifest);
//! analysis semantics live in `sandwich-core`, which maps its partial
//! reports over segments through [`parallel_map`].

#![warn(missing_docs)]

pub mod codec;
pub mod column;
pub mod crash;
pub mod doctor;
pub mod manifest;
pub mod mmap;
pub mod rebalance;
pub mod records;
pub mod scan;
pub mod segment;
pub mod store;
pub mod varint;
pub mod view;

pub use codec::{CorruptSegment, SegmentData};
pub use column::{Columns, LinkedColumns, META_C1, META_C2, META_LINKED, META_TXC_MASK};
pub use crash::{is_injected_crash, CrashPlan};
pub use doctor::{DoctorReport, SegmentCheckReport, SegmentHealth};
pub use manifest::{
    Manifest, ManifestDelta, QuarantinedSegment, SealWatcher, SegmentMeta, MANIFEST_FILE,
};
pub use mmap::Mapped;
pub use rebalance::{rebalance, RebalanceConfig, RebalanceReport};
pub use records::{CollectedBundle, CollectedDetail, PollRecord};
pub use sandwich_attrib::ValidatorSpec;
pub use scan::{parallel_map, WorkerStats};
pub use segment::{fnv1a64, SegmentFooter, FORMAT_VERSION, SEGMENT_MAGIC, SEGMENT_MAGIC_V1};
pub use store::{BundleStore, StoreWriter};
pub use view::{SegmentView, ViewBundle};
