//! Segment files: `header magic · encoded body · columnar section · fixed
//! footer`.
//!
//! The footer carries the body checksum, the slot range, the record
//! counts, and the section lengths, so a reader can validate a segment —
//! and a manifest can describe it — without decoding a single record.
//! Segments are written whole at seal time through the durable write
//! path (temp file + fsync + atomic rename + directory fsync, see
//! [`crate::crash`]), so a crash never leaves a half-written segment
//! under its final name: a segment either exists and verifies, or it
//! does not exist.
//!
//! Two format versions are readable (see `docs/FORMAT.md` for the
//! normative spec):
//!
//! * **v1** (`SWSEG01` / `SWEND01`): magic, body, 52-byte footer.
//! * **v2** (`SWSEG02` / `SWEND02`): adds the columnar fast-path section
//!   ([`crate::column`]) between body and footer, and extends the footer
//!   with the section's length and its own FNV checksum (68 bytes). The
//!   body encoding is byte-identical to v1.
//!
//! New segments are always written as v2; v1 segments decode and scan
//! exactly as before (they simply have no fast path).

use std::ops::Range;
use std::path::Path;

use crate::codec::{
    decode_body, encode_body, encode_body_with_layout, CorruptSegment, SegmentData,
};
use crate::column::build_columns;
use crate::crash::{write_durable_with, CrashPlan};

/// The current segment format version (the digit baked into the magics).
pub const FORMAT_VERSION: u8 = 2;

/// Leading file magic of the current version.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SWSEG02\n";
/// Trailing file magic of the current version.
pub(crate) const FOOTER_MAGIC: &[u8; 8] = b"SWEND02\n";
/// Leading file magic of the pre-columnar format.
pub const SEGMENT_MAGIC_V1: &[u8; 8] = b"SWSEG01\n";
/// Trailing file magic of the pre-columnar format.
pub(crate) const FOOTER_MAGIC_V1: &[u8; 8] = b"SWEND01\n";

/// v1 footer: checksum + min/max slot + 3 counts + body len + magic.
pub(crate) const FOOTER_LEN_V1: usize = 8 + 8 + 8 + 4 + 4 + 4 + 8 + 8;
/// v2 footer: v1 fields + columnar length + columnar checksum.
pub(crate) const FOOTER_LEN: usize = FOOTER_LEN_V1 + 8 + 8;

/// FNV-1a 64-bit checksum — cheap, dependency-free, and plenty to catch
/// torn writes and bit rot (this is an integrity check, not a MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The footer metadata of a sealed segment (also mirrored in the
/// manifest). For v1 segments the columnar fields read as zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentFooter {
    /// FNV-1a 64 checksum of the encoded body.
    pub checksum: u64,
    /// Lowest bundle slot in the segment (`u64::MAX` when bundle-free).
    pub min_slot: u64,
    /// Highest bundle slot in the segment (0 when bundle-free).
    pub max_slot: u64,
    /// Bundle records.
    pub bundles: u32,
    /// Detail records.
    pub details: u32,
    /// Poll records.
    pub polls: u32,
    /// Encoded body length in bytes.
    pub body_len: u64,
    /// Columnar section length in bytes (0 in a v1 segment).
    pub col_len: u64,
    /// FNV-1a 64 checksum of the columnar section (0 in a v1 segment).
    pub col_checksum: u64,
}

impl SegmentFooter {
    fn to_bytes(self) -> [u8; FOOTER_LEN] {
        let mut out = [0u8; FOOTER_LEN];
        out[0..8].copy_from_slice(&self.checksum.to_le_bytes());
        out[8..16].copy_from_slice(&self.min_slot.to_le_bytes());
        out[16..24].copy_from_slice(&self.max_slot.to_le_bytes());
        out[24..28].copy_from_slice(&self.bundles.to_le_bytes());
        out[28..32].copy_from_slice(&self.details.to_le_bytes());
        out[32..36].copy_from_slice(&self.polls.to_le_bytes());
        out[36..44].copy_from_slice(&self.body_len.to_le_bytes());
        out[44..52].copy_from_slice(&self.col_len.to_le_bytes());
        out[52..60].copy_from_slice(&self.col_checksum.to_le_bytes());
        out[60..68].copy_from_slice(FOOTER_MAGIC);
        out
    }

    fn to_bytes_v1(self) -> [u8; FOOTER_LEN_V1] {
        let mut out = [0u8; FOOTER_LEN_V1];
        out[0..8].copy_from_slice(&self.checksum.to_le_bytes());
        out[8..16].copy_from_slice(&self.min_slot.to_le_bytes());
        out[16..24].copy_from_slice(&self.max_slot.to_le_bytes());
        out[24..28].copy_from_slice(&self.bundles.to_le_bytes());
        out[28..32].copy_from_slice(&self.details.to_le_bytes());
        out[32..36].copy_from_slice(&self.polls.to_le_bytes());
        out[36..44].copy_from_slice(&self.body_len.to_le_bytes());
        out[44..52].copy_from_slice(FOOTER_MAGIC_V1);
        out
    }

    pub(crate) fn from_bytes(b: &[u8]) -> Result<Self, CorruptSegment> {
        let u64_at = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(b[i..i + 4].try_into().unwrap());
        let (col_len, col_checksum) = match b.len() {
            FOOTER_LEN if &b[60..68] == FOOTER_MAGIC => (u64_at(44), u64_at(52)),
            FOOTER_LEN_V1 if &b[44..52] == FOOTER_MAGIC_V1 => (0, 0),
            _ => return Err(CorruptSegment("bad footer magic".into())),
        };
        Ok(SegmentFooter {
            checksum: u64_at(0),
            min_slot: u64_at(8),
            max_slot: u64_at(16),
            bundles: u32_at(24),
            details: u32_at(28),
            polls: u32_at(32),
            body_len: u64_at(36),
            col_len,
            col_checksum,
        })
    }
}

/// A validated segment image carved into its sections: byte ranges into
/// the image for the body and (in v2) the columnar section.
#[derive(Clone, Debug)]
pub struct ParsedSegment {
    /// Format version of the image (1 or 2).
    pub version: u8,
    /// The footer.
    pub footer: SegmentFooter,
    /// Byte range of the encoded body.
    pub body: Range<usize>,
    /// Byte range of the columnar section (`None` in a v1 segment).
    pub columns: Option<Range<usize>>,
}

fn footer_of(data: &SegmentData, body: &[u8], columns: &[u8]) -> SegmentFooter {
    SegmentFooter {
        checksum: fnv1a64(body),
        min_slot: data
            .bundles
            .iter()
            .map(|b| b.slot.0)
            .min()
            .unwrap_or(u64::MAX),
        max_slot: data.bundles.iter().map(|b| b.slot.0).max().unwrap_or(0),
        bundles: data.bundles.len() as u32,
        details: data.details.len() as u32,
        polls: data.polls.len() as u32,
        body_len: body.len() as u64,
        col_len: columns.len() as u64,
        col_checksum: if columns.is_empty() {
            0
        } else {
            fnv1a64(columns)
        },
    }
}

/// Encode `data` into a complete current-version segment file image.
pub fn encode_segment(data: &SegmentData) -> (Vec<u8>, SegmentFooter) {
    let (body, layout) = encode_body_with_layout(data);
    let columns = build_columns(data, &layout);
    let footer = footer_of(data, &body, &columns);
    let mut file =
        Vec::with_capacity(SEGMENT_MAGIC.len() + body.len() + columns.len() + FOOTER_LEN);
    file.extend_from_slice(SEGMENT_MAGIC);
    file.extend_from_slice(&body);
    file.extend_from_slice(&columns);
    file.extend_from_slice(&footer.to_bytes());
    (file, footer)
}

/// Encode `data` as a pre-columnar v1 segment image. Kept so the
/// version-compatibility fixture can assert the old encoder never drifts;
/// production sealing always writes the current version.
pub fn encode_segment_v1(data: &SegmentData) -> (Vec<u8>, SegmentFooter) {
    let body = encode_body(data);
    let footer = footer_of(data, &body, &[]);
    let mut file = Vec::with_capacity(SEGMENT_MAGIC_V1.len() + body.len() + FOOTER_LEN_V1);
    file.extend_from_slice(SEGMENT_MAGIC_V1);
    file.extend_from_slice(&body);
    file.extend_from_slice(&footer.to_bytes_v1());
    (file, footer)
}

/// Validate a segment image (either version) and carve it into sections,
/// without decoding records. Checks both magics, the section lengths, and
/// the body and columnar checksums.
pub fn parse_segment(image: &[u8]) -> Result<ParsedSegment, CorruptSegment> {
    let (version, footer_len) = if image.len() >= 8 && &image[..8] == SEGMENT_MAGIC {
        (FORMAT_VERSION, FOOTER_LEN)
    } else if image.len() >= 8 && &image[..8] == SEGMENT_MAGIC_V1 {
        (1, FOOTER_LEN_V1)
    } else {
        return Err(CorruptSegment("bad segment magic".into()));
    };
    if image.len() < 8 + footer_len {
        return Err(CorruptSegment("file shorter than magic + footer".into()));
    }
    let footer = SegmentFooter::from_bytes(&image[image.len() - footer_len..])?;
    let sections = (image.len() - 8 - footer_len) as u64;
    if footer
        .body_len
        .checked_add(footer.col_len)
        .is_none_or(|total| total != sections)
    {
        return Err(CorruptSegment(format!(
            "sections are {sections} bytes, footer says {} body + {} columns",
            footer.body_len, footer.col_len
        )));
    }
    let body = 8..8 + footer.body_len as usize;
    let actual = fnv1a64(&image[body.clone()]);
    if actual != footer.checksum {
        return Err(CorruptSegment(format!(
            "checksum mismatch: body {actual:#018x}, footer {:#018x}",
            footer.checksum
        )));
    }
    let columns = (footer.col_len > 0).then(|| body.end..body.end + footer.col_len as usize);
    if let Some(cols) = &columns {
        let actual = fnv1a64(&image[cols.clone()]);
        if actual != footer.col_checksum {
            return Err(CorruptSegment(format!(
                "columnar checksum mismatch: section {actual:#018x}, footer {:#018x}",
                footer.col_checksum
            )));
        }
    }
    Ok(ParsedSegment {
        version,
        footer,
        body,
        columns,
    })
}

/// Validate a segment image and return its footer without decoding records.
pub fn verify_segment(image: &[u8]) -> Result<SegmentFooter, CorruptSegment> {
    parse_segment(image).map(|p| p.footer)
}

/// Validate and fully decode a segment image. A corrupt segment surfaces
/// as an error here — garbage never reaches the scan.
pub fn decode_segment(image: &[u8]) -> Result<(SegmentData, SegmentFooter), CorruptSegment> {
    let parsed = parse_segment(image)?;
    let data = decode_body(&image[parsed.body])?;
    if data.bundles.len() as u32 != parsed.footer.bundles
        || data.details.len() as u32 != parsed.footer.details
        || data.polls.len() as u32 != parsed.footer.polls
    {
        return Err(CorruptSegment("record counts disagree with footer".into()));
    }
    Ok((data, parsed.footer))
}

/// Crash-step boundaries of a segment image: chunk cuts at the magic
/// edge, the body quartiles, the section edges, and mid-footer, so an
/// enumerated crash matrix exercises a torn write inside every
/// structurally distinct region of the file.
fn section_boundaries(image: &[u8]) -> Vec<usize> {
    let mut cuts = vec![8];
    if let Ok(parsed) = parse_segment(image) {
        let body_len = parsed.body.end - parsed.body.start;
        for quarter in 1..4 {
            cuts.push(parsed.body.start + body_len * quarter / 4);
        }
        cuts.push(parsed.body.end);
        let footer_start = match &parsed.columns {
            Some(cols) => {
                cuts.push((cols.start + cols.end) / 2);
                cuts.push(cols.end);
                cols.end
            }
            None => parsed.body.end,
        };
        cuts.push((footer_start + image.len()) / 2);
    } else {
        // Unparseable image (never produced by the sealer): fall back to
        // quartile cuts.
        for quarter in 1..4 {
            cuts.push(image.len() * quarter / 4);
        }
    }
    cuts
}

/// Write a segment image to `path` durably (temp file + fsync + atomic
/// rename + directory fsync).
pub fn write_segment_file(path: &Path, image: &[u8]) -> std::io::Result<()> {
    write_segment_file_with(path, image, None)
}

/// [`write_segment_file`] with an optional [`CrashPlan`] threaded through
/// the durable write: every chunk (split at section boundaries), the file
/// fsync, the rename, and the directory fsync is one enumerated crash
/// step.
pub fn write_segment_file_with(
    path: &Path,
    image: &[u8],
    plan: Option<&mut CrashPlan>,
) -> std::io::Result<()> {
    write_durable_with(path, image, &section_boundaries(image), plan)
}

/// Read and decode a segment file.
pub fn read_segment_file(path: &Path) -> std::io::Result<(SegmentData, SegmentFooter)> {
    let image = std::fs::read(path)?;
    decode_segment(&image)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CollectedBundle, PollRecord};
    use sandwich_types::{Hash, Lamports, Slot};

    fn data() -> SegmentData {
        let kp = sandwich_types::Keypair::from_label("seg");
        SegmentData {
            bundles: (0..10)
                .map(|i| CollectedBundle {
                    bundle_id: Hash::digest(&[i]),
                    slot: Slot(1_000 + i as u64),
                    timestamp_ms: 400 * (1_000 + i as u64),
                    tip: Lamports(1_000 * i as u64),
                    tx_ids: vec![kp.sign(&[i])],
                })
                .collect(),
            details: vec![],
            polls: vec![PollRecord {
                day: 0,
                fetched: 10,
                new: 10,
                overlapped_previous: true,
            }],
        }
    }

    #[test]
    fn image_roundtrip() {
        let d = data();
        let (image, footer) = encode_segment(&d);
        assert_eq!(footer.min_slot, 1_000);
        assert_eq!(footer.max_slot, 1_009);
        assert_eq!(footer.bundles, 10);
        assert!(footer.col_len > 0);
        let (back, back_footer) = decode_segment(&image).unwrap();
        assert_eq!(back, d);
        assert_eq!(back_footer, footer);
        let parsed = parse_segment(&image).unwrap();
        assert_eq!(parsed.version, FORMAT_VERSION);
        assert!(parsed.columns.is_some());
    }

    #[test]
    fn v1_image_roundtrip() {
        let d = data();
        let (image, footer) = encode_segment_v1(&d);
        assert_eq!((footer.col_len, footer.col_checksum), (0, 0));
        let (back, back_footer) = decode_segment(&image).unwrap();
        assert_eq!(back, d);
        assert_eq!(back_footer, footer);
        let parsed = parse_segment(&image).unwrap();
        assert_eq!(parsed.version, 1);
        assert!(parsed.columns.is_none());
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        for encode in [encode_segment, encode_segment_v1] {
            let (image, _) = encode(&data());
            // Flip a byte in the magic, the body, the columnar section (v2),
            // and the footer: all caught.
            for idx in [0, 8 + 3, image.len() - 5, image.len() / 2, image.len() - 80] {
                let mut bad = image.clone();
                bad[idx] ^= 0x40;
                assert!(
                    decode_segment(&bad).is_err(),
                    "flip at byte {idx} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn corrupt_columnar_section_is_rejected_by_checksum() {
        let (image, footer) = encode_segment(&data());
        let col_start = 8 + footer.body_len as usize;
        for off in 0..footer.col_len as usize {
            let mut bad = image.clone();
            bad[col_start + off] ^= 0x01;
            let err = parse_segment(&bad).unwrap_err();
            assert!(
                err.0.contains("columnar checksum") || err.0.contains("count"),
                "columnar flip at +{off} produced unexpected error: {err}"
            );
        }
    }

    #[test]
    fn truncated_file_is_caught() {
        let (image, _) = encode_segment(&data());
        assert!(decode_segment(&image[..image.len() - 1]).is_err());
        assert!(decode_segment(&image[..4]).is_err());
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("swseg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-00000.seg");
        let d = data();
        let (image, _) = encode_segment(&d);
        write_segment_file(&path, &image).unwrap();
        let (back, _) = read_segment_file(&path).unwrap();
        assert_eq!(back, d);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
