//! Segment files: `header magic · encoded body · fixed footer`.
//!
//! The footer carries the body checksum, the slot range, the record
//! counts, and the body length, so a reader can validate a segment — and a
//! manifest can describe it — without decoding a single record. Segments
//! are written whole at seal time via a temp-file rename, so a crash never
//! leaves a half-written segment behind: a segment either exists and
//! verifies, or it does not exist.

use std::io::Write;
use std::path::Path;

use crate::codec::{decode_body, encode_body, CorruptSegment, SegmentData};

/// Leading file magic (includes the format version).
pub const SEGMENT_MAGIC: &[u8; 8] = b"SWSEG01\n";
/// Trailing file magic.
const FOOTER_MAGIC: &[u8; 8] = b"SWEND01\n";
/// Fixed footer size: checksum + min/max slot + 3 counts + body len + magic.
const FOOTER_LEN: usize = 8 + 8 + 8 + 4 + 4 + 4 + 8 + 8;

/// FNV-1a 64-bit checksum — cheap, dependency-free, and plenty to catch
/// torn writes and bit rot (this is an integrity check, not a MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The footer metadata of a sealed segment (also mirrored in the manifest).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentFooter {
    /// FNV-1a 64 checksum of the encoded body.
    pub checksum: u64,
    /// Lowest bundle slot in the segment (`u64::MAX` when bundle-free).
    pub min_slot: u64,
    /// Highest bundle slot in the segment (0 when bundle-free).
    pub max_slot: u64,
    /// Bundle records.
    pub bundles: u32,
    /// Detail records.
    pub details: u32,
    /// Poll records.
    pub polls: u32,
    /// Encoded body length in bytes.
    pub body_len: u64,
}

impl SegmentFooter {
    fn to_bytes(self) -> [u8; FOOTER_LEN] {
        let mut out = [0u8; FOOTER_LEN];
        out[0..8].copy_from_slice(&self.checksum.to_le_bytes());
        out[8..16].copy_from_slice(&self.min_slot.to_le_bytes());
        out[16..24].copy_from_slice(&self.max_slot.to_le_bytes());
        out[24..28].copy_from_slice(&self.bundles.to_le_bytes());
        out[28..32].copy_from_slice(&self.details.to_le_bytes());
        out[32..36].copy_from_slice(&self.polls.to_le_bytes());
        out[36..44].copy_from_slice(&self.body_len.to_le_bytes());
        out[44..52].copy_from_slice(FOOTER_MAGIC);
        out
    }

    fn from_bytes(b: &[u8]) -> Result<Self, CorruptSegment> {
        if b.len() != FOOTER_LEN || &b[44..52] != FOOTER_MAGIC {
            return Err(CorruptSegment("bad footer magic".into()));
        }
        let u64_at = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(b[i..i + 4].try_into().unwrap());
        Ok(SegmentFooter {
            checksum: u64_at(0),
            min_slot: u64_at(8),
            max_slot: u64_at(16),
            bundles: u32_at(24),
            details: u32_at(28),
            polls: u32_at(32),
            body_len: u64_at(36),
        })
    }
}

/// Encode `data` into a complete segment file image.
pub fn encode_segment(data: &SegmentData) -> (Vec<u8>, SegmentFooter) {
    let body = encode_body(data);
    let footer = SegmentFooter {
        checksum: fnv1a64(&body),
        min_slot: data
            .bundles
            .iter()
            .map(|b| b.slot.0)
            .min()
            .unwrap_or(u64::MAX),
        max_slot: data.bundles.iter().map(|b| b.slot.0).max().unwrap_or(0),
        bundles: data.bundles.len() as u32,
        details: data.details.len() as u32,
        polls: data.polls.len() as u32,
        body_len: body.len() as u64,
    };
    let mut file = Vec::with_capacity(SEGMENT_MAGIC.len() + body.len() + FOOTER_LEN);
    file.extend_from_slice(SEGMENT_MAGIC);
    file.extend_from_slice(&body);
    file.extend_from_slice(&footer.to_bytes());
    (file, footer)
}

/// Validate a segment image and return its footer without decoding records.
pub fn verify_segment(image: &[u8]) -> Result<SegmentFooter, CorruptSegment> {
    if image.len() < SEGMENT_MAGIC.len() + FOOTER_LEN {
        return Err(CorruptSegment("file shorter than magic + footer".into()));
    }
    if &image[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(CorruptSegment("bad segment magic".into()));
    }
    let footer = SegmentFooter::from_bytes(&image[image.len() - FOOTER_LEN..])?;
    let body = &image[SEGMENT_MAGIC.len()..image.len() - FOOTER_LEN];
    if body.len() as u64 != footer.body_len {
        return Err(CorruptSegment(format!(
            "body is {} bytes, footer says {}",
            body.len(),
            footer.body_len
        )));
    }
    let actual = fnv1a64(body);
    if actual != footer.checksum {
        return Err(CorruptSegment(format!(
            "checksum mismatch: body {actual:#018x}, footer {:#018x}",
            footer.checksum
        )));
    }
    Ok(footer)
}

/// Validate and fully decode a segment image. A corrupt segment surfaces
/// as an error here — garbage never reaches the scan.
pub fn decode_segment(image: &[u8]) -> Result<(SegmentData, SegmentFooter), CorruptSegment> {
    let footer = verify_segment(image)?;
    let body = &image[SEGMENT_MAGIC.len()..image.len() - FOOTER_LEN];
    let data = decode_body(body)?;
    if data.bundles.len() as u32 != footer.bundles
        || data.details.len() as u32 != footer.details
        || data.polls.len() as u32 != footer.polls
    {
        return Err(CorruptSegment("record counts disagree with footer".into()));
    }
    Ok((data, footer))
}

/// Write a segment image to `path` atomically (temp file + rename).
pub fn write_segment_file(path: &Path, image: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(image)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read and decode a segment file.
pub fn read_segment_file(path: &Path) -> std::io::Result<(SegmentData, SegmentFooter)> {
    let image = std::fs::read(path)?;
    decode_segment(&image)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CollectedBundle, PollRecord};
    use sandwich_types::{Hash, Lamports, Slot};

    fn data() -> SegmentData {
        let kp = sandwich_types::Keypair::from_label("seg");
        SegmentData {
            bundles: (0..10)
                .map(|i| CollectedBundle {
                    bundle_id: Hash::digest(&[i]),
                    slot: Slot(1_000 + i as u64),
                    timestamp_ms: 400 * (1_000 + i as u64),
                    tip: Lamports(1_000 * i as u64),
                    tx_ids: vec![kp.sign(&[i])],
                })
                .collect(),
            details: vec![],
            polls: vec![PollRecord {
                day: 0,
                fetched: 10,
                new: 10,
                overlapped_previous: true,
            }],
        }
    }

    #[test]
    fn image_roundtrip() {
        let d = data();
        let (image, footer) = encode_segment(&d);
        assert_eq!(footer.min_slot, 1_000);
        assert_eq!(footer.max_slot, 1_009);
        assert_eq!(footer.bundles, 10);
        let (back, back_footer) = decode_segment(&image).unwrap();
        assert_eq!(back, d);
        assert_eq!(back_footer, footer);
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let (image, _) = encode_segment(&data());
        // Flip a byte in the magic, the body, and the footer: all caught.
        for idx in [0, SEGMENT_MAGIC.len() + 3, image.len() - 5, image.len() / 2] {
            let mut bad = image.clone();
            bad[idx] ^= 0x40;
            assert!(
                decode_segment(&bad).is_err(),
                "flip at byte {idx} went unnoticed"
            );
        }
    }

    #[test]
    fn truncated_file_is_caught() {
        let (image, _) = encode_segment(&data());
        assert!(decode_segment(&image[..image.len() - 1]).is_err());
        assert!(decode_segment(&image[..4]).is_err());
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("swseg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-00000.seg");
        let d = data();
        let (image, _) = encode_segment(&d);
        write_segment_file(&path, &image).unwrap();
        let (back, _) = read_segment_file(&path).unwrap();
        assert_eq!(back, d);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
