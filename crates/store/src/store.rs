//! The store itself: an append-only directory of sealed segments plus a
//! manifest.
//!
//! Writes are whole-segment: the writer receives a batch of records, sorts
//! them canonically, encodes, checksums, and renames the finished file
//! into place, then re-saves the manifest. There is no partially-written
//! "active" segment on disk — crash safety comes from records staying in
//! the collector's memory (and its checkpoint) until their segment seals.

use std::path::{Path, PathBuf};

use crate::codec::SegmentData;
use crate::crash::{remove_stale_tmp_files, CrashPlan};
use crate::doctor::{check_segment, Verdict};
use crate::manifest::{Manifest, QuarantinedSegment, SegmentMeta};
use crate::records::{CollectedBundle, CollectedDetail, PollRecord};
use crate::segment::{
    encode_segment, read_segment_file, write_segment_file, write_segment_file_with, SegmentFooter,
    FOOTER_LEN, FOOTER_LEN_V1, SEGMENT_MAGIC, SEGMENT_MAGIC_V1,
};

pub(crate) fn segment_file_name(index: usize) -> String {
    format!("seg-{index:05}.seg")
}

/// Append-only writer over a store directory.
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    manifest: Manifest,
    bytes_written: u64,
}

impl StoreWriter {
    /// Create a fresh store at `dir` (the directory is created; an existing
    /// manifest there is an error — a store is grown, never overwritten
    /// blindly).
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<StoreWriter> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if Manifest::load(&dir).is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already holds a store manifest", dir.display()),
            ));
        }
        let manifest = Manifest::new();
        manifest.save(&dir)?;
        Ok(StoreWriter {
            dir,
            manifest,
            bytes_written: 0,
        })
    }

    /// Reopen a store for appending after a checkpoint resume.
    ///
    /// `expected` is the sealed-segment list the checkpoint recorded. The
    /// on-disk manifest must contain it as a prefix; any segments sealed
    /// after the checkpoint (the killed run got further than its last
    /// checkpoint) are discarded so the resume replays them. Only the
    /// manifest is read — sealed segment contents stay on disk.
    pub fn resume(
        dir: impl Into<PathBuf>,
        expected: &[SegmentMeta],
    ) -> std::io::Result<StoreWriter> {
        let dir = dir.into();
        let on_disk = Manifest::load(&dir)?;
        // A crashed seal can leave a write-ahead temp file behind; it was
        // never part of the store.
        remove_stale_tmp_files(&dir)?;
        if on_disk.segments.len() < expected.len()
            || on_disk.segments[..expected.len()] != *expected
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "store manifest does not match the checkpoint's segment list",
            ));
        }
        for orphan in &on_disk.segments[expected.len()..] {
            // Best-effort: an undeletable orphan only wastes disk, the
            // truncated manifest no longer references it.
            let _ = std::fs::remove_file(Manifest::segment_path(&dir, orphan));
        }
        let manifest = Manifest {
            version: on_disk.version,
            segments: expected.to_vec(),
            quarantined: Some(on_disk.quarantined().to_vec()),
            validators: on_disk.validators,
        };
        // Every retained segment gets a cheap structural probe (size +
        // both magics + footer parse); a damaged one gets one shot at
        // provable recovery — truncating a torn tail back to the last
        // valid footer — before resume refuses to build on it.
        for meta in &manifest.segments {
            verify_or_recover(&dir, meta)?;
        }
        manifest.save(&dir)?;
        Ok(StoreWriter {
            dir,
            manifest,
            bytes_written: 0,
        })
    }

    /// Record the validator spec of the chain this store was collected
    /// from, durably re-saving the manifest. The spec is public chain
    /// data — seed and count fully determine validator identities, stakes
    /// and the leader of every slot — so carrying it in the manifest lets
    /// an index attribute each sandwich to its slot leader without any
    /// per-slot leader data on the wire.
    pub fn set_validators(&mut self, spec: sandwich_attrib::ValidatorSpec) -> std::io::Result<()> {
        let prev = self.manifest.validators;
        self.manifest.validators = Some(spec);
        if let Err(e) = self.manifest.save(&self.dir) {
            self.manifest.validators = prev;
            return Err(e);
        }
        Ok(())
    }

    /// Seal one segment from a batch of records. Records are sorted into
    /// canonical order (bundles by slot then id, details by slot then tx),
    /// encoded, checksummed, written atomically, and recorded in the
    /// manifest. Returns the new segment's metadata.
    pub fn seal_segment(
        &mut self,
        bundles: Vec<CollectedBundle>,
        details: Vec<CollectedDetail>,
        polls: Vec<PollRecord>,
    ) -> std::io::Result<SegmentMeta> {
        self.seal_segment_with(bundles, details, polls, None)
    }

    /// [`Self::seal_segment`] with an optional [`CrashPlan`] threaded
    /// through both durable writes (segment file, then manifest), so a
    /// test harness can kill the seal at every enumerated crash step.
    /// After an injected crash the writer must be considered dead —
    /// recover by dropping it and calling [`StoreWriter::resume`].
    pub fn seal_segment_with(
        &mut self,
        mut bundles: Vec<CollectedBundle>,
        mut details: Vec<CollectedDetail>,
        polls: Vec<PollRecord>,
        mut plan: Option<&mut CrashPlan>,
    ) -> std::io::Result<SegmentMeta> {
        bundles.sort_by_key(|a| (a.slot, a.bundle_id.0));
        details.sort_by_key(|a| (a.slot, a.meta.tx_id.0));
        let data = SegmentData {
            bundles,
            details,
            polls,
        };
        let (image, footer) = encode_segment(&data);
        // One past the highest index anywhere in the manifest — counting
        // quarantined segments, whose file names must never be reused.
        let file = segment_file_name(self.manifest.next_segment_index());
        write_segment_file_with(&self.dir.join(&file), &image, plan.as_deref_mut())?;
        let meta = SegmentMeta {
            file,
            bundles: footer.bundles as u64,
            details: footer.details as u64,
            polls: footer.polls as u64,
            min_slot: footer.min_slot,
            max_slot: footer.max_slot,
            bytes: image.len() as u64,
            checksum: format!("{:016x}", footer.checksum),
        };
        self.manifest.segments.push(meta.clone());
        if let Err(e) = self.manifest.save_with(&self.dir, plan) {
            self.manifest.segments.pop();
            return Err(e);
        }
        self.bytes_written += image.len() as u64;
        Ok(meta)
    }

    /// Sealed segments so far, in seal order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.manifest.segments
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes written by this writer instance (not counting pre-resume
    /// segments).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Convert into a read handle over everything sealed so far.
    pub fn into_reader(self) -> BundleStore {
        BundleStore {
            dir: self.dir,
            manifest: self.manifest,
        }
    }
}

/// Cheap structural probe of a sealed segment (size, leading magic,
/// footer parse, manifest cross-check) without reading the body. `false`
/// means "needs the full recovery path", not "unrecoverable".
fn quick_probe(path: &Path, meta: &SegmentMeta) -> std::io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path)?;
    let len = f.metadata()?.len();
    if len != meta.bytes {
        return Ok(false);
    }
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    let footer_len = if &magic == SEGMENT_MAGIC {
        FOOTER_LEN
    } else if &magic == SEGMENT_MAGIC_V1 {
        FOOTER_LEN_V1
    } else {
        return Ok(false);
    };
    if (len as usize) < 8 + footer_len {
        return Ok(false);
    }
    let mut foot = vec![0u8; footer_len];
    f.seek(SeekFrom::End(-(footer_len as i64)))?;
    f.read_exact(&mut foot)?;
    let Ok(footer) = SegmentFooter::from_bytes(&foot) else {
        return Ok(false);
    };
    Ok(format!("{:016x}", footer.checksum) == meta.checksum
        && footer.bundles as u64 == meta.bundles
        && 8 + footer.body_len + footer.col_len + footer_len as u64 == len)
}

/// Probe one retained segment at resume; if the probe fails, try the
/// doctor's provable-recovery path (truncate a torn tail back to the
/// last valid footer / rebuild a damaged columnar section) before
/// refusing the resume.
fn verify_or_recover(dir: &Path, meta: &SegmentMeta) -> std::io::Result<()> {
    let path = Manifest::segment_path(dir, meta);
    if quick_probe(&path, meta).unwrap_or(false) {
        return Ok(());
    }
    let image = std::fs::read(&path).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("segment {} unreadable at resume: {e}", meta.file),
        )
    })?;
    match check_segment(&image, Some(meta)) {
        Verdict::Clean { .. } => Ok(()),
        Verdict::Rebuild { image, .. } => write_segment_file(&path, &image),
        Verdict::Quarantine { reason } => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "segment {} is damaged beyond provable recovery ({reason}); run `store doctor` to quarantine it",
                meta.file
            ),
        )),
    }
}

/// Read handle over a sealed store: the manifest plus segment access.
#[derive(Clone, Debug)]
pub struct BundleStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl BundleStore {
    /// Open a store directory by loading its manifest. Segment contents
    /// are not read — scans stream them on demand.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<BundleStore> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?;
        Ok(BundleStore { dir, manifest })
    }

    /// The manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Sealed segments in seal order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.manifest.segments
    }

    /// Segments the doctor has pulled from service (never scanned, but
    /// accounted for in coverage).
    pub fn quarantined(&self) -> &[QuarantinedSegment] {
        self.manifest.quarantined()
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read, verify, and decode one segment by index. Checksum or codec
    /// failures surface as `InvalidData` errors, never as garbage records.
    pub fn read_segment(&self, index: usize) -> std::io::Result<SegmentData> {
        let meta = self.manifest.segments.get(index).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("segment {index} not in manifest"),
            )
        })?;
        let (data, footer) = read_segment_file(&Manifest::segment_path(&self.dir, meta))?;
        if format!("{:016x}", footer.checksum) != meta.checksum {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("segment {index} checksum disagrees with manifest"),
            ));
        }
        Ok(data)
    }

    /// Open a zero-copy view over one segment by index, with the same
    /// manifest cross-check as [`Self::read_segment`] (the view itself
    /// verifies the body and columnar checksums on open).
    pub fn open_view(&self, index: usize) -> std::io::Result<crate::view::SegmentView> {
        let meta = self.manifest.segments.get(index).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("segment {index} not in manifest"),
            )
        })?;
        let view = crate::view::SegmentView::open(&Manifest::segment_path(&self.dir, meta))?;
        if format!("{:016x}", view.footer().checksum) != meta.checksum {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("segment {index} checksum disagrees with manifest"),
            ));
        }
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::{Hash, Keypair, Lamports, Slot};

    fn bundle(seed: u64, slot: u64) -> CollectedBundle {
        let kp = Keypair::from_label("store");
        CollectedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            timestamp_ms: slot * 400,
            tip: Lamports(seed),
            tx_ids: vec![kp.sign(&seed.to_le_bytes())],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn seal_then_read_back() {
        let dir = tmp_dir("seal");
        let mut w = StoreWriter::create(&dir).unwrap();
        // Unsorted input: the writer canonicalizes.
        let meta = w
            .seal_segment(vec![bundle(2, 20), bundle(1, 10)], vec![], vec![])
            .unwrap();
        assert_eq!(meta.bundles, 2);
        assert_eq!((meta.min_slot, meta.max_slot), (10, 20));
        assert!(w.bytes_written() > 0);

        let store = BundleStore::open(&dir).unwrap();
        assert_eq!(store.segments().len(), 1);
        let data = store.read_segment(0).unwrap();
        let slots: Vec<u64> = data.bundles.iter().map(|b| b.slot.0).collect();
        assert_eq!(slots, vec![10, 20], "canonical order on disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = tmp_dir("exists");
        let _w = StoreWriter::create(&dir).unwrap();
        assert!(StoreWriter::create(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_segments_past_the_checkpoint() {
        let dir = tmp_dir("resume");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.seal_segment(vec![bundle(1, 10)], vec![], vec![]).unwrap();
        let at_checkpoint = w.segments().to_vec();
        // The run got further before dying.
        w.seal_segment(vec![bundle(2, 20)], vec![], vec![]).unwrap();
        drop(w);

        let w = StoreWriter::resume(&dir, &at_checkpoint).unwrap();
        assert_eq!(w.segments().len(), 1);
        let store = BundleStore::open(&dir).unwrap();
        assert_eq!(store.segments().len(), 1);
        assert!(
            !dir.join(segment_file_name(1)).exists(),
            "orphan segment deleted"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_a_mismatched_manifest() {
        let dir = tmp_dir("mismatch");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.seal_segment(vec![bundle(1, 10)], vec![], vec![]).unwrap();
        let mut fake = w.segments().to_vec();
        fake[0].checksum = "0000000000000000".into();
        assert!(StoreWriter::resume(&dir, &fake).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_a_torn_segment_tail() {
        let dir = tmp_dir("torntail");
        let mut w = StoreWriter::create(&dir).unwrap();
        let meta = w
            .seal_segment(vec![bundle(1, 10), bundle(2, 20)], vec![], vec![])
            .unwrap();
        let expected = w.segments().to_vec();
        drop(w);
        // Tear into the columnar section (body intact) and leave a stale
        // write-ahead temp file, like a killed seal would.
        let path = dir.join(&meta.file);
        let sealed = std::fs::read(&path).unwrap();
        let parsed = crate::segment::parse_segment(&sealed).unwrap();
        crate::crash::truncate_to(&path, (parsed.body.end + 2) as u64).unwrap();
        std::fs::write(dir.join("seg-00001.tmp"), b"half a segment").unwrap();

        let w = StoreWriter::resume(&dir, &expected).unwrap();
        assert_eq!(w.segments(), &expected[..]);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            sealed,
            "bit-for-bit recovery"
        );
        assert!(!dir.join("seg-00001.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_an_unrecoverable_segment() {
        let dir = tmp_dir("unrec");
        let mut w = StoreWriter::create(&dir).unwrap();
        let meta = w.seal_segment(vec![bundle(1, 10)], vec![], vec![]).unwrap();
        let expected = w.segments().to_vec();
        drop(w);
        let path = dir.join(&meta.file);
        // Tear into the body itself: the sealed bytes are gone, no
        // recovery can prove anything.
        crate::crash::truncate_to(&path, meta.bytes / 4).unwrap();
        let err = StoreWriter::resume(&dir, &expected).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("store doctor"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_never_reuses_a_quarantined_file_name() {
        let dir = tmp_dir("reuse");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.seal_segment(vec![bundle(1, 10)], vec![], vec![]).unwrap();
        let meta1 = w.seal_segment(vec![bundle(2, 20)], vec![], vec![]).unwrap();
        drop(w);
        // Quarantine seg-00001 the way the doctor would.
        let mut m = Manifest::load(&dir).unwrap();
        m.quarantine(1, "body_corrupt");
        m.save(&dir).unwrap();

        let expected = m.segments.clone();
        let mut w = StoreWriter::resume(&dir, &expected).unwrap();
        let meta2 = w.seal_segment(vec![bundle(3, 30)], vec![], vec![]).unwrap();
        assert_eq!(meta2.file, "seg-00002.seg");
        assert_ne!(meta2.file, meta1.file);
        let store = w.into_reader();
        assert_eq!(store.segments().len(), 2);
        assert_eq!(store.quarantined().len(), 1, "quarantine survives resume");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_seal_resumes_to_a_byte_identical_store() {
        use crate::crash::{is_injected_crash, CrashPlan};
        let base = tmp_dir("crashseal");
        let mut w = StoreWriter::create(&base).unwrap();
        w.seal_segment(vec![bundle(1, 10)], vec![], vec![]).unwrap();
        let expected = w.segments().to_vec();
        drop(w);

        // Reference: the uninterrupted seal.
        let refdir = tmp_dir("crashseal-ref");
        copy_dir(&base, &refdir);
        let mut w = StoreWriter::resume(&refdir, &expected).unwrap();
        w.seal_segment(vec![bundle(2, 20)], vec![], vec![]).unwrap();
        let want = std::fs::read(refdir.join("seg-00001.seg")).unwrap();

        let mut count = CrashPlan::count();
        let crashdir = tmp_dir("crashseal-n");
        copy_dir(&base, &crashdir);
        let mut w = StoreWriter::resume(&crashdir, &expected).unwrap();
        w.seal_segment_with(vec![bundle(2, 20)], vec![], vec![], Some(&mut count))
            .unwrap();
        let total = count.steps_seen();
        assert!(total >= 15, "expected a rich crash matrix, got {total}");

        for step in 0..total {
            let dir = tmp_dir("crashseal-case");
            copy_dir(&base, &dir);
            let mut w = StoreWriter::resume(&dir, &expected).unwrap();
            let mut plan = CrashPlan::crash_at(step, true, 99 + step);
            let err = w
                .seal_segment_with(vec![bundle(2, 20)], vec![], vec![], Some(&mut plan))
                .unwrap_err();
            assert!(is_injected_crash(&err));
            drop(w);
            // Recover exactly as the collector would: resume + re-seal.
            let mut w = StoreWriter::resume(&dir, &expected).unwrap();
            w.seal_segment(vec![bundle(2, 20)], vec![], vec![]).unwrap();
            assert_eq!(
                std::fs::read(dir.join("seg-00001.seg")).unwrap(),
                want,
                "crash at step {step} diverged after recovery"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::remove_dir_all(&base).unwrap();
        std::fs::remove_dir_all(&refdir).unwrap();
        std::fs::remove_dir_all(&crashdir).unwrap();
    }

    fn copy_dir(from: &Path, to: &Path) {
        let _ = std::fs::remove_dir_all(to);
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }

    #[test]
    fn corrupt_segment_file_surfaces_as_error() {
        let dir = tmp_dir("corrupt");
        let mut w = StoreWriter::create(&dir).unwrap();
        let meta = w.seal_segment(vec![bundle(1, 10)], vec![], vec![]).unwrap();
        let path = dir.join(&meta.file);
        let mut image = std::fs::read(&path).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x01;
        std::fs::write(&path, &image).unwrap();
        let store = BundleStore::open(&dir).unwrap();
        let err = store.read_segment(0).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
