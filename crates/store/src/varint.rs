//! LEB128 varints and zigzag transforms — the integer layer of the segment
//! codec. Slots, timestamps, counts, and balance deltas are all small *as
//! differences*, so everything numeric in a segment goes through here.

/// Append `value` as an unsigned LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append an unsigned 128-bit LEB128 varint (token deltas).
pub fn put_u128(out: &mut Vec<u8>, mut value: u128) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-encode then varint a signed 64-bit value.
pub fn put_i64(out: &mut Vec<u8>, value: i64) {
    put_u64(out, ((value << 1) ^ (value >> 63)) as u64);
}

/// Zigzag-encode then varint a signed 128-bit value.
pub fn put_i128(out: &mut Vec<u8>, value: i128) {
    put_u128(out, ((value << 1) ^ (value >> 127)) as u128);
}

/// A decode failure: truncated or over-long varint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarintError;

/// Read an unsigned LEB128 varint, advancing `pos`.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(VarintError)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(VarintError);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Read an unsigned 128-bit LEB128 varint, advancing `pos`.
pub fn get_u128(buf: &[u8], pos: &mut usize) -> Result<u128, VarintError> {
    let mut value = 0u128;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(VarintError)?;
        *pos += 1;
        if shift >= 128 || (shift == 126 && byte > 3) {
            return Err(VarintError);
        }
        value |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Read a zigzagged signed 64-bit varint, advancing `pos`.
pub fn get_i64(buf: &[u8], pos: &mut usize) -> Result<i64, VarintError> {
    let raw = get_u64(buf, pos)?;
    Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

/// Read a zigzagged signed 128-bit varint, advancing `pos`.
pub fn get_i128(buf: &[u8], pos: &mut usize) -> Result<i128, VarintError> {
    let raw = get_u128(buf, pos)?;
    Ok(((raw >> 1) as i128) ^ -((raw & 1) as i128))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_roundtrip_edges() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -400, 400] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_i64(&buf, &mut pos), Ok(v));
        }
    }

    #[test]
    fn i128_roundtrip_edges() {
        for v in [0i128, -1, i128::MIN, i128::MAX, 170_141_183_460_469_231] {
            let mut buf = Vec::new();
            put_i128(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_i128(&buf, &mut pos), Ok(v));
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), Err(VarintError));
    }

    #[test]
    fn overlong_input_is_an_error() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), Err(VarintError));
    }

    #[test]
    fn small_deltas_are_one_byte() {
        for v in [-63i64, -1, 0, 1, 63] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            assert_eq!(buf.len(), 1, "{v} took {} bytes", buf.len());
        }
    }
}
