//! The columnar fast-path section of a v2 segment.
//!
//! Sealed between the body and the footer, the section repeats a handful
//! of per-record facts in struct-of-arrays form so a scan can classify
//! most bundles — length histogram, tips, defensive classification, and
//! the detector's cheap rejections — without decoding a single body
//! record. Layout (all integers LEB128 varints):
//!
//! ```text
//! n_bundles · n_details · n_linked · polls_offset
//! bundle_off[n]   delta from previous offset (first is absolute)
//! slot[n]         zigzag delta from previous slot
//! meta[n]         1 byte: low 3 bits = min(tx count, 7);
//!                 0x08 LINKED · 0x10 C1 · 0x20 C2
//! tx_overflow     varint tx count for each meta whose low bits are 7
//! tip[n]          lamports
//! linked[k]       for each LINKED bundle in bundle order:
//!                   attacker table ref · pool table ref + 1 (0 = none) ·
//!                   3 × detail index
//! detail_off[m]   delta from previous offset (first is absolute)
//! detail_slot[m]  zigzag delta from previous detail slot
//! ```
//!
//! The flag bits are **conservative pre-filters**, sound by construction:
//!
//! * `LINKED` — the bundle has length 3 and all three tx ids resolve in
//!   the segment's last-wins tx-id → detail map (the exact map
//!   `partial_of_segment` builds). Unset ⇒ the scan cannot assemble metas
//!   and never calls the detector.
//! * `C1` — the three resolved metas satisfy criterion 1 structurally
//!   (`signer₁ == signer₃ && signer₁ != signer₂`). Unset ⇒ `detect`
//!   returns `None` whenever `same_outer_signer` is enabled (both the
//!   full and the naive tip-only branch reject on this predicate first).
//! * `C2` — the per-tx sets of mints with a nonzero signer-owned token
//!   delta are equal across all three txs, nonempty, and of size ≤ 2.
//!   Trade extraction turns exactly those mints into token legs, so an
//!   unequal/empty/oversized set forces either a failed extraction or a
//!   criterion-2 mismatch. Sound to skip on only when `same_currencies`
//!   **and** `exclude_tip_only_final` are both enabled — the naive branch
//!   reached with criterion 5 disabled never inspects the third tx.
//!
//! A set flag licenses nothing: the scan still decodes the bundle and
//! runs the full detector on it.

use std::collections::HashMap;

use sandwich_ledger::TransactionId;
use sandwich_types::Pubkey;

use crate::codec::{BodyLayout, CorruptSegment, SegmentData};
use crate::varint::{get_i64, get_u64, put_i64, put_u64};

/// Low 3 bits of the meta byte: transaction count, saturating at 7.
pub const META_TXC_MASK: u8 = 0x07;
/// Meta bit: all three tx ids of this length-3 bundle resolve to details.
pub const META_LINKED: u8 = 0x08;
/// Meta bit: criterion 1 holds structurally (outer signers match, middle
/// differs).
pub const META_C1: u8 = 0x10;
/// Meta bit: the traded-mint sets are consistent across the three txs.
pub const META_C2: u8 = 0x20;

/// Column data for one LINKED bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkedColumns {
    /// Interning-table index of the candidate attacker (signer of tx 1).
    pub attacker_ref: u64,
    /// Interning-table index of the traded pool mint (first of the common
    /// mint set), when the `C2` flag is set.
    pub pool_ref: Option<u64>,
    /// Indices of the three winning detail records, in tx order.
    pub details: [u64; 3],
}

/// Decoded columnar section. The vectors are reused across segments by
/// the scan hot loop (cleared, not reallocated), so a long scan does one
/// round of heap growth instead of one per segment.
#[derive(Clone, Debug, Default)]
pub struct Columns {
    /// Absolute body offset of each bundle record.
    pub bundle_off: Vec<u64>,
    /// Absolute slot of each bundle.
    pub slot: Vec<u64>,
    /// Raw meta byte of each bundle (`META_*` bits).
    pub flags: Vec<u8>,
    /// Resolved transaction count of each bundle.
    pub tx_count: Vec<u32>,
    /// Tip of each bundle, in lamports.
    pub tip: Vec<u64>,
    /// One entry per LINKED bundle, in bundle order.
    pub linked: Vec<LinkedColumns>,
    /// Absolute body offset of each detail record.
    pub detail_off: Vec<u64>,
    /// Absolute slot of each detail record.
    pub detail_slot: Vec<u64>,
    /// Absolute body offset of the poll-section count varint.
    pub polls_offset: u64,
}

impl Columns {
    fn clear(&mut self) {
        self.bundle_off.clear();
        self.slot.clear();
        self.flags.clear();
        self.tx_count.clear();
        self.tip.clear();
        self.linked.clear();
        self.detail_off.clear();
        self.detail_slot.clear();
        self.polls_offset = 0;
    }
}

/// The sorted set of mints with a nonzero signer-owned token delta — the
/// exact mints trade extraction will turn into token legs.
fn traded_mints(meta: &sandwich_ledger::TransactionMeta) -> Vec<Pubkey> {
    let mut mints: Vec<Pubkey> = meta
        .token_deltas
        .iter()
        .filter(|d| d.owner == meta.signer && d.delta != 0)
        .map(|d| d.mint)
        .collect();
    mints.sort();
    mints.dedup();
    mints
}

/// Build the encoded columnar section for a segment body.
pub(crate) fn build_columns(data: &SegmentData, layout: &BodyLayout) -> Vec<u8> {
    // The same last-wins map the scan builds: later details overwrite
    // earlier ones for a repeated tx id.
    let mut detail_of: HashMap<TransactionId, usize> = HashMap::new();
    for (i, d) in data.details.iter().enumerate() {
        detail_of.insert(d.meta.tx_id, i);
    }

    let mut linked: Vec<(usize, LinkedColumns)> = Vec::new();
    let mut metas = vec![0u8; data.bundles.len()];
    for (i, b) in data.bundles.iter().enumerate() {
        metas[i] = (b.tx_ids.len() as u8).min(META_TXC_MASK);
        if b.tx_ids.len() != 3 {
            continue;
        }
        let Some(d) = b
            .tx_ids
            .iter()
            .map(|id| detail_of.get(id).copied())
            .collect::<Option<Vec<usize>>>()
        else {
            continue;
        };
        metas[i] |= META_LINKED;
        let m: Vec<_> = d.iter().map(|&j| &data.details[j].meta).collect();
        if m[0].signer == m[2].signer && m[0].signer != m[1].signer {
            metas[i] |= META_C1;
        }
        let mints = traded_mints(m[0]);
        let consistent = !mints.is_empty()
            && mints.len() <= 2
            && mints == traded_mints(m[1])
            && mints == traded_mints(m[2]);
        let mut pool_ref = None;
        if consistent {
            metas[i] |= META_C2;
            pool_ref = layout.key_index.get(&mints[0]).copied();
        }
        linked.push((
            i,
            LinkedColumns {
                attacker_ref: layout.key_index.get(&m[0].signer).copied().unwrap_or(0),
                pool_ref,
                details: [d[0] as u64, d[1] as u64, d[2] as u64],
            },
        ));
    }

    let mut out = Vec::new();
    put_u64(&mut out, data.bundles.len() as u64);
    put_u64(&mut out, data.details.len() as u64);
    put_u64(&mut out, linked.len() as u64);
    put_u64(&mut out, layout.polls_offset);
    let mut prev = 0u64;
    for &off in &layout.bundle_offsets {
        put_u64(&mut out, off - prev);
        prev = off;
    }
    let mut prev = 0i64;
    for b in &data.bundles {
        put_i64(&mut out, b.slot.0 as i64 - prev);
        prev = b.slot.0 as i64;
    }
    out.extend_from_slice(&metas);
    for b in &data.bundles {
        if b.tx_ids.len() >= META_TXC_MASK as usize {
            put_u64(&mut out, b.tx_ids.len() as u64);
        }
    }
    for b in &data.bundles {
        put_u64(&mut out, b.tip.0);
    }
    for (_, l) in &linked {
        put_u64(&mut out, l.attacker_ref);
        put_u64(&mut out, l.pool_ref.map_or(0, |r| r + 1));
        for d in l.details {
            put_u64(&mut out, d);
        }
    }
    let mut prev = 0u64;
    for &off in &layout.detail_offsets {
        put_u64(&mut out, off - prev);
        prev = off;
    }
    let mut prev = 0i64;
    for d in &data.details {
        put_i64(&mut out, d.slot.0 as i64 - prev);
        prev = d.slot.0 as i64;
    }
    out
}

/// Decode a columnar section into `cols` (reusing its buffers). The
/// section is already checksum-verified by the caller; bounds are still
/// checked so a logic error never panics.
pub fn decode_columns(buf: &[u8], cols: &mut Columns) -> Result<(), CorruptSegment> {
    cols.clear();
    let mut pos = 0usize;
    let n = get_u64(buf, &mut pos)? as usize;
    let m = get_u64(buf, &mut pos)? as usize;
    let k = get_u64(buf, &mut pos)? as usize;
    if n > buf.len() || m > buf.len() || k > n {
        return Err(CorruptSegment("columnar counts exceed section".into()));
    }
    cols.polls_offset = get_u64(buf, &mut pos)?;

    cols.bundle_off.reserve(n);
    let mut prev = 0u64;
    for _ in 0..n {
        prev = prev
            .checked_add(get_u64(buf, &mut pos)?)
            .ok_or_else(|| CorruptSegment("bundle offset overflow".into()))?;
        cols.bundle_off.push(prev);
    }
    cols.slot.reserve(n);
    let mut prev = 0i64;
    for _ in 0..n {
        prev = prev
            .checked_add(get_i64(buf, &mut pos)?)
            .filter(|&s| s >= 0)
            .ok_or_else(|| CorruptSegment("slot column overflow".into()))?;
        cols.slot.push(prev as u64);
    }
    if pos + n > buf.len() {
        return Err(CorruptSegment("truncated meta column".into()));
    }
    cols.flags.extend_from_slice(&buf[pos..pos + n]);
    pos += n;
    cols.tx_count.reserve(n);
    for i in 0..n {
        let low = cols.flags[i] & META_TXC_MASK;
        let c = if low == META_TXC_MASK {
            get_u64(buf, &mut pos)? as u32
        } else {
            u32::from(low)
        };
        cols.tx_count.push(c);
    }
    cols.tip.reserve(n);
    for _ in 0..n {
        let t = get_u64(buf, &mut pos)?;
        cols.tip.push(t);
    }
    cols.linked.reserve(k);
    for _ in 0..k {
        let attacker_ref = get_u64(buf, &mut pos)?;
        let pool = get_u64(buf, &mut pos)?;
        let mut details = [0u64; 3];
        for d in &mut details {
            *d = get_u64(buf, &mut pos)?;
            if *d >= m as u64 {
                return Err(CorruptSegment("linked detail index out of range".into()));
            }
        }
        cols.linked.push(LinkedColumns {
            attacker_ref,
            pool_ref: pool.checked_sub(1),
            details,
        });
    }
    cols.detail_off.reserve(m);
    let mut prev = 0u64;
    for _ in 0..m {
        prev = prev
            .checked_add(get_u64(buf, &mut pos)?)
            .ok_or_else(|| CorruptSegment("detail offset overflow".into()))?;
        cols.detail_off.push(prev);
    }
    cols.detail_slot.reserve(m);
    let mut prev = 0i64;
    for _ in 0..m {
        prev = prev
            .checked_add(get_i64(buf, &mut pos)?)
            .filter(|&s| s >= 0)
            .ok_or_else(|| CorruptSegment("detail slot column overflow".into()))?;
        cols.detail_slot.push(prev as u64);
    }
    if pos != buf.len() {
        return Err(CorruptSegment(format!(
            "{} trailing bytes after columns",
            buf.len() - pos
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_body_with_layout;
    use crate::records::{CollectedBundle, CollectedDetail};
    use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
    use sandwich_types::{Hash, Keypair, LamportDelta, Lamports, Slot};

    fn meta_for(kp: &Keypair, n: u64, mint: Pubkey, tokens: i128) -> TransactionMeta {
        TransactionMeta {
            tx_id: kp.sign(&n.to_le_bytes()),
            signer: kp.pubkey(),
            fee: Lamports(5_000),
            priority_fee: Lamports::ZERO,
            success: true,
            error: None,
            sol_deltas: vec![SolDelta {
                account: kp.pubkey(),
                delta: LamportDelta(if tokens > 0 { -1_000_000 } else { 1_000_000 }),
            }],
            token_deltas: vec![TokenDelta {
                owner: kp.pubkey(),
                mint,
                delta: tokens,
            }],
        }
    }

    fn sandwich_segment() -> SegmentData {
        let attacker = Keypair::from_label("col-attacker");
        let victim = Keypair::from_label("col-victim");
        let mint = Pubkey::derive("mint:COL");
        let metas = vec![
            meta_for(&attacker, 1, mint, 10_000),
            meta_for(&victim, 2, mint, 10_000),
            meta_for(&attacker, 3, mint, -10_000),
        ];
        let tx_ids: Vec<_> = metas.iter().map(|m| m.tx_id).collect();
        let bundle = CollectedBundle {
            bundle_id: sandwich_jito::bundle_id_of(&tx_ids),
            slot: Slot(500),
            timestamp_ms: 200_000,
            tip: Lamports(77_000),
            tx_ids,
        };
        let lone = CollectedBundle {
            bundle_id: Hash::digest(b"lone"),
            slot: Slot(510),
            timestamp_ms: 204_000,
            tip: Lamports(9_000),
            tx_ids: vec![Keypair::from_label("lone").sign(b"x")],
        };
        SegmentData {
            bundles: vec![bundle.clone(), lone],
            details: metas
                .into_iter()
                .map(|m| CollectedDetail {
                    bundle_id: bundle.bundle_id,
                    slot: Slot(500),
                    meta: m,
                })
                .collect(),
            polls: vec![],
        }
    }

    #[test]
    fn columns_roundtrip_and_flag_semantics() {
        let data = sandwich_segment();
        let (body, layout) = encode_body_with_layout(&data);
        let section = build_columns(&data, &layout);
        let mut cols = Columns::default();
        decode_columns(&section, &mut cols).unwrap();

        assert_eq!(cols.bundle_off, layout.bundle_offsets);
        assert_eq!(cols.detail_off, layout.detail_offsets);
        assert_eq!(cols.polls_offset, layout.polls_offset);
        assert_eq!(cols.polls_offset as usize, body.len() - 1, "empty polls");
        assert_eq!(cols.slot, vec![500, 510]);
        assert_eq!(cols.tx_count, vec![3, 1]);
        assert_eq!(cols.tip, vec![77_000, 9_000]);
        assert_eq!(cols.detail_slot, vec![500, 500, 500]);

        // The sandwich bundle is linked and passes both structural filters.
        assert_eq!(cols.flags[0] & META_LINKED, META_LINKED);
        assert_eq!(cols.flags[0] & META_C1, META_C1);
        assert_eq!(cols.flags[0] & META_C2, META_C2);
        // The length-1 bundle carries only its tx count.
        assert_eq!(cols.flags[1], 1);

        assert_eq!(cols.linked.len(), 1);
        let l = &cols.linked[0];
        assert_eq!(l.details, [0, 1, 2]);
        let attacker = Keypair::from_label("col-attacker").pubkey();
        assert_eq!(l.attacker_ref, layout.key_index[&attacker]);
        let mint = Pubkey::derive("mint:COL");
        assert_eq!(l.pool_ref, Some(layout.key_index[&mint]));
    }

    #[test]
    fn unlinked_and_criterion_violations_clear_flags() {
        let mut data = sandwich_segment();
        // Drop the victim's detail: the bundle is no longer linked.
        data.details.remove(1);
        let (_, layout) = encode_body_with_layout(&data);
        let section = build_columns(&data, &layout);
        let mut cols = Columns::default();
        decode_columns(&section, &mut cols).unwrap();
        assert_eq!(cols.flags[0] & META_LINKED, 0);
        assert!(cols.linked.is_empty());

        // A third distinct signer clears C1 but not LINKED.
        let mut data = sandwich_segment();
        let other = Keypair::from_label("col-other");
        data.details[2].meta.signer = other.pubkey();
        let (_, layout) = encode_body_with_layout(&data);
        let section = build_columns(&data, &layout);
        decode_columns(&section, &mut cols).unwrap();
        assert_eq!(cols.flags[0] & META_LINKED, META_LINKED);
        assert_eq!(cols.flags[0] & META_C1, 0);

        // A mint mismatch in the victim leg clears C2 and the pool ref.
        let mut data = sandwich_segment();
        data.details[1].meta.token_deltas[0].mint = Pubkey::derive("mint:OTHER");
        let (_, layout) = encode_body_with_layout(&data);
        let section = build_columns(&data, &layout);
        decode_columns(&section, &mut cols).unwrap();
        assert_eq!(cols.flags[0] & META_C2, 0);
        assert_eq!(cols.linked[0].pool_ref, None);
    }

    #[test]
    fn overflow_tx_counts_roundtrip() {
        let kp = Keypair::from_label("col-wide");
        let data = SegmentData {
            bundles: vec![CollectedBundle {
                bundle_id: Hash::digest(b"wide"),
                slot: Slot(9),
                timestamp_ms: 3_600,
                tip: Lamports(1),
                tx_ids: (0..9u64).map(|i| kp.sign(&i.to_le_bytes())).collect(),
            }],
            details: vec![],
            polls: vec![],
        };
        let (_, layout) = encode_body_with_layout(&data);
        let section = build_columns(&data, &layout);
        let mut cols = Columns::default();
        decode_columns(&section, &mut cols).unwrap();
        assert_eq!(cols.tx_count, vec![9]);
        assert_eq!(cols.flags[0] & META_TXC_MASK, META_TXC_MASK);
    }

    #[test]
    fn truncated_or_padded_section_is_rejected() {
        let data = sandwich_segment();
        let (_, layout) = encode_body_with_layout(&data);
        let section = build_columns(&data, &layout);
        let mut cols = Columns::default();
        assert!(decode_columns(&section[..section.len() - 1], &mut cols).is_err());
        let mut padded = section.clone();
        padded.push(0);
        assert!(decode_columns(&padded, &mut cols).is_err());
    }
}
