//! Read-only file mapping for zero-copy segment access.
//!
//! On Unix this is a raw `mmap(2)` of the whole file — no mapping crate
//! exists in the dependency tree, and std already links libc, so the two
//! syscalls are declared directly. Everywhere else (and for files a
//! mapping cannot cover, e.g. empty ones) it degrades to reading the file
//! into a heap buffer; callers only ever see a `&[u8]`.

use std::path::Path;

/// A read-only view over a whole file's bytes: a private file mapping
/// when the platform supports it, a heap buffer otherwise.
pub struct Mapped {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Map {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    Heap(Vec<u8>),
}

// A private read-only mapping is immutable shared memory: no interior
// mutation can happen through `&Mapped`, so moving or sharing the handle
// across threads is safe (the raw pointer is what inhibits the derive).
unsafe impl Send for Mapped {}
unsafe impl Sync for Mapped {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mapped {
    /// Map `path` read-only. Falls back to a plain read when mapping is
    /// unavailable (non-Unix targets, zero-length files, `mmap` refusal).
    pub fn open(path: &Path) -> std::io::Result<Mapped> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len > 0 && len <= usize::MAX as u64 {
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len as usize,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize != -1 {
                    // The fd can close now: the mapping keeps the pages.
                    return Ok(Mapped {
                        inner: Inner::Map {
                            ptr,
                            len: len as usize,
                        },
                    });
                }
            }
        }
        Ok(Mapped {
            inner: Inner::Heap(std::fs::read(path)?),
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Map { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Inner::Heap(v) => v,
        }
    }

    /// Whether the bytes come from an actual file mapping (false = heap
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Map { .. } => true,
            Inner::Heap(_) => false,
        }
    }
}

impl Drop for Mapped {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Map { ptr, len } = self.inner {
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

impl std::ops::Deref for Mapped {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("swmmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = Mapped::open(&path).unwrap();
        assert_eq!(&*mapped, &payload[..]);
        #[cfg(unix)]
        assert!(mapped.is_mapped());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_falls_back_to_heap() {
        let dir = std::env::temp_dir().join(format!("swmmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let mapped = Mapped::open(&path).unwrap();
        assert!(mapped.is_empty());
        assert!(!mapped.is_mapped());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Mapped::open(Path::new("/nonexistent/swmmap")).is_err());
    }
}
