//! Property tests for the segment codec: random record batches roundtrip
//! exactly, and any single flipped byte in a sealed segment surfaces as an
//! error — corruption can never reach the scan as garbage data.

use proptest::prelude::*;

use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_store::{
    codec::{decode_body, encode_body},
    segment::{decode_segment, encode_segment},
    CollectedBundle, CollectedDetail, PollRecord, SegmentData,
};
use sandwich_types::{Hash, Keypair, LamportDelta, Lamports, Pubkey, Slot};

/// Deterministically expand a compact seed tuple into a record batch.
/// (The proptest shim drives the seeds; this keeps the strategy surface
/// to plain integers while still exercising every field.)
fn build_data(
    seed: u64,
    bundle_count: usize,
    detail_count: usize,
    poll_count: usize,
) -> SegmentData {
    let kp = Keypair::from_label("prop");
    let mix = |i: u64, salt: u64| {
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(0x2545_f491_4f6c_dd1d))
            .wrapping_add(salt)
    };
    let bundles: Vec<CollectedBundle> = (0..bundle_count as u64)
        .map(|i| {
            let len = (mix(i, 1) % 5 + 1) as usize;
            CollectedBundle {
                bundle_id: Hash::digest(&mix(i, 2).to_le_bytes()),
                slot: Slot(mix(i, 3) % 1_000_000),
                timestamp_ms: mix(i, 4) % u64::from(u32::MAX),
                tip: Lamports(mix(i, 5) % 10_000_000),
                tx_ids: (0..len)
                    .map(|t| kp.sign(&mix(i, 6 + t as u64).to_le_bytes()))
                    .collect(),
            }
        })
        .collect();
    let details: Vec<CollectedDetail> = (0..detail_count as u64)
        .map(|i| CollectedDetail {
            bundle_id: Hash::digest(&mix(i, 20).to_le_bytes()),
            slot: Slot(mix(i, 21) % 1_000_000),
            meta: TransactionMeta {
                tx_id: kp.sign(&mix(i, 22).to_le_bytes()),
                signer: Pubkey::from_element(mix(i, 23) % 97),
                fee: Lamports(5_000),
                priority_fee: Lamports(mix(i, 24) % 100_000),
                success: mix(i, 25) % 4 != 0,
                error: if mix(i, 25) % 4 == 0 {
                    Some(format!("err-{}", mix(i, 26) % 10))
                } else {
                    None
                },
                sol_deltas: (0..mix(i, 27) % 4)
                    .map(|d| SolDelta {
                        account: Pubkey::from_element(mix(i, 28 + d) % 53),
                        delta: LamportDelta((mix(i, 29 + d) as i64).wrapping_rem(1 << 40)),
                    })
                    .collect(),
                token_deltas: (0..mix(i, 30) % 3)
                    .map(|d| TokenDelta {
                        owner: Pubkey::from_element(mix(i, 31 + d) % 53),
                        mint: Pubkey::from_element(mix(i, 32 + d) % 7),
                        delta: (mix(i, 33 + d) as i128)
                            .wrapping_mul(mix(i, 34 + d) as i128)
                            .wrapping_sub(i128::from(u64::MAX)),
                    })
                    .collect(),
            },
        })
        .collect();
    let polls: Vec<PollRecord> = (0..poll_count as u64)
        .map(|i| PollRecord {
            day: mix(i, 40) % 365,
            fetched: (mix(i, 41) % 50_000) as usize,
            new: (mix(i, 42) % 50_000) as usize,
            overlapped_previous: mix(i, 43) % 20 != 0,
        })
        .collect();
    SegmentData {
        bundles,
        details,
        polls,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity on arbitrary record batches.
    #[test]
    fn body_roundtrip(
        seed in any::<u64>(),
        bundles in 0usize..40,
        details in 0usize..12,
        polls in 0usize..8,
    ) {
        let data = build_data(seed, bundles, details, polls);
        let body = encode_body(&data);
        let back = decode_body(&body);
        prop_assert_eq!(back.as_ref(), Ok(&data));
    }

    /// A full segment image roundtrips, and flipping any one byte of it is
    /// rejected — by the magic check, the checksum, or the codec.
    #[test]
    fn flipped_byte_never_decodes(
        seed in any::<u64>(),
        bundles in 1usize..20,
        details in 0usize..6,
        flip_pos in any::<u64>(),
        flip_bit in 0u32..8,
    ) {
        let data = build_data(seed, bundles, details, 2);
        let (image, _) = encode_segment(&data);
        let (ok, footer) = decode_segment(&image).unwrap();
        prop_assert_eq!(&ok, &data);
        prop_assert_eq!(footer.bundles as usize, data.bundles.len());

        let mut bad = image.clone();
        let pos = (flip_pos % image.len() as u64) as usize;
        bad[pos] ^= 1 << flip_bit;
        prop_assert!(
            decode_segment(&bad).is_err(),
            "flip of bit {flip_bit} at byte {pos}/{} went unnoticed",
            image.len()
        );
    }
}
