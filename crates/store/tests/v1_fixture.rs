//! Backward-compatibility golden test: a checked-in v1 (`SWSEG01`,
//! pre-columnar) segment image must keep decoding to exactly the records
//! it was sealed from, and the v1 encoder must keep producing exactly
//! those bytes (so old stores on disk stay readable forever).
//!
//! Regenerate the fixture after an *intentional* v1 encoding change with:
//!
//! ```sh
//! REGEN_V1_FIXTURE=1 cargo test -p sandwich-store --test v1_fixture
//! ```
//!
//! An unintentional byte drift fails the golden comparison instead.

use sandwich_ledger::{SolDelta, TokenDelta, TransactionMeta};
use sandwich_store::codec::SegmentData;
use sandwich_store::records::{CollectedBundle, CollectedDetail, PollRecord};
use sandwich_store::segment::{encode_segment_v1, parse_segment};
use sandwich_store::{Columns, SegmentView};
use sandwich_types::{Hash, Keypair, LamportDelta, Lamports, Pubkey, Slot};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v1.seg");

/// The records the fixture was sealed from — everything derived from
/// labels and constants, so the image is a pure function of the encoder.
fn fixture_data() -> SegmentData {
    let attacker = Keypair::from_label("fixture:attacker");
    let victim = Keypair::from_label("fixture:victim");
    let mint = Pubkey::derive("fixture:mint");
    let trio: Vec<_> = (0..3u64).map(|i| attacker.sign(&i.to_le_bytes())).collect();
    let bundle_id = sandwich_jito::bundle_id_of(&trio);
    let solo = vec![victim.sign(b"solo")];
    let meta = |n: u64, signer: &Keypair, sol: i64, tokens: i128| TransactionMeta {
        tx_id: trio[n as usize],
        signer: signer.pubkey(),
        fee: Lamports(5_000),
        priority_fee: Lamports(100),
        success: true,
        error: None,
        sol_deltas: vec![SolDelta {
            account: signer.pubkey(),
            delta: LamportDelta(sol),
        }],
        token_deltas: vec![TokenDelta {
            owner: signer.pubkey(),
            mint,
            delta: tokens,
        }],
    };
    SegmentData {
        bundles: vec![
            CollectedBundle {
                bundle_id,
                slot: Slot(1_000),
                timestamp_ms: 400_000,
                tip: Lamports(2_000_000),
                tx_ids: trio.clone(),
            },
            CollectedBundle {
                bundle_id: Hash::digest(b"fixture:solo"),
                slot: Slot(1_010),
                timestamp_ms: 404_000,
                tip: Lamports(50_000),
                tx_ids: solo,
            },
        ],
        details: vec![
            CollectedDetail {
                bundle_id,
                slot: Slot(1_000),
                meta: meta(0, &attacker, -100_000_000_000, 10_000),
            },
            CollectedDetail {
                bundle_id,
                slot: Slot(1_000),
                meta: meta(1, &victim, -120_000_000_000, 10_000),
            },
            CollectedDetail {
                bundle_id,
                slot: Slot(1_000),
                meta: meta(2, &attacker, 115_000_000_000, -10_000),
            },
        ],
        polls: vec![PollRecord {
            day: 0,
            fetched: 2,
            new: 2,
            overlapped_previous: true,
        }],
    }
}

#[test]
fn v1_fixture_bytes_are_stable_and_decode_identically() {
    let data = fixture_data();
    let (image, footer) = encode_segment_v1(&data);

    if std::env::var("REGEN_V1_FIXTURE").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
        std::fs::write(FIXTURE, &image).unwrap();
    }
    let golden = std::fs::read(FIXTURE)
        .expect("fixture missing — run with REGEN_V1_FIXTURE=1 to create it, then check it in");

    // The encoder still produces the checked-in bytes, bit for bit.
    assert_eq!(
        golden, image,
        "v1 encoder drifted from the checked-in fixture bytes"
    );

    // The checked-in bytes still parse as v1 and decode to the records.
    let parsed = parse_segment(&golden).expect("fixture parses");
    assert_eq!(parsed.version, 1);
    assert!(parsed.columns.is_none(), "v1 has no columnar section");
    assert_eq!(parsed.footer.checksum, footer.checksum);
    assert_eq!(parsed.footer.bundles, 2);
    assert_eq!(parsed.footer.details, 3);

    // A zero-copy view opens it (heap or map), reports no columns, and
    // the materializing fallback decodes the exact records.
    let dir = std::env::temp_dir().join(format!("v1fix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("seg-00000.seg");
    std::fs::write(&path, &golden).unwrap();
    let view = SegmentView::open(&path).unwrap();
    assert_eq!(view.version(), 1);
    assert!(!view.has_columns());
    assert!(view.read_columns(&mut Columns::default()).is_err());
    assert_eq!(view.decode_all().unwrap(), data);
    std::fs::remove_dir_all(&dir).unwrap();
}
