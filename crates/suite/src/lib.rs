//! Shared helpers for the workspace's examples and integration tests.

#![warn(missing_docs)]

use std::sync::Arc;

use sandwich_dex::{create_pool_ix, AmmProgram};
use sandwich_ledger::{native_sol_mint, Bank, Instruction, TokenInstruction, TransactionBuilder};
use sandwich_types::{Keypair, Lamports, Pubkey};

/// A small ready-made market: a bank with the AMM registered, one SOL/token
/// pool, and three funded actors (attacker, victim, liquidity provider).
pub struct DemoMarket {
    /// The bank.
    pub bank: Arc<Bank>,
    /// The pool's token mint.
    pub token: Pubkey,
    /// A funded attacker identity.
    pub attacker: Keypair,
    /// A funded victim identity.
    pub victim: Keypair,
}

impl DemoMarket {
    /// Build the market: a 100 SOL / 5e12-unit pool with a 30 bps fee.
    pub fn build() -> DemoMarket {
        let bank = Arc::new(Bank::new(Keypair::from_label("demo-validator").pubkey()));
        bank.register_program(Arc::new(AmmProgram));
        let lp = Keypair::from_label("demo-lp");
        let token = Pubkey::derive("mint:DEMO");
        bank.airdrop(lp.pubkey(), Lamports::from_sol(500.0));
        let setup = TransactionBuilder::new(lp)
            .instruction(Instruction::Token(TokenInstruction::CreateMint {
                mint: token,
                decimals: 6,
                symbol: "DEMO".into(),
            }))
            .instruction(Instruction::Token(TokenInstruction::MintTo {
                mint: token,
                to: lp.pubkey(),
                amount: 10_000_000_000_000,
            }))
            .instruction(create_pool_ix(
                native_sol_mint(),
                100_000_000_000, // 100 SOL
                token,
                5_000_000_000_000,
                30,
            ))
            .build();
        let meta = bank.execute_transaction(&setup).expect("setup lands");
        assert!(meta.success, "demo market setup failed: {:?}", meta.error);

        let attacker = Keypair::from_label("demo-attacker");
        let victim = Keypair::from_label("demo-victim");
        bank.airdrop(attacker.pubkey(), Lamports::from_sol(1_000.0));
        bank.airdrop(victim.pubkey(), Lamports::from_sol(100.0));
        DemoMarket {
            bank,
            token,
            attacker,
            victim,
        }
    }

    /// Current pool state.
    pub fn pool(&self) -> sandwich_dex::PoolState {
        sandwich_dex::pool_state(&self.bank, &native_sol_mint(), &self.token).expect("pool")
    }
}
