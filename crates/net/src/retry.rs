//! Retry with exponential backoff, decorrelated jitter, and `Retry-After`.
//!
//! The paper's collector ran for four months through "instability or
//! changes to the Jito interface, bugs, and other transient errors" (§3.1);
//! the collector wraps every fetch in this policy so one 503 never kills a
//! polling epoch. Jitter desynchronizes retry storms; a server pacing hint
//! (429 + `Retry-After`) overrides the computed backoff.

use std::future::Future;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retry policy: attempts and backoff shape.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum attempts (≥ 1).
    pub max_attempts: u32,
    /// Delay before the second attempt.
    pub base_delay: Duration,
    /// Multiplier applied per subsequent attempt.
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Seed for decorrelated-jitter delays. `None` keeps the deterministic
    /// exponential ladder (synchronized retries — only sensible in tests).
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            factor: 2.0,
            max_delay: Duration::from_secs(5),
            jitter_seed: Some(0x5eed_0001),
        }
    }
}

impl RetryPolicy {
    /// Deterministic (unjittered) delay before attempt `n` (0-based;
    /// attempt 0 has no delay).
    pub fn delay_for_attempt(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let ms = self.base_delay.as_millis() as f64 * self.factor.powi(attempt as i32 - 1);
        Duration::from_millis(ms as u64).min(self.max_delay)
    }
}

/// How a failed attempt should be handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryClass {
    /// Not worth retrying; surface the error immediately.
    Permanent,
    /// Retry after the policy's (jittered) backoff delay.
    Transient,
    /// Retry after the server's pacing hint instead of the computed backoff
    /// (still capped at the policy's `max_delay`).
    AfterHint(Duration),
}

/// A stateful delay sequence: decorrelated jitter when the policy carries a
/// seed, the deterministic exponential ladder otherwise.
///
/// Decorrelated jitter (`delay = clamp(base, min(cap, uniform(base,
/// prev·3)))`) keeps every delay within `[base_delay, max_delay]` while
/// decorrelating concurrent clients — the property the suite's proptest
/// asserts.
#[derive(Debug)]
pub struct BackoffSchedule {
    policy: RetryPolicy,
    rng: Option<StdRng>,
    prev: Duration,
    attempt: u32,
}

impl BackoffSchedule {
    /// A fresh schedule for `policy`.
    pub fn new(policy: RetryPolicy) -> Self {
        BackoffSchedule {
            rng: policy.jitter_seed.map(StdRng::seed_from_u64),
            prev: policy.base_delay,
            attempt: 0,
            policy,
        }
    }

    /// The delay to sleep before the next retry. A `hint` (from
    /// `Retry-After`) overrides the computed backoff, capped at
    /// `max_delay`.
    pub fn next_delay(&mut self, hint: Option<Duration>) -> Duration {
        self.attempt += 1;
        if let Some(hint) = hint {
            let d = hint.min(self.policy.max_delay);
            self.prev = d.max(self.policy.base_delay);
            return d;
        }
        match &mut self.rng {
            Some(rng) => {
                let base = self.policy.base_delay.as_millis() as u64;
                let cap = self.policy.max_delay.as_millis() as u64;
                let hi = (self.prev.as_millis() as u64).saturating_mul(3).max(base);
                let ms = if hi > base {
                    rng.gen_range(base..hi + 1)
                } else {
                    base
                };
                let ms = ms.clamp(base, cap.max(base));
                self.prev = Duration::from_millis(ms);
                self.prev
            }
            None => self.policy.delay_for_attempt(self.attempt),
        }
    }
}

/// Outcome of a retried operation.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    /// The final result.
    pub result: Result<T, E>,
    /// Total attempts made.
    pub attempts: u32,
}

/// Run `op` until it succeeds, the error is permanent, or attempts run out.
///
/// `is_transient` decides whether an error is worth retrying. For
/// `Retry-After`-aware behaviour use [`retry_classified`].
pub async fn retry<T, E, F, Fut, P>(
    policy: RetryPolicy,
    op: F,
    is_transient: P,
) -> RetryOutcome<T, E>
where
    F: FnMut() -> Fut,
    Fut: Future<Output = Result<T, E>>,
    P: Fn(&E) -> bool,
{
    retry_classified(policy, op, |e| {
        if is_transient(e) {
            RetryClass::Transient
        } else {
            RetryClass::Permanent
        }
    })
    .await
}

/// Run `op` until it succeeds, the error is classified permanent, or
/// attempts run out; honors [`RetryClass::AfterHint`] pacing hints.
pub async fn retry_classified<T, E, F, Fut, C>(
    policy: RetryPolicy,
    mut op: F,
    classify: C,
) -> RetryOutcome<T, E>
where
    F: FnMut() -> Fut,
    Fut: Future<Output = Result<T, E>>,
    C: Fn(&E) -> RetryClass,
{
    let mut schedule = BackoffSchedule::new(policy);
    let mut attempts = 0;
    let mut hint: Option<Duration> = None;
    loop {
        if attempts > 0 {
            let delay = schedule.next_delay(hint.take());
            if !delay.is_zero() {
                tokio::time::sleep(delay).await;
            }
        }
        attempts += 1;
        match op().await {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts,
                }
            }
            Err(e) => {
                let class = classify(&e);
                if attempts >= policy.max_attempts || class == RetryClass::Permanent {
                    return RetryOutcome {
                        result: Err(e),
                        attempts,
                    };
                }
                if let RetryClass::AfterHint(d) = class {
                    hint = Some(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            factor: 2.0,
            max_delay: Duration::from_millis(4),
            jitter_seed: None,
        }
    }

    #[tokio::test(start_paused = true)]
    async fn succeeds_after_transient_failures() {
        let calls = AtomicU32::new(0);
        let outcome = retry(
            fast_policy(),
            || {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                async move {
                    if n < 2 {
                        Err("transient")
                    } else {
                        Ok(n)
                    }
                }
            },
            |_| true,
        )
        .await;
        assert_eq!(outcome.result.unwrap(), 2);
        assert_eq!(outcome.attempts, 3);
    }

    #[tokio::test(start_paused = true)]
    async fn permanent_error_stops_immediately() {
        let calls = AtomicU32::new(0);
        let outcome: RetryOutcome<(), &str> = retry(
            fast_policy(),
            || {
                calls.fetch_add(1, Ordering::SeqCst);
                async { Err("permanent") }
            },
            |_| false,
        )
        .await;
        assert!(outcome.result.is_err());
        assert_eq!(outcome.attempts, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[tokio::test(start_paused = true)]
    async fn gives_up_after_max_attempts() {
        let outcome: RetryOutcome<(), &str> =
            retry(fast_policy(), || async { Err("transient") }, |_| true).await;
        assert!(outcome.result.is_err());
        assert_eq!(outcome.attempts, 4);
    }

    #[test]
    fn backoff_shape() {
        let p = fast_policy();
        assert_eq!(p.delay_for_attempt(0), Duration::ZERO);
        assert_eq!(p.delay_for_attempt(1), Duration::from_millis(1));
        assert_eq!(p.delay_for_attempt(2), Duration::from_millis(2));
        assert_eq!(p.delay_for_attempt(3), Duration::from_millis(4));
        assert_eq!(p.delay_for_attempt(10), Duration::from_millis(4)); // capped
    }

    #[test]
    fn jittered_delays_stay_within_bounds() {
        let policy = RetryPolicy {
            jitter_seed: Some(7),
            ..RetryPolicy::default()
        };
        let mut schedule = BackoffSchedule::new(policy);
        for _ in 0..64 {
            let d = schedule.next_delay(None);
            assert!(d >= policy.base_delay, "{d:?} below base");
            assert!(d <= policy.max_delay, "{d:?} above cap");
        }
    }

    #[test]
    fn retry_after_hint_overrides_backoff_and_is_capped() {
        let policy = RetryPolicy {
            jitter_seed: Some(7),
            ..RetryPolicy::default()
        };
        let mut schedule = BackoffSchedule::new(policy);
        let hinted = schedule.next_delay(Some(Duration::from_millis(123)));
        assert_eq!(hinted, Duration::from_millis(123));
        let capped = schedule.next_delay(Some(Duration::from_secs(3600)));
        assert_eq!(capped, policy.max_delay);
    }

    #[tokio::test(start_paused = true)]
    async fn classified_retry_honors_hint_then_succeeds() {
        let calls = AtomicU32::new(0);
        let outcome = retry_classified(
            fast_policy(),
            || {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                async move {
                    if n == 0 {
                        Err("rate limited")
                    } else {
                        Ok(n)
                    }
                }
            },
            |_| RetryClass::AfterHint(Duration::from_millis(2)),
        )
        .await;
        assert_eq!(outcome.result.unwrap(), 1);
        assert_eq!(outcome.attempts, 2);
    }
}
