//! Retry with exponential backoff.
//!
//! The paper's collector ran for four months through "instability or
//! changes to the Jito interface, bugs, and other transient errors" (§3.1);
//! the collector wraps every fetch in this policy so one 503 never kills a
//! polling epoch.

use std::future::Future;
use std::time::Duration;

/// Retry policy: attempts and backoff shape.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum attempts (≥ 1).
    pub max_attempts: u32,
    /// Delay before the second attempt.
    pub base_delay: Duration,
    /// Multiplier applied per subsequent attempt.
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            factor: 2.0,
            max_delay: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// Delay before attempt `n` (0-based; attempt 0 has no delay).
    pub fn delay_for_attempt(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let ms = self.base_delay.as_millis() as f64 * self.factor.powi(attempt as i32 - 1);
        Duration::from_millis(ms as u64).min(self.max_delay)
    }
}

/// Outcome of a retried operation.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    /// The final result.
    pub result: Result<T, E>,
    /// Total attempts made.
    pub attempts: u32,
}

/// Run `op` until it succeeds, the error is permanent, or attempts run out.
///
/// `is_transient` decides whether an error is worth retrying.
pub async fn retry<T, E, F, Fut, P>(
    policy: RetryPolicy,
    mut op: F,
    is_transient: P,
) -> RetryOutcome<T, E>
where
    F: FnMut() -> Fut,
    Fut: Future<Output = Result<T, E>>,
    P: Fn(&E) -> bool,
{
    let mut attempts = 0;
    loop {
        let delay = policy.delay_for_attempt(attempts);
        if !delay.is_zero() {
            tokio::time::sleep(delay).await;
        }
        attempts += 1;
        match op().await {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts,
                }
            }
            Err(e) if attempts < policy.max_attempts && is_transient(&e) => continue,
            Err(e) => {
                return RetryOutcome {
                    result: Err(e),
                    attempts,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            factor: 2.0,
            max_delay: Duration::from_millis(4),
        }
    }

    #[tokio::test(start_paused = true)]
    async fn succeeds_after_transient_failures() {
        let calls = AtomicU32::new(0);
        let outcome = retry(
            fast_policy(),
            || {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                async move {
                    if n < 2 {
                        Err("transient")
                    } else {
                        Ok(n)
                    }
                }
            },
            |_| true,
        )
        .await;
        assert_eq!(outcome.result.unwrap(), 2);
        assert_eq!(outcome.attempts, 3);
    }

    #[tokio::test(start_paused = true)]
    async fn permanent_error_stops_immediately() {
        let calls = AtomicU32::new(0);
        let outcome: RetryOutcome<(), &str> = retry(
            fast_policy(),
            || {
                calls.fetch_add(1, Ordering::SeqCst);
                async { Err("permanent") }
            },
            |_| false,
        )
        .await;
        assert!(outcome.result.is_err());
        assert_eq!(outcome.attempts, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[tokio::test(start_paused = true)]
    async fn gives_up_after_max_attempts() {
        let outcome: RetryOutcome<(), &str> =
            retry(fast_policy(), || async { Err("transient") }, |_| true).await;
        assert!(outcome.result.is_err());
        assert_eq!(outcome.attempts, 4);
    }

    #[test]
    fn backoff_shape() {
        let p = fast_policy();
        assert_eq!(p.delay_for_attempt(0), Duration::ZERO);
        assert_eq!(p.delay_for_attempt(1), Duration::from_millis(1));
        assert_eq!(p.delay_for_attempt(2), Duration::from_millis(2));
        assert_eq!(p.delay_for_attempt(3), Duration::from_millis(4));
        assert_eq!(p.delay_for_attempt(10), Duration::from_millis(4)); // capped
    }
}
