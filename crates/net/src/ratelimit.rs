//! Token-bucket rate limiting.
//!
//! Used on both sides of the measurement boundary: the explorer API throttles
//! clients (real RPC providers cap "compute units", paper §2.1), and the
//! collector throttles itself to the paper's two-minute etiquette (§3.1,
//! Appendix A).

use std::time::Duration;

use parking_lot::Mutex;

/// A token bucket over an abstract millisecond clock.
///
/// The clock is passed in on each call so simulated time works: the
/// collector runs on a virtual clock that covers 120 days in seconds.
#[derive(Debug)]
pub struct TokenBucket {
    inner: Mutex<BucketState>,
    capacity: f64,
    refill_per_ms: f64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket holding at most `capacity` tokens, refilling at
    /// `refill_per_sec` tokens per second, starting full at `now_ms`.
    pub fn new(capacity: u32, refill_per_sec: f64, now_ms: u64) -> Self {
        TokenBucket {
            inner: Mutex::new(BucketState {
                tokens: capacity as f64,
                last_ms: now_ms,
            }),
            capacity: capacity as f64,
            refill_per_ms: refill_per_sec / 1000.0,
        }
    }

    /// Try to take one token at time `now_ms`. Returns `true` on success.
    pub fn try_acquire(&self, now_ms: u64) -> bool {
        self.try_acquire_n(now_ms, 1)
    }

    /// Try to take `n` tokens at time `now_ms`.
    pub fn try_acquire_n(&self, now_ms: u64, n: u32) -> bool {
        let mut st = self.inner.lock();
        let elapsed = now_ms.saturating_sub(st.last_ms);
        st.tokens = (st.tokens + elapsed as f64 * self.refill_per_ms).min(self.capacity);
        st.last_ms = st.last_ms.max(now_ms);
        if st.tokens >= n as f64 {
            st.tokens -= n as f64;
            true
        } else {
            false
        }
    }

    /// How long until `n` tokens will be available, at time `now_ms`.
    pub fn time_until_available(&self, now_ms: u64, n: u32) -> Duration {
        let st = self.inner.lock();
        let elapsed = now_ms.saturating_sub(st.last_ms);
        let tokens = (st.tokens + elapsed as f64 * self.refill_per_ms).min(self.capacity);
        if tokens >= n as f64 {
            return Duration::ZERO;
        }
        let deficit = n as f64 - tokens;
        Duration::from_millis((deficit / self.refill_per_ms).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_depletes() {
        let b = TokenBucket::new(3, 1.0, 0);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(0));
    }

    #[test]
    fn refills_over_time() {
        let b = TokenBucket::new(1, 2.0, 0); // 2 tokens/sec
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(100)); // 0.2 tokens — not enough
        assert!(b.try_acquire(600)); // 1.2 tokens
    }

    #[test]
    fn capacity_caps_refill() {
        let b = TokenBucket::new(2, 1000.0, 0);
        // After a long idle period, still only 2 tokens.
        assert!(b.try_acquire_n(1_000_000, 2));
        assert!(!b.try_acquire(1_000_000));
    }

    #[test]
    fn time_until_available_estimates() {
        let b = TokenBucket::new(1, 1.0, 0); // 1 token/sec
        assert!(b.try_acquire(0));
        let wait = b.time_until_available(0, 1);
        assert_eq!(wait, Duration::from_millis(1000));
        assert_eq!(b.time_until_available(1_000, 1), Duration::ZERO);
    }

    #[test]
    fn clock_going_backwards_is_harmless() {
        let b = TokenBucket::new(1, 1.0, 1_000);
        assert!(b.try_acquire(1_000));
        // An earlier timestamp neither panics nor mints tokens.
        assert!(!b.try_acquire(500));
    }
}
