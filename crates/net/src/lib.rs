//! Minimal async networking for the measurement boundary: a from-scratch
//! HTTP/1.1 server and client over tokio, token-bucket rate limiting, and
//! retry with backoff.
//!
//! The explorer API (server side) and the collector (client side) exercise
//! the paper's data-collection methodology over a real TCP socket.

#![warn(missing_docs)]

pub mod breaker;
pub mod client;
pub mod http;
pub mod metrics;
pub mod ratelimit;
pub mod retry;
pub mod server;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{ClientError, ClientTimeouts, HttpClient};
pub use http::{HttpError, Method, Request, Response, WireFault};
pub use metrics::metrics_response;
pub use ratelimit::TokenBucket;
pub use retry::{retry, retry_classified, BackoffSchedule, RetryClass, RetryOutcome, RetryPolicy};
pub use server::{Router, Server};
