//! A small async HTTP client (one connection per request).
//!
//! The collector's polling cadence is minutes, so connection reuse buys
//! nothing; one short-lived connection per request keeps failure modes
//! simple and observable.

use std::net::SocketAddr;

use tokio::io::{AsyncReadExt, AsyncWriteExt, BufReader};
use tokio::net::TcpStream;

use crate::http::{HttpError, Response};

/// Read one response from a buffered stream.
async fn read_response(
    reader: &mut BufReader<tokio::net::tcp::OwnedReadHalf>,
) -> Result<Response, HttpError> {
    use tokio::io::AsyncBufReadExt;

    let mut line = String::new();
    let n = reader.read_line(&mut line).await?;
    if n == 0 {
        return Err(HttpError::ConnectionClosed);
    }
    let mut parts = line.trim_end().splitn(3, ' ');
    let version = parts.next().ok_or(HttpError::Malformed("status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("version"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("status code"))?;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut hline = String::new();
        let n = reader.read_line(&mut hline).await?;
        if n == 0 {
            return Err(HttpError::Malformed("eof in headers"));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (k, v) = hline
            .split_once(':')
            .ok_or(HttpError::Malformed("header"))?;
        let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
        if k == "content-length" {
            content_length = v
                .parse()
                .map_err(|_| HttpError::Malformed("content-length"))?;
        }
        headers.push((k, v));
    }
    if content_length > crate::http::MAX_BODY {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: crate::http::MAX_BODY,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).await?;
    Ok(Response {
        status,
        headers,
        body: body.into(),
    })
}

/// An HTTP client bound to one server address.
#[derive(Clone, Copy, Debug)]
pub struct HttpClient {
    addr: SocketAddr,
}

impl HttpClient {
    /// Client for `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient { addr }
    }

    async fn request(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<Vec<u8>>,
    ) -> Result<Response, HttpError> {
        let stream = TcpStream::connect(self.addr).await?;
        let (read, mut write) = stream.into_split();

        let body = body.unwrap_or_default();
        let head = format!(
            "{method} {path_and_query} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len(),
        );
        write.write_all(head.as_bytes()).await?;
        write.write_all(&body).await?;
        write.flush().await?;

        let mut reader = BufReader::new(read);
        read_response(&mut reader).await
    }

    /// GET a path (may include a query string).
    pub async fn get(&self, path_and_query: &str) -> Result<Response, HttpError> {
        self.request("GET", path_and_query, None).await
    }

    /// POST raw bytes.
    pub async fn post(&self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.request("POST", path, Some(body)).await
    }

    /// POST a JSON value and decode a JSON response, enforcing 200.
    pub async fn post_json<Req: serde::Serialize, Resp: serde::de::DeserializeOwned>(
        &self,
        path: &str,
        req: &Req,
    ) -> Result<Resp, ClientError> {
        let body = serde_json::to_vec(req).expect("serializable request");
        let resp = self.post(path, body).await?;
        if resp.status != 200 {
            return Err(ClientError::Status {
                status: resp.status,
                body: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        resp.body_json().map_err(ClientError::Decode)
    }

    /// GET a path and decode a JSON response, enforcing 200.
    pub async fn get_json<Resp: serde::de::DeserializeOwned>(
        &self,
        path_and_query: &str,
    ) -> Result<Resp, ClientError> {
        let resp = self.get(path_and_query).await?;
        if resp.status != 200 {
            return Err(ClientError::Status {
                status: resp.status,
                body: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        resp.body_json().map_err(ClientError::Decode)
    }
}

/// Client-side errors including non-200 statuses.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Http(HttpError),
    /// Server answered with a non-200 status.
    Status {
        /// The status code.
        status: u16,
        /// Body text for diagnostics.
        body: String,
    },
    /// Body failed to decode as the expected JSON shape.
    Decode(serde_json::Error),
}

impl ClientError {
    /// True for failures worth retrying (transport errors and 5xx/429).
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Http(_) => true,
            ClientError::Status { status, .. } => *status == 429 || *status >= 500,
            ClientError::Decode(_) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Http(e) => write!(f, "http error: {e}"),
            ClientError::Status { status, body } => write!(f, "status {status}: {body}"),
            ClientError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Http(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(ClientError::Status {
            status: 503,
            body: String::new()
        }
        .is_transient());
        assert!(ClientError::Status {
            status: 429,
            body: String::new()
        }
        .is_transient());
        assert!(!ClientError::Status {
            status: 400,
            body: String::new()
        }
        .is_transient());
        assert!(ClientError::Http(HttpError::ConnectionClosed).is_transient());
    }
}
