//! A small async HTTP client (one connection per request).
//!
//! The collector's polling cadence is minutes, so connection reuse buys
//! nothing; one short-lived connection per request keeps failure modes
//! simple and observable.

use std::net::SocketAddr;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt, BufReader};
use tokio::net::TcpStream;

use crate::http::{HttpError, Response, WireFault};

/// Read one response from a buffered stream.
async fn read_response(
    reader: &mut BufReader<tokio::net::tcp::OwnedReadHalf>,
) -> Result<Response, HttpError> {
    use tokio::io::AsyncBufReadExt;

    let mut line = String::new();
    let n = reader.read_line(&mut line).await?;
    if n == 0 {
        return Err(HttpError::ConnectionClosed);
    }
    let mut parts = line.trim_end().splitn(3, ' ');
    let version = parts.next().ok_or(HttpError::Malformed("status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("version"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("status code"))?;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut hline = String::new();
        let n = reader.read_line(&mut hline).await?;
        if n == 0 {
            return Err(HttpError::Malformed("eof in headers"));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (k, v) = hline
            .split_once(':')
            .ok_or(HttpError::Malformed("header"))?;
        let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
        if k == "content-length" {
            content_length = v
                .parse()
                .map_err(|_| HttpError::Malformed("content-length"))?;
        }
        headers.push((k, v));
    }
    if content_length > crate::http::MAX_BODY {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: crate::http::MAX_BODY,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).await?;
    Ok(Response {
        status,
        headers,
        body: body.into(),
        wire_fault: WireFault::None,
    })
}

/// Per-request deadlines for [`HttpClient`].
///
/// Without these a single stalled response (headers sent, body never
/// arrives) would block the caller forever; with them the worst case is
/// `total` per attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientTimeouts {
    /// Deadline for establishing the TCP connection.
    pub connect: Duration,
    /// Deadline for the whole request: connect + write + read.
    pub total: Duration,
}

impl Default for ClientTimeouts {
    fn default() -> Self {
        ClientTimeouts {
            connect: Duration::from_secs(2),
            total: Duration::from_secs(10),
        }
    }
}

/// An HTTP client bound to one server address.
#[derive(Clone, Copy, Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    timeouts: ClientTimeouts,
}

impl HttpClient {
    /// Client for `addr` with default deadlines.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            timeouts: ClientTimeouts::default(),
        }
    }

    /// Replace the per-request deadlines.
    pub fn with_timeouts(mut self, timeouts: ClientTimeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// The configured deadlines.
    pub fn timeouts(&self) -> ClientTimeouts {
        self.timeouts
    }

    async fn request(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<Vec<u8>>,
    ) -> Result<Response, HttpError> {
        match tokio::time::timeout(
            self.timeouts.total,
            self.request_inner(method, path_and_query, body),
        )
        .await
        {
            Ok(result) => result,
            Err(_) => Err(HttpError::TimedOut { phase: "request" }),
        }
    }

    async fn request_inner(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<Vec<u8>>,
    ) -> Result<Response, HttpError> {
        let stream = match tokio::time::timeout(
            self.timeouts.connect,
            TcpStream::connect(self.addr),
        )
        .await
        {
            Ok(connected) => connected?,
            Err(_) => return Err(HttpError::TimedOut { phase: "connect" }),
        };
        let (read, mut write) = stream.into_split();

        let body = body.unwrap_or_default();
        let head = format!(
            "{method} {path_and_query} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len(),
        );
        write.write_all(head.as_bytes()).await?;
        write.write_all(&body).await?;
        write.flush().await?;

        let mut reader = BufReader::new(read);
        read_response(&mut reader).await
    }

    /// GET a path (may include a query string).
    pub async fn get(&self, path_and_query: &str) -> Result<Response, HttpError> {
        self.request("GET", path_and_query, None).await
    }

    /// POST raw bytes.
    pub async fn post(&self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.request("POST", path, Some(body)).await
    }

    /// POST a JSON value and decode a JSON response, enforcing 200.
    pub async fn post_json<Req: serde::Serialize, Resp: serde::de::DeserializeOwned>(
        &self,
        path: &str,
        req: &Req,
    ) -> Result<Resp, ClientError> {
        let body = serde_json::to_vec(req).expect("serializable request");
        let resp = self.post(path, body).await?;
        if resp.status != 200 {
            return Err(ClientError::from_status(&resp));
        }
        resp.body_json().map_err(ClientError::Decode)
    }

    /// GET a path and decode a JSON response, enforcing 200.
    pub async fn get_json<Resp: serde::de::DeserializeOwned>(
        &self,
        path_and_query: &str,
    ) -> Result<Resp, ClientError> {
        let resp = self.get(path_and_query).await?;
        if resp.status != 200 {
            return Err(ClientError::from_status(&resp));
        }
        resp.body_json().map_err(ClientError::Decode)
    }
}

/// The server's pacing hint, if any: `retry-after-ms` (milliseconds,
/// preferred for sub-second pacing) or the standard `retry-after` (seconds).
fn retry_after_of(resp: &Response) -> Option<Duration> {
    if let Some(ms) = resp
        .header_value("retry-after-ms")
        .and_then(|v| v.parse::<u64>().ok())
    {
        return Some(Duration::from_millis(ms));
    }
    resp.header_value("retry-after")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
}

/// Client-side errors including non-200 statuses.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Http(HttpError),
    /// A connect or whole-request deadline elapsed.
    TimedOut {
        /// Which phase of the request hit its deadline.
        phase: &'static str,
    },
    /// Server answered with a non-200 status.
    Status {
        /// The status code.
        status: u16,
        /// Body text for diagnostics.
        body: String,
        /// Server pacing hint from `retry-after`/`retry-after-ms` headers.
        retry_after: Option<Duration>,
    },
    /// Body failed to decode as the expected JSON shape.
    Decode(serde_json::Error),
}

impl ClientError {
    fn from_status(resp: &Response) -> Self {
        ClientError::Status {
            status: resp.status,
            body: String::from_utf8_lossy(&resp.body).into_owned(),
            retry_after: retry_after_of(resp),
        }
    }

    /// True for failures worth retrying (transport errors, timeouts, and
    /// 5xx/429 statuses).
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Http(_) | ClientError::TimedOut { .. } => true,
            ClientError::Status { status, .. } => *status == 429 || *status >= 500,
            ClientError::Decode(_) => false,
        }
    }

    /// The server's pacing hint, when this error carries one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Status { retry_after, .. } => *retry_after,
            _ => None,
        }
    }

    /// True when a client-side deadline caused this error.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ClientError::TimedOut { .. } | ClientError::Http(HttpError::TimedOut { .. })
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Http(e) => write!(f, "http error: {e}"),
            ClientError::TimedOut { phase } => write!(f, "timed out during {phase}"),
            ClientError::Status { status, body, .. } => write!(f, "status {status}: {body}"),
            ClientError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        match e {
            HttpError::TimedOut { phase } => ClientError::TimedOut { phase },
            other => ClientError::Http(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status_err(status: u16) -> ClientError {
        ClientError::Status {
            status,
            body: String::new(),
            retry_after: None,
        }
    }

    #[test]
    fn transient_classification() {
        assert!(status_err(503).is_transient());
        assert!(status_err(429).is_transient());
        assert!(!status_err(400).is_transient());
        assert!(ClientError::Http(HttpError::ConnectionClosed).is_transient());
        assert!(ClientError::TimedOut { phase: "request" }.is_transient());
    }

    #[test]
    fn retry_after_header_parsing() {
        let resp = Response::text(429, "slow down").header("retry-after", "2");
        let err = ClientError::from_status(&resp);
        assert_eq!(err.retry_after(), Some(Duration::from_secs(2)));

        // Millisecond header wins over the seconds one.
        let resp = Response::text(429, "slow down")
            .header("retry-after", "2")
            .header("retry-after-ms", "150");
        let err = ClientError::from_status(&resp);
        assert_eq!(err.retry_after(), Some(Duration::from_millis(150)));

        let resp = Response::text(503, "oops");
        assert_eq!(ClientError::from_status(&resp).retry_after(), None);
    }
}
