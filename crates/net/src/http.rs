//! Minimal HTTP/1.1 message types, parsing, and serialization.
//!
//! Implements just enough of RFC 9112 for the explorer API and collector:
//! request line + headers + `Content-Length` bodies, query strings, and
//! keep-alive. Chunked encoding and multiline headers are intentionally out
//! of scope and are rejected rather than mis-parsed.

use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;
use tokio::io::{AsyncBufReadExt, AsyncReadExt, AsyncWriteExt, BufReader};
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};

/// Errors from the HTTP layer.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer sent something that is not valid HTTP/1.1.
    Malformed(&'static str),
    /// The peer closed the connection cleanly before a message started.
    ConnectionClosed,
    /// Message body larger than the configured limit.
    BodyTooLarge {
        /// Declared length.
        declared: usize,
        /// Allowed maximum.
        limit: usize,
    },
    /// A client-side deadline elapsed before the operation finished.
    TimedOut {
        /// Which phase of the request hit its deadline.
        phase: &'static str,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed http: {what}"),
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::TimedOut { phase } => write!(f, "timed out during {phase}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Largest accepted message body (16 MiB — bundle pages are large).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// HTTP request methods we support.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }

    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Path without the query string, e.g. `/api/v1/bundles`.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Path parameters captured by `{name}` route segments, percent-decoded.
    pub params: HashMap<String, String>,
    /// Headers, keys lower-cased.
    pub headers: HashMap<String, String>,
    /// Raw body bytes.
    pub body: Bytes,
}

impl Request {
    /// A query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// A path parameter captured by a `{name}` route segment, if present.
    pub fn path_param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// A header value (key is matched case-insensitively).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Whether the client asked to keep the connection open.
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// A connection-level fault the server applies while writing a response.
///
/// Handlers attach these to otherwise-normal responses so the fault
/// injection plan can exercise failure modes that live below HTTP
/// semantics: dropped connections, stalled bodies, truncated payloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WireFault {
    /// No fault: write the response normally.
    #[default]
    None,
    /// Close the connection without writing anything (hard outage).
    Drop,
    /// Write the status line and headers (declaring the full body length),
    /// then never send the body — the connection stays open until server
    /// shutdown, so only a client-side deadline can recover.
    StallAfterHeaders,
    /// Declare the full body length but send only this many bytes, then
    /// close the connection mid-body.
    TruncateBody(usize),
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in insertion order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Bytes,
    /// Connection-level fault to apply while writing (fault injection).
    pub wire_fault: WireFault,
}

impl Response {
    /// A response with a status and body.
    pub fn new(status: u16, body: impl Into<Bytes>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            wire_fault: WireFault::None,
        }
    }

    /// JSON 200 response from a serializable value.
    pub fn json<T: serde::Serialize>(value: &T) -> Self {
        Self::json_with_status(200, value)
    }

    /// JSON response with an explicit status.
    ///
    /// A value that fails to serialize becomes a 500 — a handler must never
    /// panic (and take its connection down) over a response body.
    pub fn json_with_status<T: serde::Serialize>(status: u16, value: &T) -> Self {
        match serde_json::to_vec(value) {
            Ok(body) => Response::new(status, body).header("content-type", "application/json"),
            Err(e) => Response::text(500, format!("response serialization failed: {e}")),
        }
    }

    /// Plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status, body.into().into_bytes())
            .header("content-type", "text/plain; charset=utf-8")
    }

    /// Add a header.
    pub fn header(mut self, key: &str, value: &str) -> Self {
        self.headers.push((key.to_string(), value.to_string()));
        self
    }

    /// Attach a connection-level fault to apply while writing.
    pub fn with_wire_fault(mut self, fault: WireFault) -> Self {
        self.wire_fault = fault;
        self
    }

    /// Find a header value (case-insensitive).
    pub fn header_value(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Decode the body as JSON.
    pub fn body_json<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Reason phrase for common status codes.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Percent-decode a URL component (`%xx` and `+`).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(bytes[i]);
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse a query string into a map.
pub fn parse_query(qs: &str) -> HashMap<String, String> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Read one request from a buffered socket half.
pub async fn read_request(reader: &mut BufReader<OwnedReadHalf>) -> Result<Request, HttpError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).await?;
    if n == 0 {
        return Err(HttpError::ConnectionClosed);
    }
    let line = line.trim_end();
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(HttpError::Malformed("method"))?;
    let target = parts.next().ok_or(HttpError::Malformed("target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("version"));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), HashMap::new()),
    };

    let mut headers = HashMap::new();
    loop {
        let mut hline = String::new();
        let n = reader.read_line(&mut hline).await?;
        if n == 0 {
            return Err(HttpError::Malformed("eof in headers"));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (k, v) = hline
            .split_once(':')
            .ok_or(HttpError::Malformed("header"))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }

    if headers.contains_key("transfer-encoding") {
        return Err(HttpError::Malformed("chunked encoding unsupported"));
    }

    let body = match headers.get("content-length") {
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| HttpError::Malformed("content-length"))?;
            if len > MAX_BODY {
                return Err(HttpError::BodyTooLarge {
                    declared: len,
                    limit: MAX_BODY,
                });
            }
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf).await?;
            Bytes::from(buf)
        }
        None => Bytes::new(),
    };

    Ok(Request {
        method,
        path,
        query,
        params: HashMap::new(),
        headers,
        body,
    })
}

/// Serialize the status line and headers (always declaring the full body
/// length, even when a wire fault will withhold part of it).
pub fn response_head(response: &Response, keep_alive: bool) -> String {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        Response::reason(response.status),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in &response.headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head
}

/// Write a response to a socket half, honoring [`WireFault::TruncateBody`]
/// (the `Drop` and `StallAfterHeaders` faults are connection-scoped and
/// handled by the server loop).
pub async fn write_response(
    writer: &mut OwnedWriteHalf,
    response: &Response,
    keep_alive: bool,
) -> Result<(), HttpError> {
    let head = response_head(response, keep_alive);
    writer.write_all(head.as_bytes()).await?;
    match response.wire_fault {
        WireFault::TruncateBody(n) => {
            let n = n.min(response.body.len());
            writer.write_all(&response.body[..n]).await?;
        }
        _ => writer.write_all(&response.body).await?,
    }
    writer.flush().await?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_decodes() {
        let q = parse_query("limit=200&name=hello%20world&flag&plus=a+b");
        assert_eq!(q.get("limit").unwrap(), "200");
        assert_eq!(q.get("name").unwrap(), "hello world");
        assert_eq!(q.get("flag").unwrap(), "");
        assert_eq!(q.get("plus").unwrap(), "a b");
    }

    #[test]
    fn percent_decode_edge_cases() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("trailing%2"), "trailing%2"); // malformed kept
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode(""), "");
    }

    #[test]
    fn response_json_shape() {
        #[derive(serde::Serialize)]
        struct Payload {
            ok: bool,
        }
        let r = Response::json(&Payload { ok: true });
        assert_eq!(r.status, 200);
        assert_eq!(r.header_value("content-type"), Some("application/json"));
        assert_eq!(&r.body[..], br#"{"ok":true}"#);
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(Response::reason(200), "OK");
        assert_eq!(Response::reason(429), "Too Many Requests");
        assert_eq!(Response::reason(599), "Unknown");
    }

    #[tokio::test]
    async fn request_roundtrip_over_socket() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();

        let server = tokio::spawn(async move {
            let (stream, _) = listener.accept().await.unwrap();
            let (read, _write) = stream.into_split();
            let mut reader = BufReader::new(read);
            read_request(&mut reader).await.unwrap()
        });

        let mut client = tokio::net::TcpStream::connect(addr).await.unwrap();
        client
            .write_all(b"POST /api/v1/transactions?batch=3 HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world")
            .await
            .unwrap();

        let req = server.await.unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/api/v1/transactions");
        assert_eq!(req.query_param("batch"), Some("3"));
        assert_eq!(&req.body[..], b"hello world");
        assert!(req.keep_alive());
    }

    #[tokio::test]
    async fn oversized_body_rejected() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();

        let server = tokio::spawn(async move {
            let (stream, _) = listener.accept().await.unwrap();
            let (read, _write) = stream.into_split();
            let mut reader = BufReader::new(read);
            read_request(&mut reader).await
        });

        let mut client = tokio::net::TcpStream::connect(addr).await.unwrap();
        let huge = MAX_BODY + 1;
        client
            .write_all(format!("POST / HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n").as_bytes())
            .await
            .unwrap();

        assert!(matches!(
            server.await.unwrap(),
            Err(HttpError::BodyTooLarge { .. })
        ));
    }

    #[tokio::test]
    async fn malformed_request_line_rejected() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (stream, _) = listener.accept().await.unwrap();
            let (read, _write) = stream.into_split();
            let mut reader = BufReader::new(read);
            read_request(&mut reader).await
        });
        let mut client = tokio::net::TcpStream::connect(addr).await.unwrap();
        client.write_all(b"NONSENSE\r\n\r\n").await.unwrap();
        assert!(matches!(
            server.await.unwrap(),
            Err(HttpError::Malformed(_))
        ));
    }
}
