//! A small async HTTP server with routing and graceful shutdown.
//!
//! Follows the structured-concurrency guidance from the session's guides:
//! the server owns its connection tasks, and shutting the handle down stops
//! accepting, signals connections, and waits for them to finish.

use std::future::Future;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::Arc;

use tokio::io::BufReader;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;
use tokio::task::JoinSet;

use crate::http::{
    read_request, response_head, write_response, HttpError, Method, Request, Response, WireFault,
};

/// Boxed async handler.
pub type Handler =
    Arc<dyn Fn(Request) -> Pin<Box<dyn Future<Output = Response> + Send>> + Send + Sync>;

/// Captured `{name}` path parameters, in route-pattern order.
type PathParams = Vec<(String, String)>;

/// One segment of a registered route path: a literal, or a `{name}`
/// parameter capture.
#[derive(Clone, Debug, PartialEq, Eq)]
enum RouteSegment {
    Literal(String),
    Param(String),
}

/// A registered route: method, compiled path pattern, handler.
#[derive(Clone)]
struct Route {
    method: Method,
    segments: Vec<RouteSegment>,
    handler: Handler,
}

/// Split a path into segments, ignoring at most one trailing slash (so
/// `/ping/` dispatches like `/ping` instead of 404ing or panicking).
fn path_segments(path: &str) -> Vec<&str> {
    let trimmed = path.strip_suffix('/').unwrap_or(path);
    let trimmed = trimmed.strip_prefix('/').unwrap_or(trimmed);
    if trimmed.is_empty() {
        Vec::new()
    } else {
        trimmed.split('/').collect()
    }
}

fn compile_pattern(path: &str) -> Vec<RouteSegment> {
    path_segments(path)
        .into_iter()
        .map(
            |seg| match seg.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                Some(name) if !name.is_empty() => RouteSegment::Param(name.to_string()),
                _ => RouteSegment::Literal(seg.to_string()),
            },
        )
        .collect()
}

/// Match request segments against a compiled pattern; on success, returns
/// the captured `{name}` parameters (percent-decoded) plus the number of
/// literal segments matched (the specificity score).
fn match_pattern(
    pattern: &[RouteSegment],
    request: &[&str],
) -> Option<(Vec<(String, String)>, usize)> {
    if pattern.len() != request.len() {
        return None;
    }
    let mut params = Vec::new();
    let mut literals = 0usize;
    for (pat, seg) in pattern.iter().zip(request) {
        match pat {
            RouteSegment::Literal(lit) => {
                if lit != seg {
                    return None;
                }
                literals += 1;
            }
            RouteSegment::Param(name) => {
                params.push((name.clone(), crate::http::percent_decode(seg)));
            }
        }
    }
    Some((params, literals))
}

/// Routes requests by method and path pattern. A pattern segment written
/// `{name}` captures the request segment as a path parameter; literal
/// segments always win over parameter segments (`/api/attacker/top` beats
/// `/api/attacker/{pubkey}` for `GET /api/attacker/top`).
#[derive(Default, Clone)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Register a handler for a method and path pattern (literal segments
    /// plus optional `{name}` captures).
    pub fn route<F, Fut>(mut self, method: Method, path: &str, handler: F) -> Self
    where
        F: Fn(Request) -> Fut + Send + Sync + 'static,
        Fut: Future<Output = Response> + Send + 'static,
    {
        let handler: Handler = Arc::new(move |req| Box::pin(handler(req)));
        self.routes.push(Route {
            method,
            segments: compile_pattern(path),
            handler,
        });
        self
    }

    /// Find a handler; distinguishes 404 from 405 like a polite server.
    /// Among matching patterns the most literal one wins; ties go to the
    /// earliest registration.
    fn dispatch(&self, method: Method, path: &str) -> Result<(Handler, PathParams), u16> {
        let request = path_segments(path);
        let mut path_matched = false;
        let mut best: Option<(Handler, PathParams, usize)> = None;
        for route in &self.routes {
            let Some((params, literals)) = match_pattern(&route.segments, &request) else {
                continue;
            };
            path_matched = true;
            if route.method != method {
                continue;
            }
            if best.as_ref().is_none_or(|(_, _, b)| literals > *b) {
                best = Some((route.handler.clone(), params, literals));
            }
        }
        match best {
            Some((handler, params, _)) => Ok((handler, params)),
            None => Err(if path_matched { 405 } else { 404 }),
        }
    }
}

/// A running server; dropping it aborts, [`Server::shutdown`] is graceful.
pub struct Server {
    local_addr: SocketAddr,
    shutdown_tx: watch::Sender<bool>,
    accept_task: tokio::task::JoinHandle<()>,
}

impl Server {
    /// Bind and start serving `router` on `addr` (use port 0 for ephemeral).
    pub async fn bind(addr: &str, router: Router) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let router = Arc::new(router);

        let accept_task = tokio::spawn(accept_loop(listener, router, shutdown_rx));
        Ok(Server {
            local_addr,
            shutdown_tx,
            accept_task,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Base URL for clients.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.local_addr)
    }

    /// Stop accepting, close connections, wait for tasks to finish.
    pub async fn shutdown(self) {
        let _ = self.shutdown_tx.send(true);
        let _ = self.accept_task.await;
    }
}

async fn accept_loop(
    listener: TcpListener,
    router: Arc<Router>,
    shutdown_rx: watch::Receiver<bool>,
) {
    let mut connections = JoinSet::new();
    let mut shutdown = shutdown_rx.clone();
    loop {
        tokio::select! {
            accepted = listener.accept() => {
                match accepted {
                    Ok((stream, peer)) => {
                        let router = router.clone();
                        let conn_shutdown = shutdown_rx.clone();
                        connections.spawn(async move {
                            let _ = serve_connection(stream, peer, router, conn_shutdown).await;
                        });
                    }
                    Err(_) => break,
                }
            }
            _ = shutdown.changed() => break,
        }
        // Reap finished connection tasks opportunistically.
        while connections.try_join_next().is_some() {}
    }
    // Graceful drain: connections observe the shutdown watch and exit after
    // their in-flight request.
    while connections.join_next().await.is_some() {}
}

async fn serve_connection(
    stream: TcpStream,
    _peer: SocketAddr,
    router: Arc<Router>,
    mut shutdown: watch::Receiver<bool>,
) -> Result<(), HttpError> {
    let (read, mut write) = stream.into_split();
    let mut reader = BufReader::new(read);
    loop {
        let request = tokio::select! {
            r = read_request(&mut reader) => match r {
                Ok(req) => req,
                Err(HttpError::ConnectionClosed) => return Ok(()),
                Err(HttpError::Io(_)) => return Ok(()),
                Err(e) => {
                    let resp = Response::text(400, format!("bad request: {e}"));
                    let _ = write_response(&mut write, &resp, false).await;
                    return Ok(());
                }
            },
            _ = shutdown.changed() => return Ok(()),
        };

        let keep_alive = request.keep_alive();
        let response = match router.dispatch(request.method, &request.path) {
            Ok((handler, params)) => {
                let mut request = request;
                request.params.extend(params);
                handler(request).await
            }
            Err(status) => Response::text(status, Response::reason(status)),
        };
        match response.wire_fault {
            WireFault::Drop => {
                // Hard outage: hang up without writing a byte.
                return Ok(());
            }
            WireFault::StallAfterHeaders => {
                // Send the head (declaring the full body length), then hold
                // the connection open without the body until shutdown. Only
                // a client-side deadline gets the caller unstuck.
                use tokio::io::AsyncWriteExt;
                let head = response_head(&response, keep_alive);
                write.write_all(head.as_bytes()).await?;
                write.flush().await?;
                let _ = shutdown.changed().await;
                return Ok(());
            }
            WireFault::TruncateBody(_) => {
                // write_response sends the partial body; closing here makes
                // the client see EOF mid-body.
                write_response(&mut write, &response, false).await?;
                return Ok(());
            }
            WireFault::None => {
                write_response(&mut write, &response, keep_alive).await?;
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn test_router() -> Router {
        Router::new()
            .route(Method::Get, "/ping", |_req| async {
                Response::text(200, "pong")
            })
            .route(Method::Post, "/echo", |req: Request| async move {
                Response::new(200, req.body)
            })
            .route(Method::Get, "/query", |req: Request| async move {
                let v = req.query_param("v").unwrap_or("none").to_string();
                Response::text(200, v)
            })
            .route(Method::Get, "/item/{id}", |req: Request| async move {
                let id = req.path_param("id").unwrap_or("?").to_string();
                Response::text(200, format!("item:{id}"))
            })
            .route(Method::Get, "/item/special", |_req| async {
                Response::text(200, "special")
            })
    }

    #[test]
    fn dispatch_distinguishes_404_from_405() {
        let router = test_router();
        assert!(matches!(router.dispatch(Method::Get, "/nope"), Err(404)));
        assert!(matches!(router.dispatch(Method::Post, "/ping"), Err(405)));
        // A parameter route also participates in the 405 distinction.
        assert!(matches!(
            router.dispatch(Method::Post, "/item/42"),
            Err(405)
        ));
        assert!(router.dispatch(Method::Get, "/ping").is_ok());
    }

    #[test]
    fn dispatch_captures_path_parameters() {
        let router = test_router();
        let (_, params) = router.dispatch(Method::Get, "/item/42").unwrap();
        assert_eq!(params, vec![("id".to_string(), "42".to_string())]);
    }

    #[test]
    fn literal_segments_win_over_param_segments() {
        let router = test_router();
        let (_, params) = router.dispatch(Method::Get, "/item/special").unwrap();
        assert!(params.is_empty(), "literal route must win: {params:?}");
        // Registration order does not matter: literal-first routers agree.
        let reversed = Router::new()
            .route(Method::Get, "/item/special", |_req| async {
                Response::text(200, "special")
            })
            .route(Method::Get, "/item/{id}", |_req| async {
                Response::text(200, "param")
            });
        let (_, params) = reversed.dispatch(Method::Get, "/item/special").unwrap();
        assert!(params.is_empty());
    }

    #[test]
    fn trailing_slashes_do_not_panic_or_404() {
        let router = test_router();
        assert!(router.dispatch(Method::Get, "/ping/").is_ok());
        assert!(router.dispatch(Method::Get, "/item/42/").is_ok());
        // Root and degenerate paths are handled without panicking.
        assert!(matches!(router.dispatch(Method::Get, "/"), Err(404)));
        assert!(matches!(router.dispatch(Method::Get, ""), Err(404)));
        assert!(matches!(router.dispatch(Method::Get, "//"), Err(404)));
    }

    #[test]
    fn percent_encoded_parameters_are_decoded() {
        let router = test_router();
        let (_, params) = router.dispatch(Method::Get, "/item/a%2Fb%20c").unwrap();
        assert_eq!(params[0].1, "a/b c");
        // Encoded junk stays inert (kept literal, never a panic).
        let (_, params) = router.dispatch(Method::Get, "/item/%zz%2").unwrap();
        assert_eq!(params[0].1, "%zz%2");
    }

    #[tokio::test]
    async fn routes_and_statuses() {
        let server = Server::bind("127.0.0.1:0", test_router()).await.unwrap();
        let client = HttpClient::new(server.local_addr());

        let r = client.get("/ping").await.unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(&r.body[..], b"pong");

        let r = client.get("/nope").await.unwrap();
        assert_eq!(r.status, 404);

        // Wrong method on a known path → 405.
        let r = client.post("/ping", b"x".to_vec()).await.unwrap();
        assert_eq!(r.status, 405);

        server.shutdown().await;
    }

    #[tokio::test]
    async fn path_parameters_reach_handler_over_socket() {
        let server = Server::bind("127.0.0.1:0", test_router()).await.unwrap();
        let client = HttpClient::new(server.local_addr());
        let r = client.get("/item/sandwich-42").await.unwrap();
        assert_eq!(&r.body[..], b"item:sandwich-42");
        let r = client.get("/item/special").await.unwrap();
        assert_eq!(&r.body[..], b"special");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn echo_posts_body() {
        let server = Server::bind("127.0.0.1:0", test_router()).await.unwrap();
        let client = HttpClient::new(server.local_addr());
        let r = client.post("/echo", b"payload".to_vec()).await.unwrap();
        assert_eq!(&r.body[..], b"payload");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn query_parameters_reach_handler() {
        let server = Server::bind("127.0.0.1:0", test_router()).await.unwrap();
        let client = HttpClient::new(server.local_addr());
        let r = client.get("/query?v=42").await.unwrap();
        assert_eq!(&r.body[..], b"42");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn concurrent_clients() {
        let server = Server::bind("127.0.0.1:0", test_router()).await.unwrap();
        let addr = server.local_addr();
        let mut tasks = Vec::new();
        for _ in 0..16 {
            tasks.push(tokio::spawn(async move {
                let client = HttpClient::new(addr);
                let r = client.get("/ping").await.unwrap();
                assert_eq!(r.status, 200);
            }));
        }
        for t in tasks {
            t.await.unwrap();
        }
        server.shutdown().await;
    }

    #[tokio::test]
    async fn keep_alive_serves_multiple_requests_per_connection() {
        use tokio::io::{AsyncReadExt, AsyncWriteExt};

        let server = Server::bind("127.0.0.1:0", test_router()).await.unwrap();
        let mut stream = tokio::net::TcpStream::connect(server.local_addr())
            .await
            .unwrap();

        // Two pipelined requests over one connection; second closes it.
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
            .await
            .unwrap();
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .await
            .unwrap();

        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).await.unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
        assert!(text.contains("connection: keep-alive"));
        assert!(text.contains("connection: close"));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn malformed_request_gets_400_then_close() {
        use tokio::io::{AsyncReadExt, AsyncWriteExt};

        let server = Server::bind("127.0.0.1:0", test_router()).await.unwrap();
        let mut stream = tokio::net::TcpStream::connect(server.local_addr())
            .await
            .unwrap();
        stream
            .write_all(b"GET /ping HTTP/2.0-nonsense\r\n\r\n")
            .await
            .unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).await.unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn shutdown_stops_accepting() {
        let server = Server::bind("127.0.0.1:0", test_router()).await.unwrap();
        let addr = server.local_addr();
        server.shutdown().await;
        let client = HttpClient::new(addr);
        assert!(client.get("/ping").await.is_err());
    }
}
