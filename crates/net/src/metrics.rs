//! The `GET /metrics` endpoint: mount a [`sandwich_obs::Registry`] on any
//! [`Router`].
//!
//! The endpoint serves two renderings of the same snapshot:
//!
//! * JSON (the default) — `{"counters": .., "gauges": .., "histograms": ..}`
//! * Prometheus text exposition — when the request asks for it via
//!   `?format=prometheus` or an `Accept: text/plain` header.

use sandwich_obs::Registry;

use crate::http::{Method, Request, Response};
use crate::server::Router;

/// Render a metrics response for `req` from a registry snapshot.
pub fn metrics_response(registry: &Registry, req: &Request) -> Response {
    let snapshot = registry.snapshot();
    let wants_prometheus = req.query_param("format") == Some("prometheus")
        || req
            .header("accept")
            .is_some_and(|a| a.contains("text/plain"));
    if wants_prometheus {
        Response::text(200, snapshot.to_prometheus_text())
    } else {
        Response::new(200, snapshot.to_json_string().into_bytes())
            .header("content-type", "application/json")
    }
}

impl Router {
    /// Register `GET /metrics` serving the registry's live snapshot.
    pub fn with_metrics(self, registry: Registry) -> Router {
        self.route(Method::Get, "/metrics", move |req: Request| {
            let registry = registry.clone();
            async move { metrics_response(&registry, &req) }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::server::Server;

    #[tokio::test]
    async fn metrics_endpoint_serves_json_and_prometheus() {
        let registry = Registry::new();
        registry.counter("test.hits").add(5);
        registry.histogram("test.lat").observe(0.01);
        let server = Server::bind("127.0.0.1:0", Router::new().with_metrics(registry.clone()))
            .await
            .unwrap();
        let client = HttpClient::new(server.local_addr());

        let json = client.get("/metrics").await.unwrap();
        assert_eq!(json.status, 200);
        assert_eq!(json.header_value("content-type"), Some("application/json"));
        let body = String::from_utf8(json.body.to_vec()).unwrap();
        assert!(body.contains("\"test.hits\":5"), "{body}");

        // Counters recorded after the first scrape show up in the next one.
        registry.counter("test.hits").inc();
        let prom = client.get("/metrics?format=prometheus").await.unwrap();
        let body = String::from_utf8(prom.body.to_vec()).unwrap();
        assert!(body.contains("# TYPE test_hits counter"), "{body}");
        assert!(body.contains("test_hits 6"), "{body}");
        assert!(body.contains("test_lat_bucket"), "{body}");

        server.shutdown().await;
    }
}
