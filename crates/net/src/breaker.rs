//! A closed/open/half-open circuit breaker.
//!
//! When the explorer is hard-down (scheduled outage, connection refused)
//! every poll would otherwise burn a full retry ladder. The breaker trips
//! after a run of consecutive failures, short-circuits calls while open,
//! and lets a single probe through after the cooldown; a successful probe
//! closes it again.
//!
//! Time is supplied by the caller as milliseconds (`now_ms`) rather than
//! read from a wall clock, so the collector can drive the breaker on
//! *simulated* time and state transitions stay deterministic for a given
//! fault plan.

/// Breaker tunables.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long (in the caller's `now_ms` units) the breaker stays open
    /// before allowing a half-open probe.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 60_000,
        }
    }
}

/// Breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; failures are counted.
    Closed,
    /// Calls are short-circuited until the cooldown elapses.
    Open,
    /// One probe is allowed through; its outcome decides the next state.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding for the `client.breaker_state` gauge:
    /// closed = 0, open = 1, half-open = 2.
    pub fn as_gauge(&self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// The breaker state machine. Not internally synchronized; the collector
/// owns one and drives it from a single task.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ms: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tunables.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_ms: 0,
        }
    }

    /// Current state, after applying any cooldown transition due at
    /// `now_ms` (open → half-open).
    pub fn state_at(&mut self, now_ms: u64) -> BreakerState {
        if self.state == BreakerState::Open
            && now_ms.saturating_sub(self.opened_at_ms) >= self.config.cooldown_ms
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Whether a call may proceed at `now_ms`. While open (and still
    /// cooling down) this returns false — the caller should skip the call
    /// entirely. In half-open state it returns true for the probe.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        self.state_at(now_ms) != BreakerState::Open
    }

    /// Record a successful call: closes the breaker and resets the count.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed call at `now_ms`. A half-open probe failure re-opens
    /// immediately; in closed state the breaker opens once the consecutive
    /// failure count reaches the threshold.
    pub fn record_failure(&mut self, now_ms: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = self.state == BreakerState::HalfOpen
            || self.consecutive_failures >= self.config.failure_threshold;
        if trip {
            self.state = BreakerState::Open;
            self.opened_at_ms = now_ms;
        }
    }

    /// Consecutive failures seen since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 100,
        })
    }

    #[test]
    fn trips_after_threshold_and_cools_down() {
        let mut b = breaker();
        assert!(b.allow(0));
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state_at(2), BreakerState::Closed);
        b.record_failure(2);
        assert_eq!(b.state_at(3), BreakerState::Open);
        assert!(!b.allow(50)); // still cooling down
        assert!(b.allow(102)); // half-open probe allowed
        assert_eq!(b.state_at(102), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(200));
        b.record_success();
        assert_eq!(b.state_at(201), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(200)); // half-open
        b.record_failure(200);
        assert_eq!(b.state_at(250), BreakerState::Open);
        assert!(!b.allow(250));
        assert!(b.allow(300)); // cooldown counted from the re-open
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        b.record_success();
        b.record_failure(2);
        b.record_failure(3);
        assert_eq!(b.state_at(4), BreakerState::Closed);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::Open.as_gauge(), 1);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 2);
    }
}
