//! The `queryd` HTTP service: routes, caching, metrics, and engine
//! lifecycle (load-fold-or-build on open, atomic swap on reload).
//!
//! Reloads are **incremental**: a generation change is absorbed by
//! scanning only the manifest delta and folding it into the live index
//! ([`fold_from_base`]), which is byte-identical to a full rebuild;
//! `query.index.full_rebuilds` counts the (expected-never) fallbacks.
//! `/api/live` streams newly folded sandwiches behind an opaque cursor,
//! with a bounded long-poll that waits for the next fold.
//!
//! Consistency model: a handler snapshots the engine `Arc` exactly once
//! per request, so every response is computed against a single manifest
//! generation even while a reload swaps the engine mid-flight — there are
//! no torn reads by construction. The generation that answered is echoed
//! in the `x-query-generation` response header.
//!
//! Degraded mode: the service keeps serving through partial failure
//! instead of dying. Index builds skip unreadable segments (coverage is
//! reported on `/api/summary`), a failed reload keeps the last good
//! engine serving (stale-while-revalidate; `/readyz` flips to 503 until
//! a reload succeeds), and bounded-in-flight admission control sheds
//! excess API load with `503` + `Retry-After` rather than queueing
//! without bound. `/healthz` answers as long as the process serves.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use sandwich_net::{Method, Request, Response, Router};
use sandwich_obs::{names, Registry};
use sandwich_store::{BundleStore, Manifest};

use crate::cache::{CacheOutcome, ResponseCache};
use crate::engine::{error_response, Engine, QueryRequest};
use crate::index::{
    build_index, build_index_subset, fold_indexes, generation_of, load_index, load_index_any,
    save_index, IndexReject, QueryConfig, QueryIndex, INDEX_FILE,
};

/// How often a long-poll re-checks the engine for rows past its cursor.
const LONG_POLL_TICK: Duration = Duration::from_millis(12);

/// Tunables for one service instance.
#[derive(Clone, Debug)]
pub struct QueryServiceConfig {
    /// Directory of the sealed bundle store (and the persisted index).
    pub store_dir: PathBuf,
    /// Index-build semantics (detector, threshold, clock, threads).
    pub query: QueryConfig,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// Entries per cache shard.
    pub cache_per_shard: usize,
    /// Bound on concurrently-admitted API requests; excess load is shed
    /// with `503` + `Retry-After`. Zero admits nothing (useful in tests);
    /// `/healthz`, `/readyz`, and `/metrics` are always exempt.
    pub max_in_flight: usize,
}

impl QueryServiceConfig {
    /// Paper-default semantics over `store_dir` with a small cache.
    pub fn new(store_dir: impl Into<PathBuf>) -> Self {
        QueryServiceConfig {
            store_dir: store_dir.into(),
            query: QueryConfig::default(),
            cache_shards: 8,
            cache_per_shard: 128,
            max_in_flight: 256,
        }
    }
}

struct ServiceInner {
    config: QueryServiceConfig,
    engine: RwLock<Arc<Engine>>,
    cache: ResponseCache,
    registry: Registry,
    /// API requests currently admitted (admission control).
    in_flight: AtomicUsize,
    /// Whether the most recent reload attempt succeeded. Starts true (an
    /// open that fails never constructs a service at all).
    last_reload_ok: AtomicBool,
}

/// Decrements the in-flight gauge when an admitted request finishes,
/// however it finishes.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// The query service: open once, serve many, reload on demand.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

/// Rebuild the whole index from segments, persist it, and record timing.
fn rebuild_all(
    store: &BundleStore,
    config: &QueryConfig,
    registry: &Registry,
) -> std::io::Result<QueryIndex> {
    let started = Instant::now();
    let index = build_index(store, config)?;
    registry
        .histogram(names::QUERY_INDEX_BUILD_SECONDS)
        .observe(started.elapsed().as_secs_f64());
    registry.counter(names::QUERY_INDEX_REBUILDS).inc();
    save_index(store.dir(), &index)?;
    Ok(index)
}

/// Try to absorb a generation change by folding only the manifest delta
/// into `base` (an index built for an earlier generation of the same
/// store). Returns `Ok(None)` when the delta is not foldable — a covered
/// segment left the serving or quarantine list, or the base itself is
/// incomplete — and the caller must rebuild from scratch.
///
/// The fold scans only the *new* segments and merges their partial with
/// the base through the same associative merge the full build uses, so
/// the result is byte-identical to a from-scratch rebuild (the invariant
/// `tests/live_fold_props.rs` pins).
fn fold_from_base(
    store: &BundleStore,
    base: QueryIndex,
    generation: &str,
    config: &QueryConfig,
    registry: &Registry,
) -> std::io::Result<Option<QueryIndex>> {
    // A base that skipped segments (degraded build) or predates per-file
    // coverage tracking cannot prove what it already scanned: folding
    // would bake the gap in forever, so rebuild instead.
    if base.coverage.segments_failed > 0
        || base.segment_files.len() as u64 != base.coverage.segments_total
    {
        return Ok(None);
    }
    // An attribution-stale base — built under a different (or no)
    // validator spec than the manifest now carries — cannot be folded:
    // its refs lack or mis-assign leaders, and the fold would bake that
    // in forever. Rebuild from segments under the current spec instead.
    if base.validator_spec != store.manifest().validators {
        registry.counter(names::ATTRIB_SPEC_MISMATCH_REBUILDS).inc();
        return Ok(None);
    }
    let Some(delta) = store
        .manifest()
        .delta_from(&base.segment_files, &base.quarantined_files)
    else {
        return Ok(None);
    };
    let started = Instant::now();
    let delta_index =
        build_index_subset(store, config, &delta.new_serving, &delta.new_quarantined)?;
    let folded = fold_indexes(generation, vec![base, delta_index], config);
    registry.counter(names::QUERY_INDEX_FOLDS).inc();
    registry
        .counter(names::QUERY_INDEX_FOLD_SEGMENTS)
        .add(delta.len() as u64);
    registry
        .histogram(names::QUERY_INDEX_FOLD_SECONDS)
        .observe(started.elapsed().as_secs_f64());
    Ok(Some(folded))
}

/// Record attribution coverage for an index that is about to go live:
/// one schedule build when a validator spec was in play, plus how many
/// sealed sandwiches joined to a slot leader and how many fell back to
/// the unattributed decode path.
fn record_attrib_metrics(index: &QueryIndex, registry: &Registry) {
    if index.validator_spec.is_some() {
        registry.counter(names::ATTRIB_SCHEDULE_BUILDS).inc();
    }
    let joined = index.refs.iter().filter(|r| r.leader.is_some()).count() as u64;
    let unattributed = index.refs.len() as u64 - joined;
    if joined > 0 {
        registry.counter(names::ATTRIB_JOINS).add(joined);
    }
    if unattributed > 0 {
        registry
            .counter(names::ATTRIB_UNATTRIBUTED)
            .add(unattributed);
    }
}

/// Load the persisted index when it verifies, fold forward when it is
/// merely stale, rebuild from segments only when neither works, and
/// record which happened.
fn load_or_build(
    store: &BundleStore,
    config: &QueryConfig,
    registry: &Registry,
) -> std::io::Result<Engine> {
    let generation = generation_of(store.manifest());
    let index = match load_index(store.dir(), &generation) {
        Ok(index) => {
            registry.counter(names::QUERY_INDEX_LOADS).inc();
            index
        }
        Err(IndexReject::StaleGeneration { .. }) => {
            // The frame is intact, just older: fold the manifest delta
            // into it instead of rescanning the world.
            let folded = match load_index_any(store.dir(), INDEX_FILE) {
                Ok(base) => fold_from_base(store, base, &generation, config, registry)?,
                Err(_) => None,
            };
            match folded {
                Some(folded) => {
                    save_index(store.dir(), &folded)?;
                    folded
                }
                None => {
                    registry.counter(names::QUERY_INDEX_FULL_REBUILDS).inc();
                    rebuild_all(store, config, registry)?
                }
            }
        }
        Err(reject) => {
            if reject != IndexReject::Missing {
                registry.counter(names::QUERY_INDEX_REJECTED).inc();
            }
            rebuild_all(store, config, registry)?
        }
    };
    if index.coverage.segments_failed > 0 {
        registry
            .counter(names::QUERY_INDEX_SEGMENTS_FAILED)
            .add(index.coverage.segments_failed);
    }
    record_attrib_metrics(&index, registry);
    Ok(Engine::new(Arc::new(index)))
}

impl QueryService {
    /// Open the store, load or build the index, and make the service
    /// ready to serve. Metrics land in `registry`.
    pub fn open(config: QueryServiceConfig, registry: Registry) -> std::io::Result<QueryService> {
        let store = BundleStore::open(&config.store_dir)?;
        let engine = load_or_build(&store, &config.query, &registry)?;
        let cache = ResponseCache::new(config.cache_shards, config.cache_per_shard);
        Ok(QueryService {
            inner: Arc::new(ServiceInner {
                config,
                engine: RwLock::new(Arc::new(engine)),
                cache,
                registry,
                in_flight: AtomicUsize::new(0),
                last_reload_ok: AtomicBool::new(true),
            }),
        })
    }

    /// The generation currently being served.
    pub fn generation(&self) -> String {
        self.inner.engine.read().generation().to_string()
    }

    /// The metrics registry this service records into.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The engine snapshot currently serving (for harnesses that compare
    /// live responses against uncached evaluation).
    pub fn engine_snapshot(&self) -> Arc<Engine> {
        self.inner.engine.read().clone()
    }

    /// Re-check the manifest; when its generation changed, load-or-build
    /// the new index and swap it in atomically. Returns `true` when a new
    /// generation went live. In-flight requests keep the engine snapshot
    /// they already took.
    ///
    /// Stale-while-revalidate: a failed reload leaves the last good
    /// engine serving and flips `/readyz` to 503 until a later reload
    /// succeeds. The error is still returned for the caller to log.
    pub fn reload(&self) -> std::io::Result<bool> {
        let result = self.reload_inner();
        self.inner
            .last_reload_ok
            .store(result.is_ok(), Ordering::Release);
        result
    }

    fn reload_inner(&self) -> std::io::Result<bool> {
        let manifest = Manifest::load(&self.inner.config.store_dir)?;
        let generation = generation_of(&manifest);
        // Same generation (including a no-op manifest touch): nothing to
        // do, and crucially the response cache — whose keys are
        // generation-prefixed — keeps every warm entry.
        if *self.inner.engine.read().generation() == generation {
            return Ok(false);
        }
        let store = BundleStore::open(&self.inner.config.store_dir)?;
        let generation = generation_of(store.manifest());
        let registry = &self.inner.registry;
        let config = &self.inner.config.query;
        // Fold forward from the index already in memory — the common
        // seal-only case scans just the new segments. Anything else
        // (compaction, quarantine of a covered segment) falls back to a
        // full rebuild.
        let base = self.inner.engine.read().index().clone();
        let index = match fold_from_base(&store, base, &generation, config, registry)? {
            Some(folded) => {
                save_index(store.dir(), &folded)?;
                folded
            }
            None => {
                registry.counter(names::QUERY_INDEX_FULL_REBUILDS).inc();
                rebuild_all(&store, config, registry)?
            }
        };
        if index.coverage.segments_failed > 0 {
            registry
                .counter(names::QUERY_INDEX_SEGMENTS_FAILED)
                .add(index.coverage.segments_failed);
        }
        record_attrib_metrics(&index, registry);
        *self.inner.engine.write() = Arc::new(Engine::new(Arc::new(index)));
        registry.counter(names::QUERY_RELOADS).inc();
        Ok(true)
    }

    /// Try to admit one API request under the in-flight bound.
    fn admit(&self) -> Option<InFlightGuard<'_>> {
        let inner = &self.inner;
        let prev = inner.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= inner.config.max_in_flight {
            inner.in_flight.fetch_sub(1, Ordering::Release);
            inner.registry.counter(names::QUERY_SHED).inc();
            None
        } else {
            Some(InFlightGuard(&inner.in_flight))
        }
    }

    /// `GET /healthz`: liveness. 200 as long as the process can answer at
    /// all — never gated on admission control or reload state.
    fn health_response(&self) -> Response {
        let body = format!(
            "{{\"status\":\"ok\",\"generation\":\"{}\"}}",
            self.generation()
        );
        Response::new(200, body.into_bytes()).header("content-type", "application/json")
    }

    /// `GET /readyz`: readiness. 503 while the last reload attempt
    /// failed (the service keeps serving its stale generation meanwhile);
    /// also reports whether the served index covers the whole store.
    fn ready_response(&self) -> Response {
        let ok = self.inner.last_reload_ok.load(Ordering::Acquire);
        let engine = self.engine_snapshot();
        let body = format!(
            "{{\"ready\":{ok},\"complete\":{},\"generation\":\"{}\"}}",
            engine.index().coverage.complete(),
            engine.generation()
        );
        let response = Response::new(if ok { 200 } else { 503 }, body.into_bytes())
            .header("content-type", "application/json");
        if ok {
            response
        } else {
            response.header("retry-after", "3")
        }
    }

    async fn handle(&self, endpoint: &'static str, request: Request) -> Response {
        let inner = &self.inner;
        inner.registry.counter(names::QUERY_REQUESTS).inc();
        match endpoint {
            "validators" => inner
                .registry
                .counter(names::QUERY_VALIDATORS_REQUESTS)
                .inc(),
            "validator" => inner
                .registry
                .counter(names::QUERY_VALIDATOR_DETAIL_REQUESTS)
                .inc(),
            _ => {}
        }
        let timer = Instant::now();

        // Admission control: bound concurrent API work, shed the rest
        // with an explicit retry hint instead of queueing without bound.
        let Some(_guard) = self.admit() else {
            let shed = error_response(503, "server at capacity, retry shortly");
            return Response::new(shed.status, shed.body)
                .header("content-type", &shed.content_type)
                .header("retry-after", "1");
        };

        let parsed = QueryRequest::parse(endpoint, &request);

        // Live long-poll: before taking the answering snapshot, wait
        // (bounded by the request's `wait_ms`) for a reload to fold in
        // rows past the caller's cursor. The wait itself holds no lock —
        // each tick re-reads the freshest engine.
        if let Ok(QueryRequest::Live {
            after_slot,
            after_id,
            wait_ms,
            ..
        }) = &parsed
        {
            inner.registry.counter(names::QUERY_LIVE_REQUESTS).inc();
            if *wait_ms > 0 {
                inner.registry.counter(names::QUERY_LIVE_LONG_POLLS).inc();
                let waited = Instant::now();
                let deadline = Duration::from_millis(*wait_ms);
                while inner.engine.read().live_rows_after(*after_slot, after_id) == 0
                    && waited.elapsed() < deadline
                {
                    tokio::time::sleep(LONG_POLL_TICK).await;
                }
                inner
                    .registry
                    .histogram(names::QUERY_LIVE_WAIT_SECONDS)
                    .observe(waited.elapsed().as_secs_f64());
            }
        }

        // One engine snapshot per request: everything below answers from
        // this generation, reloads notwithstanding.
        let engine: Arc<Engine> = inner.engine.read().clone();

        if let Ok(QueryRequest::Live {
            after_slot,
            after_id,
            limit,
            ..
        }) = &parsed
        {
            let rows = engine.live_rows_after(*after_slot, after_id).min(*limit);
            if rows > 0 {
                inner
                    .registry
                    .counter(names::QUERY_LIVE_ROWS)
                    .add(rows as u64);
            }
        }

        let response = match parsed {
            Err(message) => {
                // Invalid parameters never reach the cache.
                let cached = error_response(400, message);
                (Arc::new(cached), CacheOutcome::Miss, 0)
            }
            Ok(query) => {
                let key = format!("{}|{}", engine.generation(), query.canonical_key());
                let evaluate = {
                    let engine = engine.clone();
                    move || engine.evaluate(&query)
                };
                inner.cache.get_or_compute(&key, evaluate).await
            }
        };
        let (cached, outcome, evicted) = response;
        match outcome {
            CacheOutcome::Hit => inner.registry.counter(names::QUERY_CACHE_HITS).inc(),
            CacheOutcome::Miss => inner.registry.counter(names::QUERY_CACHE_MISSES).inc(),
            CacheOutcome::Deduped => {
                inner
                    .registry
                    .counter(names::QUERY_CACHE_SINGLE_FLIGHT_WAITS)
                    .inc();
                inner.registry.counter(names::QUERY_CACHE_HITS).inc();
            }
        }
        if evicted > 0 {
            inner
                .registry
                .counter(names::QUERY_CACHE_EVICTIONS)
                .add(evicted);
        }
        inner
            .registry
            .histogram(&format!("{}{endpoint}", names::QUERY_SECONDS_PREFIX))
            .observe(timer.elapsed().as_secs_f64());

        Response::new(cached.status, cached.body.clone())
            .header("content-type", &cached.content_type)
            .header("x-query-generation", engine.generation())
    }

    /// The API router (plus `GET /metrics` from the shared registry).
    pub fn router(&self) -> Router {
        let endpoints: [(&'static str, &'static str); 9] = [
            ("summary", "/api/summary"),
            ("days", "/api/days"),
            ("attackers", "/api/attackers"),
            ("attacker", "/api/attacker/{pubkey}"),
            ("pool", "/api/pool/{mint}"),
            ("sandwiches", "/api/sandwiches"),
            ("live", "/api/live"),
            ("validators", "/api/validators"),
            ("validator", "/api/validator/{pubkey}"),
        ];
        let mut router = Router::new();
        for (endpoint, path) in endpoints {
            let service = self.clone();
            router = router.route(Method::Get, path, move |request: Request| {
                let service = service.clone();
                async move { service.handle(endpoint, request).await }
            });
        }
        let service = self.clone();
        router = router.route(Method::Get, "/healthz", move |_request: Request| {
            let service = service.clone();
            async move { service.health_response() }
        });
        let service = self.clone();
        router = router.route(Method::Get, "/readyz", move |_request: Request| {
            let service = service.clone();
            async move { service.ready_response() }
        });
        router.with_metrics(self.inner.registry.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_net::{HttpClient, Server};
    use sandwich_store::{CollectedBundle, StoreWriter};
    use sandwich_types::{Hash, Keypair, Lamports, Slot};

    fn bundle(seed: u64, slot: u64, tip: u64) -> CollectedBundle {
        let kp = Keypair::from_label("qsvc");
        CollectedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            timestamp_ms: slot * 400,
            tip: Lamports(tip),
            tx_ids: vec![kp.sign(&seed.to_le_bytes())],
        }
    }

    fn seed_store(tag: &str, segments: u64) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swqsvc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::create(&dir).unwrap();
        for seg in 0..segments {
            let bundles: Vec<_> = (0..10)
                .map(|i| bundle(seg * 100 + i, seg * 50 + i, 30_000))
                .collect();
            w.seal_segment(bundles, Vec::new(), Vec::new()).unwrap();
        }
        dir
    }

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        tokio::runtime::Builder::new_multi_thread()
            .enable_all()
            .build()
            .unwrap()
            .block_on(fut)
    }

    #[test]
    fn open_builds_then_reopen_loads() {
        let dir = seed_store("reopen", 2);

        let r1 = Registry::new();
        let service = QueryService::open(QueryServiceConfig::new(&dir), r1.clone()).unwrap();
        let generation = service.generation();
        let snap = r1.snapshot();
        assert_eq!(snap.counter(names::QUERY_INDEX_REBUILDS), Some(1));
        assert_eq!(snap.counter(names::QUERY_INDEX_LOADS), None);

        // Second open against an unchanged manifest: pure load, no rebuild.
        let r2 = Registry::new();
        let service = QueryService::open(QueryServiceConfig::new(&dir), r2.clone()).unwrap();
        assert_eq!(service.generation(), generation);
        let snap = r2.snapshot();
        assert_eq!(snap.counter(names::QUERY_INDEX_REBUILDS), None);
        assert_eq!(snap.counter(names::QUERY_INDEX_LOADS), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_index_is_rejected_and_rebuilt() {
        let dir = seed_store("corrupt", 1);
        QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();

        let path = dir.join(crate::index::INDEX_FILE);
        let mut image = std::fs::read(&path).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x01;
        std::fs::write(&path, &image).unwrap();

        let registry = Registry::new();
        QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::QUERY_INDEX_REJECTED), Some(1));
        assert_eq!(snap.counter(names::QUERY_INDEX_REBUILDS), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_is_noop_without_manifest_change() {
        let dir = seed_store("noop", 1);
        let registry = Registry::new();
        let service = QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
        assert!(!service.reload().unwrap());
        assert_eq!(registry.snapshot().counter(names::QUERY_RELOADS), None);

        // Seal another segment: the reload goes live and says so.
        let sealed = Manifest::load(&dir).unwrap().segments;
        let mut w = StoreWriter::resume(&dir, &sealed).unwrap();
        w.seal_segment(vec![bundle(999, 500, 30_000)], Vec::new(), Vec::new())
            .unwrap();
        assert!(service.reload().unwrap());
        assert_eq!(registry.snapshot().counter(names::QUERY_RELOADS), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_folds_the_delta_instead_of_rebuilding() {
        let dir = seed_store("fold", 2);
        let registry = Registry::new();
        let service = QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
        assert_eq!(
            registry.snapshot().counter(names::QUERY_INDEX_REBUILDS),
            Some(1),
            "cold open builds once"
        );

        // Seal two more segments and reload: the new generation must be
        // absorbed by folding exactly the delta, not rebuilding.
        let sealed = Manifest::load(&dir).unwrap().segments;
        let mut w = StoreWriter::resume(&dir, &sealed).unwrap();
        for seg in 2..4u64 {
            let bundles: Vec<_> = (0..10)
                .map(|i| bundle(seg * 100 + i, seg * 50 + i, 30_000))
                .collect();
            w.seal_segment(bundles, Vec::new(), Vec::new()).unwrap();
        }
        assert!(service.reload().unwrap());
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::QUERY_INDEX_FOLDS), Some(1));
        assert_eq!(snap.counter(names::QUERY_INDEX_FOLD_SEGMENTS), Some(2));
        assert_eq!(
            snap.counter(names::QUERY_INDEX_REBUILDS),
            Some(1),
            "still just the cold build"
        );
        assert_eq!(snap.counter(names::QUERY_INDEX_FULL_REBUILDS), None);

        // The folded index is byte-identical to a from-scratch build.
        let store = BundleStore::open(&dir).unwrap();
        let full = build_index(&store, &QueryServiceConfig::new(&dir).query).unwrap();
        let folded = service.engine_snapshot().index().clone();
        assert_eq!(
            serde_json::to_string(&folded).unwrap(),
            serde_json::to_string(&full).unwrap()
        );

        // The fold was persisted: a cold reopen is a pure load.
        let r2 = Registry::new();
        let reopened = QueryService::open(QueryServiceConfig::new(&dir), r2.clone()).unwrap();
        assert_eq!(reopened.generation(), service.generation());
        assert_eq!(r2.snapshot().counter(names::QUERY_INDEX_LOADS), Some(1));
        assert_eq!(r2.snapshot().counter(names::QUERY_INDEX_REBUILDS), None);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_seal_folds_the_stale_persisted_index_forward() {
        let dir = seed_store("stalefold", 2);
        QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();

        // Seal while no service is running: the persisted index is now
        // one generation stale. A fresh open folds it forward.
        let sealed = Manifest::load(&dir).unwrap().segments;
        let mut w = StoreWriter::resume(&dir, &sealed).unwrap();
        w.seal_segment(vec![bundle(999, 500, 30_000)], Vec::new(), Vec::new())
            .unwrap();

        let registry = Registry::new();
        let service = QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::QUERY_INDEX_FOLDS), Some(1));
        assert_eq!(snap.counter(names::QUERY_INDEX_FOLD_SEGMENTS), Some(1));
        assert_eq!(
            snap.counter(names::QUERY_INDEX_REBUILDS),
            None,
            "no rescan of old segments"
        );
        assert_eq!(snap.counter(names::QUERY_INDEX_FULL_REBUILDS), None);

        let store = BundleStore::open(&dir).unwrap();
        let full = build_index(&store, &QueryServiceConfig::new(&dir).query).unwrap();
        assert_eq!(
            serde_json::to_string(service.engine_snapshot().index()).unwrap(),
            serde_json::to_string(&full).unwrap()
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn noop_manifest_touch_keeps_the_response_cache_warm() {
        block_on(async {
            let dir = seed_store("touch", 1);
            let registry = Registry::new();
            let service =
                QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
            let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
            let client = HttpClient::new(server.local_addr());

            let first = client.get("/api/summary").await.unwrap();
            let warm = client.get("/api/summary").await.unwrap();
            assert_eq!(first.body, warm.body);
            assert_eq!(
                registry.snapshot().counter(names::QUERY_CACHE_HITS),
                Some(1)
            );

            // Rewrite the manifest byte-for-byte (a no-op touch): the
            // generation is unchanged, so the reload must not swap the
            // engine, and every warm cache entry must stay warm.
            let manifest_path = dir.join(sandwich_store::MANIFEST_FILE);
            let bytes = std::fs::read(&manifest_path).unwrap();
            std::fs::write(&manifest_path, &bytes).unwrap();
            assert!(!service.reload().unwrap());

            let still_warm = client.get("/api/summary").await.unwrap();
            assert_eq!(first.body, still_warm.body);
            let snap = registry.snapshot();
            assert_eq!(snap.counter(names::QUERY_CACHE_HITS), Some(2));
            assert_eq!(snap.counter(names::QUERY_CACHE_MISSES), Some(1));
            assert_eq!(snap.counter(names::QUERY_RELOADS), None);

            server.shutdown().await;
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }

    #[test]
    fn live_long_poll_answers_when_a_reload_folds_rows_in() {
        block_on(async {
            let dir = seed_store("livepoll", 1);
            let registry = Registry::new();
            let service =
                QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
            let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
            let client = HttpClient::new(server.local_addr());

            // Page-poll from the origin: 200 with an opaque cursor, no rows
            // (the seeded bundles are not sandwiches).
            let page = client.get("/api/live?limit=10").await.unwrap();
            assert_eq!(page.status, 200);
            let text = String::from_utf8_lossy(&page.body).to_string();
            assert!(text.contains("\"cursor\":\"v1."), "{text}");
            assert!(text.contains("\"total_after\":0"), "{text}");

            // Long-poll with a short bound: returns (empty) after the
            // wait rather than hanging.
            let waited = client.get("/api/live?wait_ms=60").await.unwrap();
            assert_eq!(waited.status, 200);
            let snap = registry.snapshot();
            assert_eq!(snap.counter(names::QUERY_LIVE_LONG_POLLS), Some(1));
            assert!(snap.counter(names::QUERY_LIVE_REQUESTS) >= Some(2));

            server.shutdown().await;
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }

    #[test]
    fn endpoints_serve_over_a_socket_with_cache_and_generation_header() {
        block_on(async {
            let dir = seed_store("socket", 2);
            let registry = Registry::new();
            let service =
                QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
            let generation = service.generation();
            let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
            let client = HttpClient::new(server.local_addr());

            let first = client.get("/api/summary").await.unwrap();
            assert_eq!(first.status, 200);
            assert_eq!(
                first.header_value("x-query-generation"),
                Some(generation.as_str()),
                "generation header on every response"
            );
            let second = client.get("/api/summary").await.unwrap();
            assert_eq!(first.body, second.body, "cache returns identical bytes");
            let snap = registry.snapshot();
            assert_eq!(snap.counter(names::QUERY_CACHE_MISSES), Some(1));
            assert_eq!(snap.counter(names::QUERY_CACHE_HITS), Some(1));

            // Malformed parameters: 400, never cached, never fatal.
            let bad = client.get("/api/attackers?limit=banana").await.unwrap();
            assert_eq!(bad.status, 400);
            let still_up = client.get("/api/days").await.unwrap();
            assert_eq!(still_up.status, 200);

            // Unknown attacker via a path parameter: 404 JSON.
            let missing = client
                .get("/api/attacker/1111111111111111111111111111111111111111111")
                .await
                .unwrap();
            assert!(missing.status == 404 || missing.status == 400);

            server.shutdown().await;
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }

    #[test]
    fn admission_control_sheds_with_retry_after_but_health_stays_up() {
        block_on(async {
            let dir = seed_store("admit", 1);
            let registry = Registry::new();
            let mut config = QueryServiceConfig::new(&dir);
            config.max_in_flight = 0; // admit nothing: every API call sheds
            let service = QueryService::open(config, registry.clone()).unwrap();
            let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
            let client = HttpClient::new(server.local_addr());

            let shed = client.get("/api/summary").await.unwrap();
            assert_eq!(shed.status, 503);
            assert_eq!(shed.header_value("retry-after"), Some("1"));
            assert!(String::from_utf8_lossy(&shed.body).contains("capacity"));
            assert_eq!(registry.snapshot().counter(names::QUERY_SHED), Some(1));

            // Liveness and readiness are exempt from admission control.
            let health = client.get("/healthz").await.unwrap();
            assert_eq!(health.status, 200);
            let ready = client.get("/readyz").await.unwrap();
            assert_eq!(ready.status, 200);
            assert!(String::from_utf8_lossy(&ready.body).contains("\"ready\":true"));

            server.shutdown().await;
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }

    #[test]
    fn quarantined_segment_degrades_coverage_but_keeps_serving() {
        block_on(async {
            let dir = seed_store("quarantine", 3);

            // Corrupt one segment body and let the doctor quarantine it.
            let victim = Manifest::load(&dir).unwrap().segments[0].file.clone();
            let path = dir.join(&victim);
            let mut image = std::fs::read(&path).unwrap();
            image[12] ^= 0x40; // inside the body: unrecoverable by design
            std::fs::write(&path, &image).unwrap();
            let report = sandwich_store::doctor::repair(&dir).unwrap();
            assert_eq!(report.quarantined, 1, "doctor quarantined the victim");

            let registry = Registry::new();
            let service =
                QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
            let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
            let client = HttpClient::new(server.local_addr());

            let summary = client.get("/api/summary").await.unwrap();
            assert_eq!(summary.status, 200, "queryd serves over a damaged store");
            let text = String::from_utf8_lossy(&summary.body).to_string();
            assert!(text.contains("\"segments_quarantined\":1"), "{text}");
            assert!(text.contains("\"bundles_quarantined\":10"), "{text}");
            assert!(text.contains("\"complete\":false"), "{text}");
            assert!(
                text.contains("\"bundles\":20"),
                "two clean segments: {text}"
            );

            let health = client.get("/healthz").await.unwrap();
            assert_eq!(health.status, 200);
            let ready = client.get("/readyz").await.unwrap();
            assert_eq!(ready.status, 200);
            assert!(String::from_utf8_lossy(&ready.body).contains("\"complete\":false"));

            server.shutdown().await;
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }

    #[test]
    fn spec_change_rebuilds_instead_of_folding_and_serves_validators() {
        block_on(async {
            let dir = seed_store("specswap", 2);
            let registry = Registry::new();
            let service =
                QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
            let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
            let client = HttpClient::new(server.local_addr());

            // No validator spec yet: the leaderboard answers, empty.
            let none = client.get("/api/validators").await.unwrap();
            assert_eq!(none.status, 200);
            assert!(String::from_utf8_lossy(&none.body).contains("\"total\":0"));

            // Attach a spec: the generation changes, and the in-memory
            // base (built without attribution) must NOT fold forward —
            // the reload rebuilds from segments under the new spec.
            let sealed = Manifest::load(&dir).unwrap().segments;
            let mut w = StoreWriter::resume(&dir, &sealed).unwrap();
            w.set_validators(sandwich_attrib::ValidatorSpec::new(7, 6))
                .unwrap();
            assert!(service.reload().unwrap());
            let snap = registry.snapshot();
            assert_eq!(snap.counter(names::ATTRIB_SPEC_MISMATCH_REBUILDS), Some(1));
            assert_eq!(snap.counter(names::QUERY_INDEX_FULL_REBUILDS), Some(1));
            assert_eq!(snap.counter(names::ATTRIB_SCHEDULE_BUILDS), Some(1));

            // Every spec validator gets a row even with zero sandwiches.
            let page = client.get("/api/validators?limit=10").await.unwrap();
            assert_eq!(page.status, 200);
            let text = String::from_utf8_lossy(&page.body).to_string();
            assert!(text.contains("\"total\":6"), "{text}");
            assert!(text.contains("\"blocks_led\""), "{text}");
            assert!(text.contains("\"stake_pools\""), "{text}");
            assert_eq!(
                registry
                    .snapshot()
                    .counter(names::QUERY_VALIDATORS_REQUESTS),
                Some(2)
            );

            // Unknown validator: 404 JSON, just like unknown attackers.
            let missing = client
                .get("/api/validator/1111111111111111111111111111111111111111111")
                .await
                .unwrap();
            assert!(missing.status == 404 || missing.status == 400);
            assert_eq!(
                registry
                    .snapshot()
                    .counter(names::QUERY_VALIDATOR_DETAIL_REQUESTS),
                Some(1)
            );

            server.shutdown().await;
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }

    #[test]
    fn failed_reload_keeps_serving_stale_and_flips_readyz() {
        block_on(async {
            let dir = seed_store("stale", 1);
            let service =
                QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();
            let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
            let client = HttpClient::new(server.local_addr());

            // Break the store out from under the daemon, then reload.
            let manifest_path = dir.join(sandwich_store::MANIFEST_FILE);
            let manifest_bytes = std::fs::read(&manifest_path).unwrap();
            std::fs::remove_file(&manifest_path).unwrap();
            assert!(service.reload().is_err());

            // Stale-while-revalidate: the old generation keeps answering.
            let summary = client.get("/api/summary").await.unwrap();
            assert_eq!(summary.status, 200);
            let ready = client.get("/readyz").await.unwrap();
            assert_eq!(ready.status, 503);
            assert_eq!(ready.header_value("retry-after"), Some("3"));
            let health = client.get("/healthz").await.unwrap();
            assert_eq!(health.status, 200, "liveness is not readiness");

            // Restore the manifest: the next reload clears readiness.
            std::fs::write(&manifest_path, &manifest_bytes).unwrap();
            assert!(!service.reload().unwrap(), "same generation: no swap");
            let ready = client.get("/readyz").await.unwrap();
            assert_eq!(ready.status, 200);

            server.shutdown().await;
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }
}
