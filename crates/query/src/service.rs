//! The `queryd` HTTP service: routes, caching, metrics, and engine
//! lifecycle (load-or-build on open, atomic swap on reload).
//!
//! Consistency model: a handler snapshots the engine `Arc` exactly once
//! per request, so every response is computed against a single manifest
//! generation even while a reload swaps the engine mid-flight — there are
//! no torn reads by construction. The generation that answered is echoed
//! in the `x-query-generation` response header.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use sandwich_net::{Method, Request, Response, Router};
use sandwich_obs::{names, Registry};
use sandwich_store::{BundleStore, Manifest};

use crate::cache::{CacheOutcome, ResponseCache};
use crate::engine::{error_response, Engine, QueryRequest};
use crate::index::{build_index, generation_of, load_index, save_index, IndexReject, QueryConfig};

/// Tunables for one service instance.
#[derive(Clone, Debug)]
pub struct QueryServiceConfig {
    /// Directory of the sealed bundle store (and the persisted index).
    pub store_dir: PathBuf,
    /// Index-build semantics (detector, threshold, clock, threads).
    pub query: QueryConfig,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// Entries per cache shard.
    pub cache_per_shard: usize,
}

impl QueryServiceConfig {
    /// Paper-default semantics over `store_dir` with a small cache.
    pub fn new(store_dir: impl Into<PathBuf>) -> Self {
        QueryServiceConfig {
            store_dir: store_dir.into(),
            query: QueryConfig::default(),
            cache_shards: 8,
            cache_per_shard: 128,
        }
    }
}

struct ServiceInner {
    config: QueryServiceConfig,
    engine: RwLock<Arc<Engine>>,
    cache: ResponseCache,
    registry: Registry,
}

/// The query service: open once, serve many, reload on demand.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

/// Load the persisted index when it verifies, rebuild from segments when
/// it does not, and record which happened.
fn load_or_build(
    store: &BundleStore,
    config: &QueryConfig,
    registry: &Registry,
) -> std::io::Result<Engine> {
    let generation = generation_of(store.manifest());
    let index = match load_index(store.dir(), &generation) {
        Ok(index) => {
            registry.counter(names::QUERY_INDEX_LOADS).inc();
            index
        }
        Err(reject) => {
            if reject != IndexReject::Missing {
                registry.counter(names::QUERY_INDEX_REJECTED).inc();
            }
            let started = Instant::now();
            let index = build_index(store, config)?;
            registry
                .histogram(names::QUERY_INDEX_BUILD_SECONDS)
                .observe(started.elapsed().as_secs_f64());
            registry.counter(names::QUERY_INDEX_REBUILDS).inc();
            save_index(store.dir(), &index)?;
            index
        }
    };
    Ok(Engine::new(Arc::new(index)))
}

impl QueryService {
    /// Open the store, load or build the index, and make the service
    /// ready to serve. Metrics land in `registry`.
    pub fn open(config: QueryServiceConfig, registry: Registry) -> std::io::Result<QueryService> {
        let store = BundleStore::open(&config.store_dir)?;
        let engine = load_or_build(&store, &config.query, &registry)?;
        let cache = ResponseCache::new(config.cache_shards, config.cache_per_shard);
        Ok(QueryService {
            inner: Arc::new(ServiceInner {
                config,
                engine: RwLock::new(Arc::new(engine)),
                cache,
                registry,
            }),
        })
    }

    /// The generation currently being served.
    pub fn generation(&self) -> String {
        self.inner.engine.read().generation().to_string()
    }

    /// The metrics registry this service records into.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The engine snapshot currently serving (for harnesses that compare
    /// live responses against uncached evaluation).
    pub fn engine_snapshot(&self) -> Arc<Engine> {
        self.inner.engine.read().clone()
    }

    /// Re-check the manifest; when its generation changed, load-or-build
    /// the new index and swap it in atomically. Returns `true` when a new
    /// generation went live. In-flight requests keep the engine snapshot
    /// they already took.
    pub fn reload(&self) -> std::io::Result<bool> {
        let manifest = Manifest::load(&self.inner.config.store_dir)?;
        let generation = generation_of(&manifest);
        if *self.inner.engine.read().generation() == generation {
            return Ok(false);
        }
        let store = BundleStore::open(&self.inner.config.store_dir)?;
        let engine = load_or_build(&store, &self.inner.config.query, &self.inner.registry)?;
        *self.inner.engine.write() = Arc::new(engine);
        self.inner.registry.counter(names::QUERY_RELOADS).inc();
        Ok(true)
    }

    async fn handle(&self, endpoint: &'static str, request: Request) -> Response {
        let inner = &self.inner;
        inner.registry.counter(names::QUERY_REQUESTS).inc();
        let timer = Instant::now();

        // One engine snapshot per request: everything below answers from
        // this generation, reloads notwithstanding.
        let engine: Arc<Engine> = inner.engine.read().clone();

        let response = match QueryRequest::parse(endpoint, &request) {
            Err(message) => {
                // Invalid parameters never reach the cache.
                let cached = error_response(400, message);
                (Arc::new(cached), CacheOutcome::Miss, 0)
            }
            Ok(query) => {
                let key = format!("{}|{}", engine.generation(), query.canonical_key());
                let evaluate = {
                    let engine = engine.clone();
                    move || engine.evaluate(&query)
                };
                inner.cache.get_or_compute(&key, evaluate).await
            }
        };
        let (cached, outcome, evicted) = response;
        match outcome {
            CacheOutcome::Hit => inner.registry.counter(names::QUERY_CACHE_HITS).inc(),
            CacheOutcome::Miss => inner.registry.counter(names::QUERY_CACHE_MISSES).inc(),
            CacheOutcome::Deduped => {
                inner
                    .registry
                    .counter(names::QUERY_CACHE_SINGLE_FLIGHT_WAITS)
                    .inc();
                inner.registry.counter(names::QUERY_CACHE_HITS).inc();
            }
        }
        if evicted > 0 {
            inner
                .registry
                .counter(names::QUERY_CACHE_EVICTIONS)
                .add(evicted);
        }
        inner
            .registry
            .histogram(&format!("{}{endpoint}", names::QUERY_SECONDS_PREFIX))
            .observe(timer.elapsed().as_secs_f64());

        Response::new(cached.status, cached.body.clone())
            .header("content-type", &cached.content_type)
            .header("x-query-generation", engine.generation())
    }

    /// The API router (plus `GET /metrics` from the shared registry).
    pub fn router(&self) -> Router {
        let endpoints: [(&'static str, &'static str); 6] = [
            ("summary", "/api/summary"),
            ("days", "/api/days"),
            ("attackers", "/api/attackers"),
            ("attacker", "/api/attacker/{pubkey}"),
            ("pool", "/api/pool/{mint}"),
            ("sandwiches", "/api/sandwiches"),
        ];
        let mut router = Router::new();
        for (endpoint, path) in endpoints {
            let service = self.clone();
            router = router.route(Method::Get, path, move |request: Request| {
                let service = service.clone();
                async move { service.handle(endpoint, request).await }
            });
        }
        router.with_metrics(self.inner.registry.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_net::{HttpClient, Server};
    use sandwich_store::{CollectedBundle, StoreWriter};
    use sandwich_types::{Hash, Keypair, Lamports, Slot};

    fn bundle(seed: u64, slot: u64, tip: u64) -> CollectedBundle {
        let kp = Keypair::from_label("qsvc");
        CollectedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            timestamp_ms: slot * 400,
            tip: Lamports(tip),
            tx_ids: vec![kp.sign(&seed.to_le_bytes())],
        }
    }

    fn seed_store(tag: &str, segments: u64) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swqsvc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::create(&dir).unwrap();
        for seg in 0..segments {
            let bundles: Vec<_> = (0..10)
                .map(|i| bundle(seg * 100 + i, seg * 50 + i, 30_000))
                .collect();
            w.seal_segment(bundles, Vec::new(), Vec::new()).unwrap();
        }
        dir
    }

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        tokio::runtime::Builder::new_multi_thread()
            .enable_all()
            .build()
            .unwrap()
            .block_on(fut)
    }

    #[test]
    fn open_builds_then_reopen_loads() {
        let dir = seed_store("reopen", 2);

        let r1 = Registry::new();
        let service = QueryService::open(QueryServiceConfig::new(&dir), r1.clone()).unwrap();
        let generation = service.generation();
        let snap = r1.snapshot();
        assert_eq!(snap.counter(names::QUERY_INDEX_REBUILDS), Some(1));
        assert_eq!(snap.counter(names::QUERY_INDEX_LOADS), None);

        // Second open against an unchanged manifest: pure load, no rebuild.
        let r2 = Registry::new();
        let service = QueryService::open(QueryServiceConfig::new(&dir), r2.clone()).unwrap();
        assert_eq!(service.generation(), generation);
        let snap = r2.snapshot();
        assert_eq!(snap.counter(names::QUERY_INDEX_REBUILDS), None);
        assert_eq!(snap.counter(names::QUERY_INDEX_LOADS), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_index_is_rejected_and_rebuilt() {
        let dir = seed_store("corrupt", 1);
        QueryService::open(QueryServiceConfig::new(&dir), Registry::new()).unwrap();

        let path = dir.join(crate::index::INDEX_FILE);
        let mut image = std::fs::read(&path).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x01;
        std::fs::write(&path, &image).unwrap();

        let registry = Registry::new();
        QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::QUERY_INDEX_REJECTED), Some(1));
        assert_eq!(snap.counter(names::QUERY_INDEX_REBUILDS), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_is_noop_without_manifest_change() {
        let dir = seed_store("noop", 1);
        let registry = Registry::new();
        let service = QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
        assert!(!service.reload().unwrap());
        assert_eq!(registry.snapshot().counter(names::QUERY_RELOADS), None);

        // Seal another segment: the reload goes live and says so.
        let sealed = Manifest::load(&dir).unwrap().segments;
        let mut w = StoreWriter::resume(&dir, &sealed).unwrap();
        w.seal_segment(vec![bundle(999, 500, 30_000)], Vec::new(), Vec::new())
            .unwrap();
        assert!(service.reload().unwrap());
        assert_eq!(registry.snapshot().counter(names::QUERY_RELOADS), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn endpoints_serve_over_a_socket_with_cache_and_generation_header() {
        block_on(async {
            let dir = seed_store("socket", 2);
            let registry = Registry::new();
            let service =
                QueryService::open(QueryServiceConfig::new(&dir), registry.clone()).unwrap();
            let generation = service.generation();
            let server = Server::bind("127.0.0.1:0", service.router()).await.unwrap();
            let client = HttpClient::new(server.local_addr());

            let first = client.get("/api/summary").await.unwrap();
            assert_eq!(first.status, 200);
            assert_eq!(
                first.header_value("x-query-generation"),
                Some(generation.as_str()),
                "generation header on every response"
            );
            let second = client.get("/api/summary").await.unwrap();
            assert_eq!(first.body, second.body, "cache returns identical bytes");
            let snap = registry.snapshot();
            assert_eq!(snap.counter(names::QUERY_CACHE_MISSES), Some(1));
            assert_eq!(snap.counter(names::QUERY_CACHE_HITS), Some(1));

            // Malformed parameters: 400, never cached, never fatal.
            let bad = client.get("/api/attackers?limit=banana").await.unwrap();
            assert_eq!(bad.status, 400);
            let still_up = client.get("/api/days").await.unwrap();
            assert_eq!(still_up.status, 200);

            // Unknown attacker via a path parameter: 404 JSON.
            let missing = client
                .get("/api/attacker/1111111111111111111111111111111111111111111")
                .await
                .unwrap();
            assert!(missing.status == 404 || missing.status == 400);

            server.shutdown().await;
            std::fs::remove_dir_all(&dir).unwrap();
        });
    }
}
