//! Secondary indexes over a sealed bundle store: one parallel pass over
//! the segments produces everything the query API answers from, so no
//! endpoint ever decodes a whole segment at request time.
//!
//! The index is keyed to the store's **manifest generation** — an FNV-1a 64
//! fingerprint of the manifest JSON. It persists next to the manifest as
//! `query-index.bin` in the store's checksummed framing (magic · JSON body ·
//! FNV footer), and is only trusted when the magic, checksum, *and*
//! generation all agree; anything else is rejected and rebuilt from the
//! segments.

use std::collections::HashMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use sandwich_attrib::{LeaderSchedule, ValidatorSpec};
use sandwich_core::{detect, is_defensive_at, Currency, DetectorConfig};
use sandwich_jito::BundleId;
use sandwich_ledger::{TransactionId, TransactionMeta};
use sandwich_store::crash::{write_durable_with, CrashPlan};
use sandwich_store::{fnv1a64, parallel_map, BundleStore, Manifest};
use sandwich_types::{Lamports, Pubkey, SlotClock, DEFENSIVE_TIP_THRESHOLD};

/// Index file name inside a store directory (next to `manifest.json`).
pub const INDEX_FILE: &str = "query-index.bin";

/// Leading magic of a persisted index file (includes the format version).
pub const INDEX_MAGIC: &[u8; 8] = b"SWQIX01\n";

/// Trailing magic of a persisted index file.
const INDEX_FOOTER_MAGIC: &[u8; 8] = b"SWQEND1\n";

/// What the index build needs to know about the analysis semantics.
#[derive(Clone, Debug)]
pub struct QueryConfig {
    /// Detection criteria (paper defaults).
    pub detector: DetectorConfig,
    /// Defensive-tip threshold (paper: 100,000 lamports).
    pub defensive_threshold: Lamports,
    /// Slot → wall-time mapping shared with the writer of the store.
    pub clock: SlotClock,
    /// Worker threads for the segment pass.
    pub threads: usize,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            detector: DetectorConfig::default(),
            defensive_threshold: DEFENSIVE_TIP_THRESHOLD,
            clock: SlotClock::default(),
            threads: 4,
        }
    }
}

/// The manifest generation: a 16-hex FNV-1a 64 fingerprint of the manifest
/// JSON. Sealing a segment changes the manifest, hence the generation.
pub fn generation_of(manifest: &Manifest) -> String {
    let json = serde_json::to_string(manifest).unwrap_or_default();
    format!("{:016x}", fnv1a64(json.as_bytes()))
}

/// Per-day rollup: Figure 1/2 numbers pre-aggregated for `/api/days`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DayRollup {
    /// Zero-based measurement day.
    pub day: u64,
    /// Calendar-ish label ("Feb 09").
    pub label: String,
    /// All bundles landed this day.
    pub bundles: u64,
    /// Bundles by length; index 0 = length 1, clamped at 5.
    pub bundles_by_len: Vec<u64>,
    /// Detected sandwiches.
    pub sandwiches: u64,
    /// Defensive length-1 bundles.
    pub defensive: u64,
    /// Victim losses, lamports.
    pub victim_loss_lamports: u128,
    /// Attacker gains, lamports.
    pub attacker_gain_lamports: i128,
    /// Total tips paid, lamports.
    pub tips_lamports: u128,
}

impl DayRollup {
    fn new(day: u64) -> Self {
        DayRollup {
            day,
            bundles_by_len: vec![0; 5],
            ..DayRollup::default()
        }
    }
}

/// One detected sandwich, as the API serves it: enough to render a row on
/// a tracker site without re-reading the segment it came from.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SandwichRef {
    /// Measurement day.
    pub day: u64,
    /// Landing slot.
    pub slot: u64,
    /// The bundle.
    pub bundle_id: BundleId,
    /// Attacker (signer of transactions 1 and 3).
    pub attacker: Pubkey,
    /// Victim (signer of transaction 2).
    pub victim: Pubkey,
    /// Token mints traded (the non-SOL legs).
    pub mints: Vec<Pubkey>,
    /// Whether one traded leg is SOL (only these carry loss/gain figures).
    pub sol_legged: bool,
    /// Victim loss in lamports, when priced.
    pub victim_loss_lamports: Option<u64>,
    /// Attacker gross gain in lamports, when priced.
    pub attacker_gain_lamports: Option<i128>,
    /// Total Jito tip paid inside the bundle.
    pub tip_lamports: u64,
    /// Leader of the landing slot, recomputed from the manifest's
    /// validator spec during the index build. `None` when the store
    /// predates attribution (no spec in the manifest).
    pub leader: Option<Pubkey>,
}

/// Aggregates for one validator of the chain's leader schedule, plus the
/// refs behind them. Entries exist for **every** validator in the spec —
/// including those with zero sandwiches — so shard merges and stake-pool
/// rollups see the same universe everywhere.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatorEntry {
    /// The validator's identity address.
    pub pubkey: Pubkey,
    /// Derived stake, lamports (public chain data).
    pub stake_lamports: u64,
    /// Stake-pool affiliation (derived, public chain data).
    pub stake_pool: String,
    /// Slots this validator led in `[0, max_slot]`. Monotone
    /// non-decreasing in `max_slot`, which is why the shard router can
    /// merge this field by element-wise max.
    pub blocks_led: u64,
    /// Distinct slots this validator led that contained at least one
    /// detected sandwich, sorted ascending. Shards merge by union.
    pub sandwich_slots: Vec<u64>,
    /// Sandwiches landed in this validator's slots.
    pub sandwiches: u64,
    /// Summed priced attacker gains in this validator's slots, lamports.
    pub attacker_gain_lamports: i128,
    /// Summed priced victim losses in this validator's slots, lamports.
    pub victim_loss_lamports: u128,
    /// Summed sandwich-bundle tips in this validator's slots, lamports.
    pub tips_lamports: u128,
    /// Indices into [`QueryIndex::refs`], slot-ordered.
    pub refs: Vec<u32>,
}

/// Aggregates for one attacker, plus the refs behind them.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackerEntry {
    /// The attacker's address.
    pub attacker: Pubkey,
    /// Sandwiches attributed to this attacker.
    pub sandwiches: u64,
    /// Summed priced gains, lamports.
    pub attacker_gain_lamports: i128,
    /// Summed priced victim losses inflicted, lamports.
    pub victim_loss_lamports: u128,
    /// Summed bundle tips paid, lamports.
    pub tips_lamports: u128,
    /// Indices into [`QueryIndex::refs`], slot-ordered.
    pub refs: Vec<u32>,
}

/// Aggregates for one pool (token mint), plus the refs behind them.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// The traded token mint identifying the pool.
    pub mint: Pubkey,
    /// Sandwiches that traded this mint.
    pub sandwiches: u64,
    /// Summed priced victim losses in this pool, lamports.
    pub victim_loss_lamports: u128,
    /// Distinct attackers seen in this pool.
    pub attackers: u64,
    /// Indices into [`QueryIndex::refs`], slot-ordered.
    pub refs: Vec<u32>,
}

/// What fraction of the store this index actually describes. A healthy
/// build scans every serving segment; a degraded build (unreadable
/// segment files, quarantined segments in the manifest) still succeeds
/// but says exactly what it skipped, so `/api/summary` can surface the
/// gap instead of silently under-reporting.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexCoverage {
    /// Serving segments in the manifest when the build ran.
    pub segments_total: u64,
    /// Segments decoded and folded into the index.
    pub segments_scanned: u64,
    /// Segments the manifest had already quarantined (never read).
    pub segments_quarantined: u64,
    /// Serving segments that failed to read or decode and were skipped.
    pub segments_failed: u64,
    /// Bundles inside the scanned segments.
    pub bundles_scanned: u64,
    /// Bundles inside quarantined segments (per their manifest entries).
    pub bundles_quarantined: u64,
    /// Bundles inside skipped segments (per their manifest entries).
    pub bundles_failed: u64,
}

impl IndexCoverage {
    /// `true` when nothing was skipped or quarantined — the index
    /// describes every bundle ever sealed into the store.
    pub fn complete(&self) -> bool {
        self.segments_failed == 0 && self.segments_quarantined == 0
    }
}

/// Store-wide totals for `/api/summary`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexTotals {
    /// Segments indexed.
    pub segments: u64,
    /// All bundles.
    pub bundles: u64,
    /// Detected sandwiches.
    pub sandwiches: u64,
    /// Sandwiches without a SOL leg (unpriced).
    pub non_sol_sandwiches: u64,
    /// Defensive length-1 bundles.
    pub defensive: u64,
    /// Summed victim losses, lamports.
    pub victim_loss_lamports: u128,
    /// Summed attacker gains, lamports.
    pub attacker_gain_lamports: i128,
    /// Summed tips across all bundles, lamports.
    pub tips_lamports: u128,
    /// Highest bundle slot indexed.
    pub max_slot: u64,
}

/// The complete secondary index for one manifest generation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryIndex {
    /// The manifest generation this index describes.
    pub generation: String,
    /// How much of the store the build covered (degraded-mode accounting).
    pub coverage: IndexCoverage,
    /// Store-wide totals.
    pub totals: IndexTotals,
    /// Per-day rollups, dense from day 0.
    pub days: Vec<DayRollup>,
    /// Every detected sandwich, sorted by `(slot, bundle_id)`.
    pub refs: Vec<SandwichRef>,
    /// Attacker leaderboard: gain desc, then count desc, then address asc.
    pub attackers: Vec<AttackerEntry>,
    /// Pool leaderboard: loss desc, then count desc, then mint asc.
    pub pools: Vec<PoolEntry>,
    /// Sorted file names of the serving segments this index folded — the
    /// snapshot [`sandwich_store::Manifest::delta_from`] diffs against on
    /// the incremental reload path. Pre-fold index files lack this field
    /// and fail to parse ([`IndexReject::BadBody`]), forcing exactly one
    /// rebuild on upgrade.
    pub segment_files: Vec<String>,
    /// Sorted file names of the quarantined segments accounted for.
    pub quarantined_files: Vec<String>,
    /// The validator spec the leaderboard was computed under (from the
    /// store manifest). `None` for a pre-attribution store — and for
    /// index files persisted before this field existed, which decode
    /// with both attribution fields absent.
    pub validator_spec: Option<ValidatorSpec>,
    /// Validator leaderboard: sandwich rate (sandwiches per block led)
    /// desc, then count desc, then address asc. One entry per spec
    /// validator. `None` when the store has no validator spec.
    pub validators: Option<Vec<ValidatorEntry>>,
}

/// Per-segment partial of the index build (merged in segment order).
#[derive(Default)]
struct IndexPartial {
    days: Vec<DayRollup>,
    refs: Vec<SandwichRef>,
    non_sol: u64,
    max_slot: u64,
}

impl IndexPartial {
    fn day_mut(&mut self, day: u64) -> &mut DayRollup {
        let needed = day as usize + 1;
        while self.days.len() < needed {
            self.days.push(DayRollup::new(self.days.len() as u64));
        }
        &mut self.days[day as usize]
    }

    fn merge(&mut self, other: IndexPartial) {
        for rollup in other.days {
            let into = self.day_mut(rollup.day);
            into.bundles += rollup.bundles;
            for (a, b) in into.bundles_by_len.iter_mut().zip(&rollup.bundles_by_len) {
                *a += b;
            }
            into.sandwiches += rollup.sandwiches;
            into.defensive += rollup.defensive;
            into.victim_loss_lamports += rollup.victim_loss_lamports;
            into.attacker_gain_lamports += rollup.attacker_gain_lamports;
            into.tips_lamports += rollup.tips_lamports;
        }
        self.refs.extend(other.refs);
        self.non_sol += other.non_sol;
        self.max_slot = self.max_slot.max(other.max_slot);
    }
}

fn partial_of_segment(
    data: sandwich_store::SegmentData,
    config: &QueryConfig,
    schedule: Option<&LeaderSchedule>,
) -> IndexPartial {
    let mut partial = IndexPartial::default();
    let lookup: HashMap<TransactionId, TransactionMeta> = data
        .details
        .into_iter()
        .map(|d| (d.meta.tx_id, d.meta))
        .collect();
    for bundle in &data.bundles {
        let day = config.clock.day_index(bundle.slot);
        partial.max_slot = partial.max_slot.max(bundle.slot.0);
        let rollup = partial.day_mut(day);
        rollup.bundles += 1;
        let len = bundle.len().clamp(1, 5);
        rollup.bundles_by_len[len - 1] += 1;
        rollup.tips_lamports += u128::from(bundle.tip.0);
        if is_defensive_at(bundle, config.defensive_threshold) {
            rollup.defensive += 1;
        }
        if len != 3 {
            continue;
        }
        let Some(metas) = bundle
            .tx_ids
            .iter()
            .map(|id| lookup.get(id))
            .collect::<Option<Vec<_>>>()
        else {
            continue;
        };
        let Some(finding) = detect(&config.detector, [metas[0], metas[1], metas[2]]) else {
            continue;
        };
        let rollup = partial.day_mut(day);
        rollup.sandwiches += 1;
        if let Some(loss) = finding.victim_loss_lamports {
            rollup.victim_loss_lamports += u128::from(loss);
        }
        if let Some(gain) = finding.attacker_gain_lamports {
            rollup.attacker_gain_lamports += gain;
        }
        if !finding.sol_legged {
            partial.non_sol += 1;
        }
        let mints = finding
            .currencies
            .iter()
            .filter_map(|c| match c {
                Currency::Sol => None,
                Currency::Token(mint) => Some(*mint),
            })
            .collect();
        partial.refs.push(SandwichRef {
            day,
            slot: bundle.slot.0,
            bundle_id: bundle.bundle_id,
            attacker: finding.attacker,
            victim: finding.victim,
            mints,
            sol_legged: finding.sol_legged,
            victim_loss_lamports: finding.victim_loss_lamports,
            attacker_gain_lamports: finding.attacker_gain_lamports,
            tip_lamports: bundle.tip.0,
            leader: schedule.map(|s| s.leader_at(bundle.slot)),
        });
    }
    partial
}

/// Build the index from every sealed segment of `store` on
/// `config.threads` workers. Deterministic: the result depends only on the
/// store contents, never on the worker count or interleaving.
///
/// Degraded mode: a segment that fails to read or decode is *skipped*,
/// not fatal — the build still returns an index, and
/// [`QueryIndex::coverage`] records exactly which segments (and how many
/// bundles) are missing from it. Quarantined segments are accounted for
/// from the manifest without being read.
pub fn build_index(store: &BundleStore, config: &QueryConfig) -> std::io::Result<QueryIndex> {
    let serving: Vec<usize> = (0..store.segments().len()).collect();
    let quarantined: Vec<usize> = (0..store.quarantined().len()).collect();
    build_index_subset(store, config, &serving, &quarantined)
}

/// Build an index over a **subset** of the store: `serving` indexes into
/// [`BundleStore::segments`], `quarantined` into
/// [`BundleStore::quarantined`]. This is the per-shard build — a shard
/// map partitions the manifest and each shard indexes only its slice.
///
/// The resulting index carries the *full* manifest generation (every
/// shard of one store generation agrees on it) and a coverage block that
/// accounts only for the subset, so summing coverage blocks across a
/// disjoint exhaustive partition reproduces the whole-store coverage
/// exactly.
pub fn build_index_subset(
    store: &BundleStore,
    config: &QueryConfig,
    serving: &[usize],
    quarantined: &[usize],
) -> std::io::Result<QueryIndex> {
    // One schedule for the whole build: recomputed from the manifest's
    // public validator spec, never read from the wire. A pre-attribution
    // store (no spec) indexes with `leader: None` on every ref.
    let spec = store.manifest().validators;
    let schedule = spec.as_ref().map(LeaderSchedule::new);
    let (partials, _workers) = parallel_map(serving, config.threads, |_, &i| {
        store
            .read_segment(i)
            .ok()
            .map(|data| partial_of_segment(data, config, schedule.as_ref()))
    });
    let mut acc = IndexPartial::default();
    let mut coverage = IndexCoverage {
        segments_total: serving.len() as u64,
        segments_quarantined: quarantined.len() as u64,
        bundles_quarantined: quarantined
            .iter()
            .filter_map(|&q| store.quarantined().get(q))
            .map(|q| q.meta.bundles)
            .sum(),
        ..IndexCoverage::default()
    };
    for (&i, partial) in serving.iter().zip(partials) {
        let bundles = store.segments()[i].bundles;
        match partial {
            Some(partial) => {
                coverage.segments_scanned += 1;
                coverage.bundles_scanned += bundles;
                acc.merge(partial);
            }
            None => {
                coverage.segments_failed += 1;
                coverage.bundles_failed += bundles;
            }
        }
    }
    let mut index = finalize(
        acc,
        coverage,
        generation_of(store.manifest()),
        serving.len() as u64,
        spec,
        config,
    );
    index.segment_files = serving
        .iter()
        .filter_map(|&i| store.segments().get(i))
        .map(|s| s.file.clone())
        .collect();
    index.segment_files.sort();
    index.quarantined_files = quarantined
        .iter()
        .filter_map(|&q| store.quarantined().get(q))
        .map(|q| q.meta.file.clone())
        .collect();
    index.quarantined_files.sort();
    Ok(index)
}

/// Fold already-built indexes into one, exactly as if their segments had
/// been scanned in a single [`build_index_subset`] pass: reconstruct each
/// part's pre-finalize partial (days, refs, non-SOL count, max slot —
/// the leaderboards and totals are pure functions of those), merge with
/// the same associative [`IndexPartial::merge`], sum the coverage blocks,
/// and finalize once under `generation`.
///
/// Because the merge is associative and commutative and `finalize` is a
/// deterministic function of the merged multiset, folding any partition
/// of the segments in any order is **byte-identical** to a from-scratch
/// rebuild — the invariant `tests/live_fold_props.rs` pins and the whole
/// live-tail reload path rests on.
pub fn fold_indexes(generation: &str, parts: Vec<QueryIndex>, config: &QueryConfig) -> QueryIndex {
    let mut acc = IndexPartial::default();
    let mut coverage = IndexCoverage::default();
    let mut segments = 0u64;
    let mut segment_files = Vec::new();
    let mut quarantined_files = Vec::new();
    // Every part of one store generation carries the same spec (or none);
    // the leaderboard is recomputed from the merged refs under it.
    let spec = parts.iter().find_map(|p| p.validator_spec);
    for part in parts {
        coverage.segments_total += part.coverage.segments_total;
        coverage.segments_scanned += part.coverage.segments_scanned;
        coverage.segments_quarantined += part.coverage.segments_quarantined;
        coverage.segments_failed += part.coverage.segments_failed;
        coverage.bundles_scanned += part.coverage.bundles_scanned;
        coverage.bundles_quarantined += part.coverage.bundles_quarantined;
        coverage.bundles_failed += part.coverage.bundles_failed;
        segments += part.totals.segments;
        segment_files.extend(part.segment_files);
        quarantined_files.extend(part.quarantined_files);
        acc.merge(IndexPartial {
            days: part.days,
            refs: part.refs,
            non_sol: part.totals.non_sol_sandwiches,
            max_slot: part.totals.max_slot,
        });
    }
    segment_files.sort();
    quarantined_files.sort();
    let mut folded = finalize(
        acc,
        coverage,
        generation.to_string(),
        segments,
        spec,
        config,
    );
    folded.segment_files = segment_files;
    folded.quarantined_files = quarantined_files;
    folded
}

/// Sort attacker entries into leaderboard order: gain desc, then count
/// desc, then address asc. The shard router re-sorts merged entries with
/// this exact comparator so ranks match the single-engine answer.
pub fn sort_attacker_entries(attackers: &mut [AttackerEntry]) {
    attackers.sort_by(|a, b| {
        b.attacker_gain_lamports
            .cmp(&a.attacker_gain_lamports)
            .then(b.sandwiches.cmp(&a.sandwiches))
            .then(a.attacker.cmp(&b.attacker))
    });
}

/// Sort pool entries into leaderboard order: loss desc, then count desc,
/// then mint asc. Shared with the shard router like
/// [`sort_attacker_entries`].
pub fn sort_pool_entries(pools: &mut [PoolEntry]) {
    pools.sort_by(|a, b| {
        b.victim_loss_lamports
            .cmp(&a.victim_loss_lamports)
            .then(b.sandwiches.cmp(&a.sandwiches))
            .then(a.mint.cmp(&b.mint))
    });
}

/// Sort validator entries into leaderboard order: sandwich **rate**
/// (sandwiches per block led) desc, then sandwich count desc, then
/// address asc. The rate comparison cross-multiplies in `u128` —
/// `a.sandwiches * b.blocks_led` vs `b.sandwiches * a.blocks_led` — so
/// there is no float anywhere and the shard router's re-sort of merged
/// entries is bit-identical to the single-engine order.
pub fn sort_validator_entries(validators: &mut [ValidatorEntry]) {
    validators.sort_by(|a, b| {
        let a_rate = u128::from(a.sandwiches) * u128::from(b.blocks_led);
        let b_rate = u128::from(b.sandwiches) * u128::from(a.blocks_led);
        b_rate
            .cmp(&a_rate)
            .then(b.sandwiches.cmp(&a.sandwiches))
            .then(a.pubkey.cmp(&b.pubkey))
    });
}

fn finalize(
    mut acc: IndexPartial,
    coverage: IndexCoverage,
    generation: String,
    segments: u64,
    spec: Option<ValidatorSpec>,
    config: &QueryConfig,
) -> QueryIndex {
    acc.refs.sort_by_key(|r| (r.slot, r.bundle_id.0));
    for (day, rollup) in acc.days.iter_mut().enumerate() {
        rollup.label = config.clock.day_label(day as u64);
    }

    let mut attackers: HashMap<Pubkey, AttackerEntry> = HashMap::new();
    let mut pools: HashMap<Pubkey, PoolEntry> = HashMap::new();
    let mut pool_attackers: HashMap<Pubkey, std::collections::BTreeSet<Pubkey>> = HashMap::new();
    for (i, r) in acc.refs.iter().enumerate() {
        let entry = attackers
            .entry(r.attacker)
            .or_insert_with(|| AttackerEntry {
                attacker: r.attacker,
                sandwiches: 0,
                attacker_gain_lamports: 0,
                victim_loss_lamports: 0,
                tips_lamports: 0,
                refs: Vec::new(),
            });
        entry.sandwiches += 1;
        entry.attacker_gain_lamports += r.attacker_gain_lamports.unwrap_or(0);
        entry.victim_loss_lamports += u128::from(r.victim_loss_lamports.unwrap_or(0));
        entry.tips_lamports += u128::from(r.tip_lamports);
        entry.refs.push(i as u32);
        for mint in &r.mints {
            let pool = pools.entry(*mint).or_insert_with(|| PoolEntry {
                mint: *mint,
                sandwiches: 0,
                victim_loss_lamports: 0,
                attackers: 0,
                refs: Vec::new(),
            });
            pool.sandwiches += 1;
            pool.victim_loss_lamports += u128::from(r.victim_loss_lamports.unwrap_or(0));
            pool.refs.push(i as u32);
            pool_attackers.entry(*mint).or_default().insert(r.attacker);
        }
    }
    for (mint, set) in pool_attackers {
        if let Some(pool) = pools.get_mut(&mint) {
            pool.attackers = set.len() as u64;
        }
    }

    let mut attackers: Vec<AttackerEntry> = attackers.into_values().collect();
    sort_attacker_entries(&mut attackers);
    let mut pools: Vec<PoolEntry> = pools.into_values().collect();
    sort_pool_entries(&mut pools);

    // The validator leaderboard is a pure function of (refs, spec,
    // max_slot): every fold path recomputes it from the merged refs, so
    // fold-vs-rebuild byte-identity extends to attribution for free.
    let validators = spec.map(|spec| {
        let schedule = LeaderSchedule::new(&spec);
        let blocks_led = schedule.slots_led_through(acc.max_slot);
        let by_pubkey: HashMap<Pubkey, usize> = schedule
            .validators()
            .iter()
            .enumerate()
            .map(|(i, v)| (v.pubkey, i))
            .collect();
        let mut entries: Vec<ValidatorEntry> = schedule
            .validators()
            .iter()
            .enumerate()
            .map(|(i, v)| ValidatorEntry {
                pubkey: v.pubkey,
                stake_lamports: v.stake_lamports,
                stake_pool: v.stake_pool.to_string(),
                blocks_led: blocks_led[i],
                sandwich_slots: Vec::new(),
                sandwiches: 0,
                attacker_gain_lamports: 0,
                victim_loss_lamports: 0,
                tips_lamports: 0,
                refs: Vec::new(),
            })
            .collect();
        let mut slot_sets: Vec<std::collections::BTreeSet<u64>> =
            vec![std::collections::BTreeSet::new(); entries.len()];
        for (i, r) in acc.refs.iter().enumerate() {
            let Some(leader) = r.leader else { continue };
            let Some(&v) = by_pubkey.get(&leader) else {
                continue;
            };
            let entry = &mut entries[v];
            entry.sandwiches += 1;
            entry.attacker_gain_lamports += r.attacker_gain_lamports.unwrap_or(0);
            entry.victim_loss_lamports += u128::from(r.victim_loss_lamports.unwrap_or(0));
            entry.tips_lamports += u128::from(r.tip_lamports);
            entry.refs.push(i as u32);
            slot_sets[v].insert(r.slot);
        }
        for (entry, slots) in entries.iter_mut().zip(slot_sets) {
            entry.sandwich_slots = slots.into_iter().collect();
        }
        sort_validator_entries(&mut entries);
        entries
    });

    let totals = IndexTotals {
        segments,
        bundles: acc.days.iter().map(|d| d.bundles).sum(),
        sandwiches: acc.refs.len() as u64,
        non_sol_sandwiches: acc.non_sol,
        defensive: acc.days.iter().map(|d| d.defensive).sum(),
        victim_loss_lamports: acc.days.iter().map(|d| d.victim_loss_lamports).sum(),
        attacker_gain_lamports: acc.days.iter().map(|d| d.attacker_gain_lamports).sum(),
        tips_lamports: acc.days.iter().map(|d| d.tips_lamports).sum(),
        max_slot: acc.max_slot,
    };
    QueryIndex {
        generation,
        coverage,
        totals,
        days: acc.days,
        refs: acc.refs,
        attackers,
        pools,
        segment_files: Vec::new(),
        quarantined_files: Vec::new(),
        validator_spec: spec,
        validators,
    }
}

/// Why a persisted index file was not trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexReject {
    /// No persisted index exists yet.
    Missing,
    /// Bad leading or trailing magic, or too short to frame.
    BadFrame,
    /// Body checksum disagrees with the footer (corruption).
    BadChecksum,
    /// The body does not parse as an index.
    BadBody,
    /// The index describes a different manifest generation.
    StaleGeneration {
        /// Generation recorded in the file.
        found: String,
        /// Generation of the live manifest.
        expected: String,
    },
}

impl std::fmt::Display for IndexReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexReject::Missing => write!(f, "no persisted index"),
            IndexReject::BadFrame => write!(f, "bad index framing"),
            IndexReject::BadChecksum => write!(f, "index checksum mismatch"),
            IndexReject::BadBody => write!(f, "index body does not parse"),
            IndexReject::StaleGeneration { found, expected } => {
                write!(f, "index generation {found} != manifest {expected}")
            }
        }
    }
}

/// Persist `index` next to the manifest, durably: temp file + fsync +
/// atomic rename + directory fsync, framed as `magic · JSON body ·
/// FNV-1a 64 checksum (LE) · footer magic`. A crash mid-save leaves the
/// previous index (or none) — never a torn frame.
pub fn save_index(dir: &Path, index: &QueryIndex) -> std::io::Result<()> {
    save_index_as(dir, index, INDEX_FILE)
}

/// [`save_index`] under an explicit file name — per-shard indexes persist
/// next to the whole-store one (e.g. `query-index.shard-0of4-<fp>.bin`)
/// without clobbering it.
pub fn save_index_as(dir: &Path, index: &QueryIndex, file: &str) -> std::io::Result<()> {
    save_index_with(dir, index, file, None)
}

/// [`save_index_as`] with an optional [`CrashPlan`] threaded through the
/// durable write: every temp-create / chunk-write / fsync / rename /
/// dir-fsync is an enumerated crash step, and the `write_durable_with`
/// invariant (destination is entirely-old or entirely-new at every step,
/// torn or clean) is what lets the fold-persist crash matrix prove a
/// reader never sees a torn index.
pub fn save_index_with(
    dir: &Path,
    index: &QueryIndex,
    file: &str,
    plan: Option<&mut CrashPlan>,
) -> std::io::Result<()> {
    let body = serde_json::to_vec(index)?;
    let mut image = Vec::with_capacity(body.len() + 24);
    image.extend_from_slice(INDEX_MAGIC);
    image.extend_from_slice(&body);
    image.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    image.extend_from_slice(INDEX_FOOTER_MAGIC);
    // Split the frame into thirds so torn-write crash points land inside
    // the JSON body, not only at the frame edges.
    let cuts = [image.len() / 3, 2 * image.len() / 3];
    write_durable_with(&dir.join(file), &image, &cuts, plan)
}

/// Load a persisted index, trusting it only when the framing, the
/// checksum, and the manifest generation all verify.
pub fn load_index(dir: &Path, expected_generation: &str) -> Result<QueryIndex, IndexReject> {
    load_index_as(dir, INDEX_FILE, expected_generation)
}

/// [`load_index`] under an explicit file name (see [`save_index_as`]).
pub fn load_index_as(
    dir: &Path,
    file: &str,
    expected_generation: &str,
) -> Result<QueryIndex, IndexReject> {
    let index = load_index_any(dir, file)?;
    if index.generation != expected_generation {
        return Err(IndexReject::StaleGeneration {
            found: index.generation,
            expected: expected_generation.to_string(),
        });
    }
    Ok(index)
}

/// Load a persisted index accepting **any** generation, as long as the
/// framing, checksum, and body all verify. This is the fold base after a
/// restart: a stale-but-valid index plus the manifest delta replaces a
/// full rebuild.
pub fn load_index_any(dir: &Path, file: &str) -> Result<QueryIndex, IndexReject> {
    let image = match std::fs::read(dir.join(file)) {
        Ok(image) => image,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(IndexReject::Missing),
        Err(_) => return Err(IndexReject::BadFrame),
    };
    let frame = INDEX_MAGIC.len() + 8 + INDEX_FOOTER_MAGIC.len();
    if image.len() < frame
        || &image[..INDEX_MAGIC.len()] != INDEX_MAGIC
        || &image[image.len() - INDEX_FOOTER_MAGIC.len()..] != INDEX_FOOTER_MAGIC
    {
        return Err(IndexReject::BadFrame);
    }
    let body = &image[INDEX_MAGIC.len()..image.len() - 8 - INDEX_FOOTER_MAGIC.len()];
    let checksum = u64::from_le_bytes(
        image[image.len() - 8 - INDEX_FOOTER_MAGIC.len()..image.len() - INDEX_FOOTER_MAGIC.len()]
            .try_into()
            .expect("8-byte checksum slice"),
    );
    if fnv1a64(body) != checksum {
        return Err(IndexReject::BadChecksum);
    }
    serde_json::from_slice(body).map_err(|_| IndexReject::BadBody)
}

/// Convenience: slot range owned by day `day` (for cold range scans).
pub fn day_slot_range(clock: &SlotClock, day: u64) -> (u64, u64) {
    let (start, end) = clock.day_range(day);
    (start.0, end.0)
}

/// Find the index of the first ref at or after `slot` (refs are
/// slot-sorted).
pub fn first_ref_at_or_after(refs: &[SandwichRef], slot: u64) -> usize {
    refs.partition_point(|r| r.slot < slot)
}

/// Find the index of the first ref strictly after the `(slot, bundle_id)`
/// live cursor position — the resume point for `/api/live` pagination.
pub fn first_ref_after_cursor(refs: &[SandwichRef], slot: u64, bundle_id: &BundleId) -> usize {
    refs.partition_point(|r| (r.slot, r.bundle_id.0) <= (slot, bundle_id.0))
}

/// Slots per wall-clock minute at Solana's 400 ms slot cadence — the
/// bucket width of the `/api/live` rolling aggregates. Derived purely
/// from slot numbers so every shard buckets identically without a clock.
pub const SLOTS_PER_MINUTE: u64 = 150;

/// Dense minutes in the `/api/live` rolling window (newest last).
pub const LIVE_MINUTES: u64 = 10;

/// The minute bucket a slot lands in.
pub fn minute_of(slot: u64) -> u64 {
    slot / SLOTS_PER_MINUTE
}

/// One minute bucket of the `/api/live` rolling aggregates: sandwich
/// counts and priced flows for sandwiches whose bundle landed in this
/// minute. Additive across any partition of the refs, so shard windows
/// sum to the single-engine window.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveMinute {
    /// Absolute minute ordinal (`slot / SLOTS_PER_MINUTE`).
    pub minute: u64,
    /// Sandwiches landing this minute.
    pub sandwiches: u64,
    /// Summed priced victim losses, lamports.
    pub victim_loss_lamports: u128,
    /// Summed priced attacker gains, lamports.
    pub attacker_gain_lamports: i128,
    /// Summed bundle tips of the sandwich bundles, lamports.
    pub tips_lamports: u128,
}

impl LiveMinute {
    fn empty(minute: u64) -> LiveMinute {
        LiveMinute {
            minute,
            ..LiveMinute::default()
        }
    }

    fn absorb_ref(&mut self, r: &SandwichRef) {
        self.sandwiches += 1;
        self.victim_loss_lamports += u128::from(r.victim_loss_lamports.unwrap_or(0));
        self.attacker_gain_lamports += r.attacker_gain_lamports.unwrap_or(0);
        self.tips_lamports += u128::from(r.tip_lamports);
    }

    fn absorb(&mut self, other: &LiveMinute) {
        self.sandwiches += other.sandwiches;
        self.victim_loss_lamports += other.victim_loss_lamports;
        self.attacker_gain_lamports += other.attacker_gain_lamports;
        self.tips_lamports += other.tips_lamports;
    }
}

/// The dense [`LIVE_MINUTES`]-wide rolling window ending at the minute of
/// `tip_slot`, aggregated from slot-sorted `refs`. Buckets with no
/// sandwiches are present and zero, so clients can chart the window
/// without gap-filling.
pub fn live_minutes(refs: &[SandwichRef], tip_slot: u64) -> Vec<LiveMinute> {
    let tip = minute_of(tip_slot);
    let start = tip.saturating_sub(LIVE_MINUTES - 1);
    let mut window: Vec<LiveMinute> = (start..=tip).map(LiveMinute::empty).collect();
    let from = first_ref_at_or_after(refs, start * SLOTS_PER_MINUTE);
    for r in &refs[from..] {
        let minute = minute_of(r.slot);
        if minute > tip {
            continue;
        }
        window[(minute - start) as usize].absorb_ref(r);
    }
    window
}

/// Re-window per-minute aggregates (e.g. concatenated shard windows) onto
/// the dense global window ending at `tip_slot`: sum buckets by absolute
/// minute, then slice the window, filling zeros. Shard windows are a
/// superset of each shard's contribution to the global window (every
/// shard tip is at most the global tip), so this reproduces
/// [`live_minutes`] over the union of the refs — the property the router
/// merge relies on.
pub fn window_minutes(
    minutes: impl IntoIterator<Item = LiveMinute>,
    tip_slot: u64,
) -> Vec<LiveMinute> {
    let mut by_minute: std::collections::BTreeMap<u64, LiveMinute> =
        std::collections::BTreeMap::new();
    for m in minutes {
        by_minute
            .entry(m.minute)
            .or_insert_with(|| LiveMinute::empty(m.minute))
            .absorb(&m);
    }
    let tip = minute_of(tip_slot);
    let start = tip.saturating_sub(LIVE_MINUTES - 1);
    (start..=tip)
        .map(|minute| {
            by_minute
                .remove(&minute)
                .unwrap_or_else(|| LiveMinute::empty(minute))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_store::StoreWriter;
    use sandwich_types::{Hash, Keypair, Slot};

    fn bundle(seed: u64, slot: u64, len: usize, tip: u64) -> sandwich_store::CollectedBundle {
        let kp = Keypair::from_label("qidx");
        sandwich_store::CollectedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(slot),
            timestamp_ms: slot * 400,
            tip: Lamports(tip),
            tx_ids: (0..len)
                .map(|i| kp.sign(&(seed * 16 + i as u64).to_le_bytes()))
                .collect(),
        }
    }

    fn tmp_store(tag: &str, segments: usize) -> BundleStore {
        let dir = std::env::temp_dir().join(format!("swquery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::create(&dir).unwrap();
        for seg in 0..segments as u64 {
            let bundles: Vec<_> = (0..20)
                .map(|i| bundle(seg * 100 + i, seg * 300 + i * 3, 1, 40_000 + i))
                .collect();
            w.seal_segment(bundles, Vec::new(), Vec::new()).unwrap();
        }
        w.into_reader()
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let store = tmp_store("threads", 5);
        let mut config = QueryConfig {
            threads: 1,
            ..QueryConfig::default()
        };
        let base = serde_json::to_string(&build_index(&store, &config).unwrap()).unwrap();
        for threads in [2, 8] {
            config.threads = threads;
            let other = serde_json::to_string(&build_index(&store, &config).unwrap()).unwrap();
            assert_eq!(base, other, "threads={threads}");
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn rollups_count_bundles_and_defensive() {
        let store = tmp_store("rollup", 2);
        let index = build_index(&store, &QueryConfig::default()).unwrap();
        assert_eq!(index.totals.segments, 2);
        assert_eq!(index.totals.bundles, 40);
        // Tips of 40,000..40,020 lamports are all under the 100k threshold.
        assert_eq!(index.totals.defensive, 40);
        assert_eq!(index.days.len(), 1, "all slots land on day 0");
        assert_eq!(index.days[0].bundles, 40);
        assert_eq!(index.days[0].bundles_by_len[0], 40);
        assert!(!index.days[0].label.is_empty());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn folding_per_segment_subsets_matches_the_full_build() {
        let store = tmp_store("fold", 4);
        let config = QueryConfig::default();
        let full = build_index(&store, &config).unwrap();
        assert_eq!(full.segment_files.len(), 4, "file coverage is recorded");
        let parts: Vec<QueryIndex> = (0..4)
            .map(|i| build_index_subset(&store, &config, &[i], &[]).unwrap())
            .collect();
        let folded = fold_indexes(&full.generation, parts, &config);
        assert_eq!(
            serde_json::to_string(&folded).unwrap(),
            serde_json::to_string(&full).unwrap(),
            "fold of per-segment builds must be byte-identical to one pass"
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn live_minutes_window_is_dense_and_rewindowable() {
        let store = tmp_store("livemin", 3);
        let index = build_index(&store, &QueryConfig::default()).unwrap();
        let window = live_minutes(&index.refs, index.totals.max_slot);
        assert_eq!(
            window.len() as u64,
            minute_of(index.totals.max_slot).min(LIVE_MINUTES - 1) + 1
        );
        assert_eq!(
            window.last().unwrap().minute,
            minute_of(index.totals.max_slot)
        );
        // Re-windowing the window is the identity (same tip).
        assert_eq!(
            window_minutes(window.clone(), index.totals.max_slot),
            window
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn persisted_index_roundtrips_and_rejects_corruption() {
        let store = tmp_store("persist", 3);
        let dir = store.dir().to_path_buf();
        let index = build_index(&store, &QueryConfig::default()).unwrap();
        save_index(&dir, &index).unwrap();

        let back = load_index(&dir, &index.generation).unwrap();
        assert_eq!(back, index);

        // A stale generation is rejected even when the bytes verify.
        match load_index(&dir, "0000000000000000") {
            Err(IndexReject::StaleGeneration { .. }) => {}
            other => panic!("expected stale-generation reject, got {other:?}"),
        }

        // Flip one body byte: the checksum catches it.
        let path = dir.join(INDEX_FILE);
        let mut image = std::fs::read(&path).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x20;
        std::fs::write(&path, &image).unwrap();
        assert_eq!(
            load_index(&dir, &index.generation).unwrap_err(),
            IndexReject::BadChecksum
        );

        // Truncation breaks the framing.
        std::fs::write(&path, &image[..10]).unwrap();
        assert_eq!(
            load_index(&dir, &index.generation).unwrap_err(),
            IndexReject::BadFrame
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_build_skips_unreadable_segments_with_exact_coverage() {
        let store = tmp_store("degraded", 3);
        let dir = store.dir().to_path_buf();
        let full = build_index(&store, &QueryConfig::default()).unwrap();
        assert!(full.coverage.complete());
        assert_eq!(full.coverage.segments_scanned, 3);
        assert_eq!(full.coverage.bundles_scanned, 60);

        // Delete one segment file out from under the reader: the build
        // degrades to the remaining segments instead of failing.
        std::fs::remove_file(dir.join(&store.segments()[1].file)).unwrap();
        let degraded = build_index(&store, &QueryConfig::default()).unwrap();
        assert!(!degraded.coverage.complete());
        assert_eq!(degraded.coverage.segments_scanned, 2);
        assert_eq!(degraded.coverage.segments_failed, 1);
        assert_eq!(degraded.coverage.bundles_failed, 20);
        assert_eq!(degraded.totals.bundles, 40, "skipped bundles are absent");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_index_is_reported_as_missing() {
        let store = tmp_store("missing", 1);
        assert_eq!(
            load_index(store.dir(), "whatever").unwrap_err(),
            IndexReject::Missing
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    fn tmp_store_with_spec(tag: &str, segments: usize, spec: ValidatorSpec) -> BundleStore {
        let dir = std::env::temp_dir().join(format!("swquery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::create(&dir).unwrap();
        w.set_validators(spec).unwrap();
        for seg in 0..segments as u64 {
            let bundles: Vec<_> = (0..20)
                .map(|i| bundle(seg * 100 + i, seg * 300 + i * 3, 1, 40_000 + i))
                .collect();
            w.seal_segment(bundles, Vec::new(), Vec::new()).unwrap();
        }
        w.into_reader()
    }

    #[test]
    fn spec_in_manifest_yields_a_full_validator_leaderboard() {
        let spec = ValidatorSpec::new(7, 6);
        let store = tmp_store_with_spec("valboard", 3, spec);
        let index = build_index(&store, &QueryConfig::default()).unwrap();
        assert_eq!(index.validator_spec, Some(spec));
        let validators = index.validators.as_ref().expect("leaderboard present");
        assert_eq!(validators.len(), 6, "one entry per spec validator");
        let led: u64 = validators.iter().map(|v| v.blocks_led).sum();
        assert_eq!(
            led,
            index.totals.max_slot + 1,
            "blocks_led partitions [0, max_slot]"
        );
        assert!(validators.iter().all(|v| !v.stake_pool.is_empty()));
        // No sandwiches in this store, so the tie-break is address order.
        let addrs: Vec<_> = validators.iter().map(|v| v.pubkey).collect();
        let mut sorted = addrs.clone();
        sorted.sort();
        assert_eq!(addrs, sorted);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn fold_with_spec_matches_the_full_build_byte_for_byte() {
        let spec = ValidatorSpec::new(11, 4);
        let store = tmp_store_with_spec("valfold", 4, spec);
        let config = QueryConfig::default();
        let full = build_index(&store, &config).unwrap();
        assert!(full.validators.is_some());
        let parts: Vec<QueryIndex> = (0..4)
            .map(|i| build_index_subset(&store, &config, &[i], &[]).unwrap())
            .collect();
        let folded = fold_indexes(&full.generation, parts, &config);
        assert_eq!(
            serde_json::to_string(&folded).unwrap(),
            serde_json::to_string(&full).unwrap(),
            "fold must recompute the leaderboard byte-identically"
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn validator_sort_ranks_by_rate_without_floats() {
        fn entry(label: &str, sandwiches: u64, blocks_led: u64) -> ValidatorEntry {
            ValidatorEntry {
                pubkey: Pubkey::derive(label),
                stake_lamports: 0,
                stake_pool: "solo".into(),
                blocks_led,
                sandwich_slots: Vec::new(),
                sandwiches,
                attacker_gain_lamports: 0,
                victim_loss_lamports: 0,
                tips_lamports: 0,
                refs: Vec::new(),
            }
        }
        // Rates: a = 3/10, b = 2/4 (= 0.5), c = 0/8, d = 0/0.
        let mut entries = vec![
            entry("a", 3, 10),
            entry("b", 2, 4),
            entry("c", 0, 8),
            entry("d", 0, 0),
        ];
        sort_validator_entries(&mut entries);
        let order: Vec<Pubkey> = entries.iter().map(|e| e.pubkey).collect();
        assert_eq!(order[0], Pubkey::derive("b"), "highest rate first");
        assert_eq!(order[1], Pubkey::derive("a"));
        // Zero-sandwich entries tie on rate and count; address breaks it.
        let mut tail = [order[2], order[3]];
        tail.sort();
        assert_eq!(&order[2..], &tail[..]);
    }

    #[test]
    fn generation_tracks_manifest_changes() {
        let dir = std::env::temp_dir().join(format!("swquery-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::create(&dir).unwrap();
        w.seal_segment(vec![bundle(1, 10, 1, 1_000)], vec![], vec![])
            .unwrap();
        let g1 = generation_of(&Manifest::load(&dir).unwrap());
        w.seal_segment(vec![bundle(2, 20, 1, 1_000)], vec![], vec![])
            .unwrap();
        let g2 = generation_of(&Manifest::load(&dir).unwrap());
        assert_ne!(g1, g2, "sealing a segment must change the generation");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
