//! Read-side analytics over a sealed bundle store.
//!
//! The measurement pipeline writes segments; this crate serves them. Three
//! layers, one per module:
//!
//! - [`index`] — one parallel pass over the segments builds secondary
//!   indexes (per-day rollups, attacker and pool leaderboards, a
//!   slot-sorted sandwich list), persisted next to the manifest in the
//!   store's checksummed framing and keyed to the manifest generation.
//! - [`engine`] + [`cache`] — typed requests evaluate against one
//!   immutable index snapshot; a sharded LRU with single-flight
//!   deduplication makes the hot path allocation-free after first touch.
//! - [`service`] — the `queryd` HTTP API over `sandwich-net`, exporting
//!   `query.*` metrics through `sandwich-obs`.
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod index;
pub mod render;
pub mod service;

pub use cache::{CacheOutcome, CachedResponse, ResponseCache};
pub use engine::{
    decode_live_cursor, encode_live_cursor, origin_cursor, Engine, QueryRequest, DEFAULT_LIMIT,
    MAX_LIMIT, MAX_LIVE_WAIT_MS,
};
pub use index::{
    build_index, build_index_subset, first_ref_after_cursor, fold_indexes, generation_of,
    live_minutes, load_index, load_index_any, load_index_as, minute_of, save_index, save_index_as,
    save_index_with, sort_attacker_entries, sort_pool_entries, sort_validator_entries,
    window_minutes, AttackerEntry, DayRollup, IndexCoverage, IndexReject, IndexTotals, LiveMinute,
    PoolEntry, QueryConfig, QueryIndex, SandwichRef, ValidatorEntry, INDEX_FILE, INDEX_MAGIC,
    LIVE_MINUTES, SLOTS_PER_MINUTE,
};
pub use service::{QueryService, QueryServiceConfig};
