//! The query engine: typed requests, canonical cache keys, and
//! deterministic evaluation against one immutable [`QueryIndex`].
//!
//! Every endpoint answers from the secondary indexes — evaluation never
//! touches segment files, so request latency is independent of store size
//! (modulo the one-time index build). Pagination uses numeric offsets
//! carried in `after=`; responses echo the paging state and include `next`
//! when more rows remain.

use std::collections::HashMap;
use std::sync::Arc;

use sandwich_net::Request;
use sandwich_types::Pubkey;

use crate::cache::CachedResponse;
use crate::index::{first_ref_at_or_after, AttackerEntry, PoolEntry, QueryIndex, SandwichRef};
use crate::render::{self, DETAIL_REF_CAP};

/// Default page size when `limit=` is absent.
pub const DEFAULT_LIMIT: usize = 20;

/// Hard ceiling on `limit=` to bound response sizes.
pub const MAX_LIMIT: usize = 500;

/// A parsed, validated API request. Construction validates all
/// parameters, so evaluation is infallible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRequest {
    /// `GET /api/summary`
    Summary,
    /// `GET /api/days`
    Days,
    /// `GET /api/attackers?limit=&after=`
    Attackers {
        /// Page size.
        limit: usize,
        /// Leaderboard offset of the first row.
        after: usize,
    },
    /// `GET /api/attacker/{pubkey}`
    Attacker {
        /// The attacker address.
        pubkey: Pubkey,
    },
    /// `GET /api/pool/{mint}`
    Pool {
        /// The pool's token mint.
        mint: Pubkey,
    },
    /// `GET /api/sandwiches?from_slot=&to_slot=&limit=&after=`
    Sandwiches {
        /// Inclusive lower slot bound.
        from_slot: u64,
        /// Inclusive upper slot bound.
        to_slot: u64,
        /// Page size.
        limit: usize,
        /// In-range offset of the first row.
        after: usize,
    },
}

fn parse_usize(request: &Request, key: &str, default: usize) -> Result<usize, String> {
    match request.query.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse::<usize>().map_err(|_| {
            format!("query parameter {key:?} must be a non-negative integer, got {raw:?}")
        }),
    }
}

fn parse_u64(request: &Request, key: &str, default: u64) -> Result<u64, String> {
    match request.query.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse::<u64>().map_err(|_| {
            format!("query parameter {key:?} must be a non-negative integer, got {raw:?}")
        }),
    }
}

fn parse_pubkey(request: &Request, param: &str) -> Result<Pubkey, String> {
    let raw = request
        .path_param(param)
        .ok_or_else(|| format!("missing path parameter {param:?}"))?;
    raw.parse::<Pubkey>()
        .map_err(|_| format!("{param:?} is not a valid base58 address: {raw:?}"))
}

impl QueryRequest {
    /// Parse an HTTP request for `endpoint` into a typed query, or a
    /// human-readable 400 message. `endpoint` is one of the names returned
    /// by [`QueryRequest::endpoint`].
    pub fn parse(endpoint: &str, request: &Request) -> Result<QueryRequest, String> {
        match endpoint {
            "summary" => Ok(QueryRequest::Summary),
            "days" => Ok(QueryRequest::Days),
            "attackers" => Ok(QueryRequest::Attackers {
                limit: parse_usize(request, "limit", DEFAULT_LIMIT)?.clamp(1, MAX_LIMIT),
                after: parse_usize(request, "after", 0)?,
            }),
            "attacker" => Ok(QueryRequest::Attacker {
                pubkey: parse_pubkey(request, "pubkey")?,
            }),
            "pool" => Ok(QueryRequest::Pool {
                mint: parse_pubkey(request, "mint")?,
            }),
            "sandwiches" => {
                let from_slot = parse_u64(request, "from_slot", 0)?;
                let to_slot = parse_u64(request, "to_slot", u64::MAX)?;
                if from_slot > to_slot {
                    return Err(format!("from_slot {from_slot} exceeds to_slot {to_slot}"));
                }
                Ok(QueryRequest::Sandwiches {
                    from_slot,
                    to_slot,
                    limit: parse_usize(request, "limit", DEFAULT_LIMIT)?.clamp(1, MAX_LIMIT),
                    after: parse_usize(request, "after", 0)?,
                })
            }
            other => Err(format!("unknown endpoint {other:?}")),
        }
    }

    /// Endpoint name, used for metric names and routing.
    pub fn endpoint(&self) -> &'static str {
        match self {
            QueryRequest::Summary => "summary",
            QueryRequest::Days => "days",
            QueryRequest::Attackers { .. } => "attackers",
            QueryRequest::Attacker { .. } => "attacker",
            QueryRequest::Pool { .. } => "pool",
            QueryRequest::Sandwiches { .. } => "sandwiches",
        }
    }

    /// Canonical cache key for this request (excludes the generation; the
    /// cache prepends it).
    pub fn canonical_key(&self) -> String {
        match self {
            QueryRequest::Summary => "summary".to_string(),
            QueryRequest::Days => "days".to_string(),
            QueryRequest::Attackers { limit, after } => {
                format!("attackers?limit={limit}&after={after}")
            }
            QueryRequest::Attacker { pubkey } => format!("attacker/{pubkey}"),
            QueryRequest::Pool { mint } => format!("pool/{mint}"),
            QueryRequest::Sandwiches {
                from_slot,
                to_slot,
                limit,
                after,
            } => format!(
                "sandwiches?from_slot={from_slot}&to_slot={to_slot}&limit={limit}&after={after}"
            ),
        }
    }
}

// Response bodies are rendered by [`crate::render`], shared with the
// shard router so single-engine and scatter-gather answers are built by
// the same code. Re-exported here for source compatibility.
pub use crate::render::error_response;

/// Immutable evaluation over one index snapshot, plus the lookup maps the
/// persisted form does not carry.
pub struct Engine {
    index: Arc<QueryIndex>,
    attacker_rank: HashMap<Pubkey, usize>,
    pool_rank: HashMap<Pubkey, usize>,
}

impl Engine {
    /// Wrap `index`, building the runtime lookup maps.
    pub fn new(index: Arc<QueryIndex>) -> Self {
        let attacker_rank = index
            .attackers
            .iter()
            .enumerate()
            .map(|(i, e)| (e.attacker, i))
            .collect();
        let pool_rank = index
            .pools
            .iter()
            .enumerate()
            .map(|(i, e)| (e.mint, i))
            .collect();
        Engine {
            index,
            attacker_rank,
            pool_rank,
        }
    }

    /// The index this engine answers from.
    pub fn index(&self) -> &QueryIndex {
        &self.index
    }

    /// The manifest generation this engine answers for.
    pub fn generation(&self) -> &str {
        &self.index.generation
    }

    fn recent_refs(&self, refs: &[u32]) -> Vec<SandwichRef> {
        refs.iter()
            .rev()
            .take(DETAIL_REF_CAP)
            .filter_map(|&i| self.index.refs.get(i as usize).cloned())
            .collect()
    }

    /// Rank and entry for an attacker, when the index knows it.
    pub fn attacker_entry(&self, pubkey: &Pubkey) -> Option<(usize, &AttackerEntry)> {
        let &rank = self.attacker_rank.get(pubkey)?;
        Some((rank, &self.index.attackers[rank]))
    }

    /// Rank and entry for a pool, when the index knows it.
    pub fn pool_entry(&self, mint: &Pubkey) -> Option<(usize, &PoolEntry)> {
        let &rank = self.pool_rank.get(mint)?;
        Some((rank, &self.index.pools[rank]))
    }

    /// The newest `cap` refs behind `refs`, **oldest first** (ascending
    /// slot order) — the shape a shard ships so the router can merge
    /// tails from several shards before reversing once.
    pub fn ref_tail(&self, refs: &[u32], cap: usize) -> Vec<SandwichRef> {
        let start = refs.len().saturating_sub(cap);
        refs[start..]
            .iter()
            .filter_map(|&i| self.index.refs.get(i as usize).cloned())
            .collect()
    }

    /// Evaluate a validated request. Pure: identical requests against the
    /// same index yield byte-identical bodies.
    pub fn evaluate(&self, request: &QueryRequest) -> CachedResponse {
        let index = &*self.index;
        let generation = index.generation.as_str();
        match request {
            QueryRequest::Summary => render::summary(
                generation,
                &index.coverage,
                &index.totals,
                index.days.len() as u64,
                index.attackers.len() as u64,
                index.pools.len() as u64,
            ),
            QueryRequest::Days => render::days(generation, &index.days),
            QueryRequest::Attackers { limit, after } => {
                render::attackers_page(generation, &index.attackers, *limit, *after)
            }
            QueryRequest::Attacker { pubkey } => match self.attacker_entry(pubkey) {
                None => render::unknown_attacker(pubkey),
                Some((rank, entry)) => {
                    render::attacker_detail(generation, rank, entry, self.recent_refs(&entry.refs))
                }
            },
            QueryRequest::Pool { mint } => match self.pool_entry(mint) {
                None => render::unknown_pool(mint),
                Some((rank, entry)) => {
                    render::pool_detail(generation, rank, entry, self.recent_refs(&entry.refs))
                }
            },
            QueryRequest::Sandwiches {
                from_slot,
                to_slot,
                limit,
                after,
            } => {
                let start = first_ref_at_or_after(&index.refs, *from_slot);
                let end = match to_slot.checked_add(1) {
                    Some(bound) => first_ref_at_or_after(&index.refs, bound),
                    None => index.refs.len(),
                };
                let in_range = &index.refs[start..end];
                let rows: Vec<SandwichRef> =
                    in_range.iter().skip(*after).take(*limit).cloned().collect();
                render::sandwiches_page(
                    generation,
                    *from_slot,
                    *to_slot,
                    in_range.len(),
                    *limit,
                    *after,
                    rows,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexCoverage, IndexTotals, QueryIndex, SandwichRef};
    use sandwich_types::Hash;

    fn key(n: u8) -> Pubkey {
        Pubkey([n; 32])
    }

    /// The deterministic JSON body as text (shim output has no whitespace).
    fn body_text(response: &CachedResponse) -> String {
        String::from_utf8(response.body.clone()).unwrap()
    }

    fn sandwich(slot: u64, attacker: u8, mint: u8, gain: i128) -> SandwichRef {
        SandwichRef {
            day: slot / 216_000,
            slot,
            bundle_id: Hash::digest(&slot.to_le_bytes()),
            attacker: key(attacker),
            victim: key(200),
            mints: vec![key(mint)],
            sol_legged: true,
            victim_loss_lamports: Some(1_000),
            attacker_gain_lamports: Some(gain),
            tip_lamports: 50_000,
        }
    }

    fn toy_index() -> QueryIndex {
        let refs = vec![
            sandwich(10, 1, 30, 500),
            sandwich(20, 1, 30, 700),
            sandwich(30, 2, 31, 300),
            sandwich(40, 1, 31, 900),
        ];
        let mut attackers = vec![
            AttackerEntry {
                attacker: key(1),
                sandwiches: 3,
                attacker_gain_lamports: 2_100,
                victim_loss_lamports: 3_000,
                tips_lamports: 150_000,
                refs: vec![0, 1, 3],
            },
            AttackerEntry {
                attacker: key(2),
                sandwiches: 1,
                attacker_gain_lamports: 300,
                victim_loss_lamports: 1_000,
                tips_lamports: 50_000,
                refs: vec![2],
            },
        ];
        attackers.sort_by_key(|a| std::cmp::Reverse(a.attacker_gain_lamports));
        let pools = vec![
            PoolEntry {
                mint: key(30),
                sandwiches: 2,
                victim_loss_lamports: 2_000,
                attackers: 1,
                refs: vec![0, 1],
            },
            PoolEntry {
                mint: key(31),
                sandwiches: 2,
                victim_loss_lamports: 2_000,
                attackers: 2,
                refs: vec![2, 3],
            },
        ];
        QueryIndex {
            generation: "cafebabecafebabe".to_string(),
            coverage: IndexCoverage {
                segments_total: 1,
                segments_scanned: 1,
                bundles_scanned: 4,
                ..IndexCoverage::default()
            },
            totals: IndexTotals {
                segments: 1,
                bundles: 4,
                sandwiches: 4,
                ..IndexTotals::default()
            },
            days: vec![],
            refs,
            attackers,
            pools,
        }
    }

    fn http(query: &[(&str, &str)], params: &[(&str, &str)]) -> Request {
        Request {
            method: sandwich_net::Method::Get,
            path: "/api/test".to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: HashMap::new(),
            body: bytes::Bytes::new(),
        }
    }

    #[test]
    fn parse_validates_parameters() {
        assert!(QueryRequest::parse("summary", &http(&[], &[])).is_ok());
        assert!(QueryRequest::parse("attackers", &http(&[("limit", "5")], &[])).is_ok());
        assert!(QueryRequest::parse("attackers", &http(&[("limit", "nope")], &[])).is_err());
        assert!(QueryRequest::parse("attackers", &http(&[("after", "-3")], &[])).is_err());
        assert!(QueryRequest::parse(
            "sandwiches",
            &http(&[("from_slot", "9"), ("to_slot", "3")], &[])
        )
        .is_err());
        assert!(QueryRequest::parse("attacker", &http(&[], &[("pubkey", "!!!")],)).is_err());
        let ok = QueryRequest::parse("attacker", &http(&[], &[("pubkey", &key(9).to_string())]));
        assert_eq!(ok.unwrap(), QueryRequest::Attacker { pubkey: key(9) });
        assert!(QueryRequest::parse("nope", &http(&[], &[])).is_err());
    }

    #[test]
    fn limits_are_clamped_not_rejected() {
        let parsed = QueryRequest::parse("attackers", &http(&[("limit", "100000")], &[])).unwrap();
        assert_eq!(
            parsed,
            QueryRequest::Attackers {
                limit: MAX_LIMIT,
                after: 0
            }
        );
        let parsed = QueryRequest::parse("attackers", &http(&[("limit", "0")], &[])).unwrap();
        assert_eq!(parsed, QueryRequest::Attackers { limit: 1, after: 0 });
    }

    #[test]
    fn pagination_walks_the_leaderboard() {
        let engine = Engine::new(Arc::new(toy_index()));
        let page1 = engine.evaluate(&QueryRequest::Attackers { limit: 1, after: 0 });
        assert_eq!(page1.status, 200);
        let text = body_text(&page1);
        assert!(text.contains("\"total\":2"), "{text}");
        assert!(text.contains("\"next\":1"), "{text}");
        let page2 = engine.evaluate(&QueryRequest::Attackers { limit: 1, after: 1 });
        let text = body_text(&page2);
        assert!(text.contains("\"next\":null"), "{text}");
        assert_ne!(page1.body, page2.body);
    }

    #[test]
    fn slot_ranges_use_binary_search_bounds() {
        let engine = Engine::new(Arc::new(toy_index()));
        let response = engine.evaluate(&QueryRequest::Sandwiches {
            from_slot: 15,
            to_slot: 30,
            limit: 10,
            after: 0,
        });
        let text = body_text(&response);
        assert!(text.contains("\"total\":2"), "slots 20 and 30: {text}");
        // An unbounded range covers everything without overflow.
        let all = engine.evaluate(&QueryRequest::Sandwiches {
            from_slot: 0,
            to_slot: u64::MAX,
            limit: 500,
            after: 0,
        });
        let text = body_text(&all);
        assert!(text.contains("\"total\":4"), "{text}");
    }

    #[test]
    fn unknown_entities_get_404_json() {
        let engine = Engine::new(Arc::new(toy_index()));
        let response = engine.evaluate(&QueryRequest::Attacker { pubkey: key(99) });
        assert_eq!(response.status, 404);
        assert!(body_text(&response).contains("unknown attacker"));
        let response = engine.evaluate(&QueryRequest::Pool { mint: key(99) });
        assert_eq!(response.status, 404);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let engine = Engine::new(Arc::new(toy_index()));
        for request in [
            QueryRequest::Summary,
            QueryRequest::Days,
            QueryRequest::Attackers {
                limit: 20,
                after: 0,
            },
            QueryRequest::Attacker { pubkey: key(1) },
            QueryRequest::Pool { mint: key(30) },
            QueryRequest::Sandwiches {
                from_slot: 0,
                to_slot: u64::MAX,
                limit: 20,
                after: 0,
            },
        ] {
            let a = engine.evaluate(&request);
            let b = engine.evaluate(&request);
            assert_eq!(a.body, b.body, "{request:?}");
            assert_eq!(a.status, b.status);
        }
    }
}
