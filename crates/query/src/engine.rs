//! The query engine: typed requests, canonical cache keys, and
//! deterministic evaluation against one immutable [`QueryIndex`].
//!
//! Every endpoint answers from the secondary indexes — evaluation never
//! touches segment files, so request latency is independent of store size
//! (modulo the one-time index build). Pagination uses numeric offsets
//! carried in `after=`; responses echo the paging state and include `next`
//! when more rows remain.

use std::collections::HashMap;
use std::sync::Arc;

use sandwich_net::Request;
use sandwich_types::{Hash, Pubkey};

use crate::cache::CachedResponse;
use crate::index::{
    first_ref_after_cursor, first_ref_at_or_after, live_minutes, AttackerEntry, PoolEntry,
    QueryIndex, SandwichRef, ValidatorEntry,
};
use crate::render::{self, DETAIL_REF_CAP};

/// Default page size when `limit=` is absent.
pub const DEFAULT_LIMIT: usize = 20;

/// Hard ceiling on `limit=` to bound response sizes.
pub const MAX_LIMIT: usize = 500;

/// Hard ceiling on `/api/live` long-poll waits, milliseconds. Well under
/// the HTTP client's total-request timeout, so a long-poll that finds
/// nothing still answers cleanly.
pub const MAX_LIVE_WAIT_MS: u64 = 5_000;

/// The origin live cursor position: strictly-after `(0, zero-hash)`,
/// i.e. the beginning of the stream.
pub fn origin_cursor() -> (u64, Hash) {
    (0, Hash([0u8; 32]))
}

/// Render a live cursor: `v1.<generation>.<slot hex>.<bundle id base58>`.
/// Opaque to clients; the generation is informational (positions stay
/// valid across folds because folding never reorders existing refs).
pub fn encode_live_cursor(generation: &str, slot: u64, bundle_id: &Hash) -> String {
    format!("v1.{generation}.{slot:016x}.{bundle_id}")
}

/// Parse a live cursor produced by [`encode_live_cursor`].
pub fn decode_live_cursor(raw: &str) -> Result<(u64, Hash), String> {
    let reject = || format!("malformed live cursor {raw:?}");
    let mut parts = raw.splitn(4, '.');
    let (v, generation, slot, id) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(v), Some(g), Some(s), Some(i)) => (v, g, s, i),
        _ => return Err(reject()),
    };
    if v != "v1" || generation.len() != 16 || !generation.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(reject());
    }
    let slot = u64::from_str_radix(slot, 16).map_err(|_| reject())?;
    let bundle_id = Hash::from_base58(id).ok_or_else(reject)?;
    Ok((slot, bundle_id))
}

/// A parsed, validated API request. Construction validates all
/// parameters, so evaluation is infallible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRequest {
    /// `GET /api/summary`
    Summary,
    /// `GET /api/days`
    Days,
    /// `GET /api/attackers?limit=&after=`
    Attackers {
        /// Page size.
        limit: usize,
        /// Leaderboard offset of the first row.
        after: usize,
    },
    /// `GET /api/attacker/{pubkey}`
    Attacker {
        /// The attacker address.
        pubkey: Pubkey,
    },
    /// `GET /api/pool/{mint}`
    Pool {
        /// The pool's token mint.
        mint: Pubkey,
    },
    /// `GET /api/validators?limit=&after=` — the stake-weighted colluder
    /// leaderboard plus stake-pool rollups.
    Validators {
        /// Page size.
        limit: usize,
        /// Leaderboard offset of the first row.
        after: usize,
    },
    /// `GET /api/validator/{pubkey}`
    Validator {
        /// The validator's identity address.
        pubkey: Pubkey,
    },
    /// `GET /api/sandwiches?from_slot=&to_slot=&limit=&after=`
    Sandwiches {
        /// Inclusive lower slot bound.
        from_slot: u64,
        /// Inclusive upper slot bound.
        to_slot: u64,
        /// Page size.
        limit: usize,
        /// In-range offset of the first row.
        after: usize,
    },
    /// `GET /api/live?cursor=&limit=&wait_ms=` — the streaming tail:
    /// sandwiches strictly after the cursor position plus the rolling
    /// per-minute window. `wait_ms > 0` long-polls until a row lands or
    /// the bound expires; it never changes the response body shape.
    Live {
        /// Cursor slot (exclusive, paired with `after_id`).
        after_slot: u64,
        /// Cursor bundle id (exclusive tie-break within `after_slot`).
        after_id: Hash,
        /// Page size.
        limit: usize,
        /// Long-poll bound, ms; 0 answers immediately. Excluded from the
        /// cache key — at one generation the body is wait-invariant.
        wait_ms: u64,
    },
}

fn parse_usize(request: &Request, key: &str, default: usize) -> Result<usize, String> {
    match request.query.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse::<usize>().map_err(|_| {
            format!("query parameter {key:?} must be a non-negative integer, got {raw:?}")
        }),
    }
}

fn parse_u64(request: &Request, key: &str, default: u64) -> Result<u64, String> {
    match request.query.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse::<u64>().map_err(|_| {
            format!("query parameter {key:?} must be a non-negative integer, got {raw:?}")
        }),
    }
}

fn parse_pubkey(request: &Request, param: &str) -> Result<Pubkey, String> {
    let raw = request
        .path_param(param)
        .ok_or_else(|| format!("missing path parameter {param:?}"))?;
    raw.parse::<Pubkey>()
        .map_err(|_| format!("{param:?} is not a valid base58 address: {raw:?}"))
}

impl QueryRequest {
    /// Parse an HTTP request for `endpoint` into a typed query, or a
    /// human-readable 400 message. `endpoint` is one of the names returned
    /// by [`QueryRequest::endpoint`].
    pub fn parse(endpoint: &str, request: &Request) -> Result<QueryRequest, String> {
        match endpoint {
            "summary" => Ok(QueryRequest::Summary),
            "days" => Ok(QueryRequest::Days),
            "attackers" => Ok(QueryRequest::Attackers {
                limit: parse_usize(request, "limit", DEFAULT_LIMIT)?.clamp(1, MAX_LIMIT),
                after: parse_usize(request, "after", 0)?,
            }),
            "attacker" => Ok(QueryRequest::Attacker {
                pubkey: parse_pubkey(request, "pubkey")?,
            }),
            "pool" => Ok(QueryRequest::Pool {
                mint: parse_pubkey(request, "mint")?,
            }),
            "validators" => Ok(QueryRequest::Validators {
                limit: parse_usize(request, "limit", DEFAULT_LIMIT)?.clamp(1, MAX_LIMIT),
                after: parse_usize(request, "after", 0)?,
            }),
            "validator" => Ok(QueryRequest::Validator {
                pubkey: parse_pubkey(request, "pubkey")?,
            }),
            "sandwiches" => {
                let from_slot = parse_u64(request, "from_slot", 0)?;
                let to_slot = parse_u64(request, "to_slot", u64::MAX)?;
                if from_slot > to_slot {
                    return Err(format!("from_slot {from_slot} exceeds to_slot {to_slot}"));
                }
                Ok(QueryRequest::Sandwiches {
                    from_slot,
                    to_slot,
                    limit: parse_usize(request, "limit", DEFAULT_LIMIT)?.clamp(1, MAX_LIMIT),
                    after: parse_usize(request, "after", 0)?,
                })
            }
            "live" => {
                let (after_slot, after_id) = match request.query.get("cursor") {
                    None => origin_cursor(),
                    Some(raw) => decode_live_cursor(raw)?,
                };
                Ok(QueryRequest::Live {
                    after_slot,
                    after_id,
                    limit: parse_usize(request, "limit", DEFAULT_LIMIT)?.clamp(1, MAX_LIMIT),
                    wait_ms: parse_u64(request, "wait_ms", 0)?.min(MAX_LIVE_WAIT_MS),
                })
            }
            other => Err(format!("unknown endpoint {other:?}")),
        }
    }

    /// Endpoint name, used for metric names and routing.
    pub fn endpoint(&self) -> &'static str {
        match self {
            QueryRequest::Summary => "summary",
            QueryRequest::Days => "days",
            QueryRequest::Attackers { .. } => "attackers",
            QueryRequest::Attacker { .. } => "attacker",
            QueryRequest::Pool { .. } => "pool",
            QueryRequest::Validators { .. } => "validators",
            QueryRequest::Validator { .. } => "validator",
            QueryRequest::Sandwiches { .. } => "sandwiches",
            QueryRequest::Live { .. } => "live",
        }
    }

    /// Canonical cache key for this request (excludes the generation; the
    /// cache prepends it).
    pub fn canonical_key(&self) -> String {
        match self {
            QueryRequest::Summary => "summary".to_string(),
            QueryRequest::Days => "days".to_string(),
            QueryRequest::Attackers { limit, after } => {
                format!("attackers?limit={limit}&after={after}")
            }
            QueryRequest::Attacker { pubkey } => format!("attacker/{pubkey}"),
            QueryRequest::Pool { mint } => format!("pool/{mint}"),
            QueryRequest::Validators { limit, after } => {
                format!("validators?limit={limit}&after={after}")
            }
            QueryRequest::Validator { pubkey } => format!("validator/{pubkey}"),
            QueryRequest::Sandwiches {
                from_slot,
                to_slot,
                limit,
                after,
            } => format!(
                "sandwiches?from_slot={from_slot}&to_slot={to_slot}&limit={limit}&after={after}"
            ),
            // `wait_ms` deliberately absent: at one generation a long-poll
            // answers with the same bytes as a page-poll at its position.
            QueryRequest::Live {
                after_slot,
                after_id,
                limit,
                ..
            } => format!("live?after={after_slot:016x}.{after_id}&limit={limit}"),
        }
    }
}

// Response bodies are rendered by [`crate::render`], shared with the
// shard router so single-engine and scatter-gather answers are built by
// the same code. Re-exported here for source compatibility.
pub use crate::render::error_response;

/// Immutable evaluation over one index snapshot, plus the lookup maps the
/// persisted form does not carry.
pub struct Engine {
    index: Arc<QueryIndex>,
    attacker_rank: HashMap<Pubkey, usize>,
    pool_rank: HashMap<Pubkey, usize>,
    validator_rank: HashMap<Pubkey, usize>,
}

impl Engine {
    /// Wrap `index`, building the runtime lookup maps.
    pub fn new(index: Arc<QueryIndex>) -> Self {
        let attacker_rank = index
            .attackers
            .iter()
            .enumerate()
            .map(|(i, e)| (e.attacker, i))
            .collect();
        let pool_rank = index
            .pools
            .iter()
            .enumerate()
            .map(|(i, e)| (e.mint, i))
            .collect();
        let validator_rank = index
            .validators
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .enumerate()
            .map(|(i, e)| (e.pubkey, i))
            .collect();
        Engine {
            index,
            attacker_rank,
            pool_rank,
            validator_rank,
        }
    }

    /// The index this engine answers from.
    pub fn index(&self) -> &QueryIndex {
        &self.index
    }

    /// The manifest generation this engine answers for.
    pub fn generation(&self) -> &str {
        &self.index.generation
    }

    fn recent_refs(&self, refs: &[u32]) -> Vec<SandwichRef> {
        refs.iter()
            .rev()
            .take(DETAIL_REF_CAP)
            .filter_map(|&i| self.index.refs.get(i as usize).cloned())
            .collect()
    }

    /// Rank and entry for an attacker, when the index knows it.
    pub fn attacker_entry(&self, pubkey: &Pubkey) -> Option<(usize, &AttackerEntry)> {
        let &rank = self.attacker_rank.get(pubkey)?;
        Some((rank, &self.index.attackers[rank]))
    }

    /// Rank and entry for a pool, when the index knows it.
    pub fn pool_entry(&self, mint: &Pubkey) -> Option<(usize, &PoolEntry)> {
        let &rank = self.pool_rank.get(mint)?;
        Some((rank, &self.index.pools[rank]))
    }

    /// The validator leaderboard; empty for a pre-attribution store.
    pub fn validator_entries(&self) -> &[ValidatorEntry] {
        self.index.validators.as_deref().unwrap_or(&[])
    }

    /// Rank and entry for a validator, when the schedule knows it.
    pub fn validator_entry(&self, pubkey: &Pubkey) -> Option<(usize, &ValidatorEntry)> {
        let &rank = self.validator_rank.get(pubkey)?;
        Some((rank, &self.validator_entries()[rank]))
    }

    /// How many refs sit strictly after the live cursor position — what a
    /// long-poll loop checks per snapshot without rendering anything.
    pub fn live_rows_after(&self, after_slot: u64, after_id: &Hash) -> usize {
        let refs = &self.index.refs;
        refs.len() - first_ref_after_cursor(refs, after_slot, after_id)
    }

    /// The newest `cap` refs behind `refs`, **oldest first** (ascending
    /// slot order) — the shape a shard ships so the router can merge
    /// tails from several shards before reversing once.
    pub fn ref_tail(&self, refs: &[u32], cap: usize) -> Vec<SandwichRef> {
        let start = refs.len().saturating_sub(cap);
        refs[start..]
            .iter()
            .filter_map(|&i| self.index.refs.get(i as usize).cloned())
            .collect()
    }

    /// Evaluate a validated request. Pure: identical requests against the
    /// same index yield byte-identical bodies.
    pub fn evaluate(&self, request: &QueryRequest) -> CachedResponse {
        let index = &*self.index;
        let generation = index.generation.as_str();
        match request {
            QueryRequest::Summary => render::summary(
                generation,
                &index.coverage,
                &index.totals,
                index.days.len() as u64,
                index.attackers.len() as u64,
                index.pools.len() as u64,
            ),
            QueryRequest::Days => render::days(generation, &index.days),
            QueryRequest::Attackers { limit, after } => {
                render::attackers_page(generation, &index.attackers, *limit, *after)
            }
            QueryRequest::Attacker { pubkey } => match self.attacker_entry(pubkey) {
                None => render::unknown_attacker(pubkey),
                Some((rank, entry)) => {
                    render::attacker_detail(generation, rank, entry, self.recent_refs(&entry.refs))
                }
            },
            QueryRequest::Pool { mint } => match self.pool_entry(mint) {
                None => render::unknown_pool(mint),
                Some((rank, entry)) => {
                    render::pool_detail(generation, rank, entry, self.recent_refs(&entry.refs))
                }
            },
            QueryRequest::Validators { limit, after } => {
                render::validators_page(generation, self.validator_entries(), *limit, *after)
            }
            QueryRequest::Validator { pubkey } => match self.validator_entry(pubkey) {
                None => render::unknown_validator(pubkey),
                Some((rank, entry)) => {
                    render::validator_detail(generation, rank, entry, self.recent_refs(&entry.refs))
                }
            },
            QueryRequest::Sandwiches {
                from_slot,
                to_slot,
                limit,
                after,
            } => {
                let start = first_ref_at_or_after(&index.refs, *from_slot);
                let end = match to_slot.checked_add(1) {
                    Some(bound) => first_ref_at_or_after(&index.refs, bound),
                    None => index.refs.len(),
                };
                let in_range = &index.refs[start..end];
                let rows: Vec<SandwichRef> =
                    in_range.iter().skip(*after).take(*limit).cloned().collect();
                render::sandwiches_page(
                    generation,
                    *from_slot,
                    *to_slot,
                    in_range.len(),
                    *limit,
                    *after,
                    rows,
                )
            }
            QueryRequest::Live {
                after_slot,
                after_id,
                limit,
                ..
            } => {
                let start = first_ref_after_cursor(&index.refs, *after_slot, after_id);
                let total_after = index.refs.len() - start;
                let rows: Vec<SandwichRef> =
                    index.refs[start..].iter().take(*limit).cloned().collect();
                let minutes = live_minutes(&index.refs, index.totals.max_slot);
                render::live_page(
                    generation,
                    *after_slot,
                    after_id,
                    index.totals.max_slot,
                    total_after,
                    *limit,
                    rows,
                    minutes,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexCoverage, IndexTotals, QueryIndex, SandwichRef};
    use sandwich_types::Hash;

    fn key(n: u8) -> Pubkey {
        Pubkey([n; 32])
    }

    /// The deterministic JSON body as text (shim output has no whitespace).
    fn body_text(response: &CachedResponse) -> String {
        String::from_utf8(response.body.clone()).unwrap()
    }

    fn sandwich(slot: u64, attacker: u8, mint: u8, gain: i128) -> SandwichRef {
        SandwichRef {
            day: slot / 216_000,
            slot,
            bundle_id: Hash::digest(&slot.to_le_bytes()),
            attacker: key(attacker),
            victim: key(200),
            mints: vec![key(mint)],
            sol_legged: true,
            victim_loss_lamports: Some(1_000),
            attacker_gain_lamports: Some(gain),
            tip_lamports: 50_000,
            leader: Some(key(100)),
        }
    }

    fn toy_index() -> QueryIndex {
        let refs = vec![
            sandwich(10, 1, 30, 500),
            sandwich(20, 1, 30, 700),
            sandwich(30, 2, 31, 300),
            sandwich(40, 1, 31, 900),
        ];
        let mut attackers = vec![
            AttackerEntry {
                attacker: key(1),
                sandwiches: 3,
                attacker_gain_lamports: 2_100,
                victim_loss_lamports: 3_000,
                tips_lamports: 150_000,
                refs: vec![0, 1, 3],
            },
            AttackerEntry {
                attacker: key(2),
                sandwiches: 1,
                attacker_gain_lamports: 300,
                victim_loss_lamports: 1_000,
                tips_lamports: 50_000,
                refs: vec![2],
            },
        ];
        attackers.sort_by_key(|a| std::cmp::Reverse(a.attacker_gain_lamports));
        let pools = vec![
            PoolEntry {
                mint: key(30),
                sandwiches: 2,
                victim_loss_lamports: 2_000,
                attackers: 1,
                refs: vec![0, 1],
            },
            PoolEntry {
                mint: key(31),
                sandwiches: 2,
                victim_loss_lamports: 2_000,
                attackers: 2,
                refs: vec![2, 3],
            },
        ];
        QueryIndex {
            generation: "cafebabecafebabe".to_string(),
            coverage: IndexCoverage {
                segments_total: 1,
                segments_scanned: 1,
                bundles_scanned: 4,
                ..IndexCoverage::default()
            },
            totals: IndexTotals {
                segments: 1,
                bundles: 4,
                sandwiches: 4,
                ..IndexTotals::default()
            },
            days: vec![],
            refs,
            attackers,
            pools,
            segment_files: vec!["seg-00000.seg".to_string()],
            quarantined_files: Vec::new(),
            validator_spec: Some(sandwich_attrib::ValidatorSpec::new(5, 2)),
            validators: Some(vec![
                ValidatorEntry {
                    pubkey: key(100),
                    stake_lamports: 7_000_000_000,
                    stake_pool: "jito".into(),
                    blocks_led: 30,
                    sandwich_slots: vec![10, 20, 30, 40],
                    sandwiches: 4,
                    attacker_gain_lamports: 2_400,
                    victim_loss_lamports: 4_000,
                    tips_lamports: 200_000,
                    refs: vec![0, 1, 2, 3],
                },
                ValidatorEntry {
                    pubkey: key(101),
                    stake_lamports: 5_000_000_000,
                    stake_pool: "solo".into(),
                    blocks_led: 11,
                    sandwich_slots: Vec::new(),
                    sandwiches: 0,
                    attacker_gain_lamports: 0,
                    victim_loss_lamports: 0,
                    tips_lamports: 0,
                    refs: Vec::new(),
                },
            ]),
        }
    }

    fn http(query: &[(&str, &str)], params: &[(&str, &str)]) -> Request {
        Request {
            method: sandwich_net::Method::Get,
            path: "/api/test".to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: HashMap::new(),
            body: bytes::Bytes::new(),
        }
    }

    #[test]
    fn parse_validates_parameters() {
        assert!(QueryRequest::parse("summary", &http(&[], &[])).is_ok());
        assert!(QueryRequest::parse("attackers", &http(&[("limit", "5")], &[])).is_ok());
        assert!(QueryRequest::parse("attackers", &http(&[("limit", "nope")], &[])).is_err());
        assert!(QueryRequest::parse("attackers", &http(&[("after", "-3")], &[])).is_err());
        assert!(QueryRequest::parse(
            "sandwiches",
            &http(&[("from_slot", "9"), ("to_slot", "3")], &[])
        )
        .is_err());
        assert!(QueryRequest::parse("attacker", &http(&[], &[("pubkey", "!!!")],)).is_err());
        let ok = QueryRequest::parse("attacker", &http(&[], &[("pubkey", &key(9).to_string())]));
        assert_eq!(ok.unwrap(), QueryRequest::Attacker { pubkey: key(9) });
        assert!(QueryRequest::parse("nope", &http(&[], &[])).is_err());
    }

    #[test]
    fn limits_are_clamped_not_rejected() {
        let parsed = QueryRequest::parse("attackers", &http(&[("limit", "100000")], &[])).unwrap();
        assert_eq!(
            parsed,
            QueryRequest::Attackers {
                limit: MAX_LIMIT,
                after: 0
            }
        );
        let parsed = QueryRequest::parse("attackers", &http(&[("limit", "0")], &[])).unwrap();
        assert_eq!(parsed, QueryRequest::Attackers { limit: 1, after: 0 });
    }

    #[test]
    fn pagination_walks_the_leaderboard() {
        let engine = Engine::new(Arc::new(toy_index()));
        let page1 = engine.evaluate(&QueryRequest::Attackers { limit: 1, after: 0 });
        assert_eq!(page1.status, 200);
        let text = body_text(&page1);
        assert!(text.contains("\"total\":2"), "{text}");
        assert!(text.contains("\"next\":1"), "{text}");
        let page2 = engine.evaluate(&QueryRequest::Attackers { limit: 1, after: 1 });
        let text = body_text(&page2);
        assert!(text.contains("\"next\":null"), "{text}");
        assert_ne!(page1.body, page2.body);
    }

    #[test]
    fn slot_ranges_use_binary_search_bounds() {
        let engine = Engine::new(Arc::new(toy_index()));
        let response = engine.evaluate(&QueryRequest::Sandwiches {
            from_slot: 15,
            to_slot: 30,
            limit: 10,
            after: 0,
        });
        let text = body_text(&response);
        assert!(text.contains("\"total\":2"), "slots 20 and 30: {text}");
        // An unbounded range covers everything without overflow.
        let all = engine.evaluate(&QueryRequest::Sandwiches {
            from_slot: 0,
            to_slot: u64::MAX,
            limit: 500,
            after: 0,
        });
        let text = body_text(&all);
        assert!(text.contains("\"total\":4"), "{text}");
    }

    #[test]
    fn live_cursor_roundtrips_and_rejects_garbage() {
        let id = Hash::digest(b"cursor");
        let cursor = encode_live_cursor("cafebabecafebabe", 42, &id);
        assert_eq!(decode_live_cursor(&cursor).unwrap(), (42, id));
        for bad in [
            "",
            "v1.cafebabecafebabe.10",
            "v2.cafebabecafebabe.000000000000002a.11111111111111111111111111111111",
            "v1.nothex!!!!!!!!!!.000000000000002a.11111111111111111111111111111111",
            "v1.cafebabecafebabe.nothex.11111111111111111111111111111111",
            "v1.cafebabecafebabe.000000000000002a.!!!",
        ] {
            assert!(decode_live_cursor(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn live_streams_strictly_after_the_cursor_without_skips_or_dups() {
        let engine = Engine::new(Arc::new(toy_index()));
        // From the origin: all four rows, cursor advances to the last row.
        let all = engine.evaluate(&QueryRequest::Live {
            after_slot: 0,
            after_id: Hash([0u8; 32]),
            limit: 500,
            wait_ms: 0,
        });
        assert_eq!(all.status, 200);
        let text = body_text(&all);
        assert!(text.contains("\"total_after\":4"), "{text}");
        assert!(text.contains("\"more\":false"), "{text}");

        // Page through with limit 1: each page advances by exactly one
        // row and the union is all four rows, no skips, no duplicates.
        let mut cursor = origin_cursor();
        let mut seen = Vec::new();
        for _ in 0..4 {
            let page = engine.evaluate(&QueryRequest::Live {
                after_slot: cursor.0,
                after_id: cursor.1,
                limit: 1,
                wait_ms: 0,
            });
            let text = body_text(&page);
            let row_slot = engine
                .index()
                .refs
                .iter()
                .find(|r| (r.slot, r.bundle_id.0) > (cursor.0, cursor.1 .0))
                .map(|r| (r.slot, r.bundle_id))
                .unwrap();
            assert!(text.contains(&format!("\"slot\":{}", row_slot.0)), "{text}");
            seen.push(row_slot);
            cursor = (row_slot.0, row_slot.1);
        }
        assert_eq!(seen.len(), 4);
        seen.dedup();
        assert_eq!(seen.len(), 4, "no duplicates across pages");
        // Past the end: empty page, same-position cursor echoed.
        let done = engine.evaluate(&QueryRequest::Live {
            after_slot: cursor.0,
            after_id: cursor.1,
            limit: 1,
            wait_ms: 0,
        });
        assert!(body_text(&done).contains("\"total_after\":0"));
    }

    #[test]
    fn wait_ms_is_excluded_from_the_cache_key() {
        let quick = QueryRequest::Live {
            after_slot: 7,
            after_id: Hash::digest(b"x"),
            limit: 20,
            wait_ms: 0,
        };
        let slow = QueryRequest::Live {
            after_slot: 7,
            after_id: Hash::digest(b"x"),
            limit: 20,
            wait_ms: 5_000,
        };
        assert_eq!(quick.canonical_key(), slow.canonical_key());
    }

    #[test]
    fn unknown_entities_get_404_json() {
        let engine = Engine::new(Arc::new(toy_index()));
        let response = engine.evaluate(&QueryRequest::Attacker { pubkey: key(99) });
        assert_eq!(response.status, 404);
        assert!(body_text(&response).contains("unknown attacker"));
        let response = engine.evaluate(&QueryRequest::Pool { mint: key(99) });
        assert_eq!(response.status, 404);
        let response = engine.evaluate(&QueryRequest::Validator { pubkey: key(99) });
        assert_eq!(response.status, 404);
        assert!(body_text(&response).contains("unknown validator"));
    }

    #[test]
    fn validators_page_carries_bps_rates_and_pool_rollups() {
        let engine = Engine::new(Arc::new(toy_index()));
        let page = engine.evaluate(&QueryRequest::Validators {
            limit: 10,
            after: 0,
        });
        assert_eq!(page.status, 200);
        let text = body_text(&page);
        assert!(text.contains("\"total\":2"), "{text}");
        // 4 sandwiches over 30 blocks = 1333 bps; 4 distinct sandwich
        // blocks over 30 = 1333 bps.
        assert!(text.contains("\"sandwiches_per_block_bps\":1333"), "{text}");
        assert!(text.contains("\"sandwich_block_bps\":1333"), "{text}");
        assert!(text.contains("\"stake_pool\":\"jito\""), "{text}");
        assert!(text.contains("\"stake_pool\":\"solo\""), "{text}");
        assert!(text.contains("\"stake_pools\":["), "{text}");

        // The zero-sandwich validator still gets a row (full universe).
        let page2 = engine.evaluate(&QueryRequest::Validators { limit: 1, after: 1 });
        let text = body_text(&page2);
        assert!(
            text.contains(&format!("\"pubkey\":\"{}\"", key(101))),
            "{text}"
        );
        // Rollups are over the full list even on a 1-row page.
        assert!(text.contains("\"stake_pool\":\"jito\""), "{text}");
    }

    #[test]
    fn validator_detail_matches_its_leaderboard_row() {
        let engine = Engine::new(Arc::new(toy_index()));
        let response = engine.evaluate(&QueryRequest::Validator { pubkey: key(100) });
        assert_eq!(response.status, 200);
        let text = body_text(&response);
        assert!(text.contains("\"rank\":0"), "{text}");
        assert!(text.contains("\"blocks_led\":30"), "{text}");
        assert!(text.contains("\"recent\":["), "{text}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let engine = Engine::new(Arc::new(toy_index()));
        for request in [
            QueryRequest::Summary,
            QueryRequest::Days,
            QueryRequest::Attackers {
                limit: 20,
                after: 0,
            },
            QueryRequest::Attacker { pubkey: key(1) },
            QueryRequest::Pool { mint: key(30) },
            QueryRequest::Sandwiches {
                from_slot: 0,
                to_slot: u64::MAX,
                limit: 20,
                after: 0,
            },
        ] {
            let a = engine.evaluate(&request);
            let b = engine.evaluate(&request);
            assert_eq!(a.body, b.body, "{request:?}");
            assert_eq!(a.status, b.status);
        }
    }
}
