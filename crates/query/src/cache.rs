//! Sharded LRU response cache with single-flight deduplication.
//!
//! Keys carry the manifest generation, so a reload invalidates every cached
//! response implicitly — stale entries simply stop being addressable and
//! age out of the LRU. Identical concurrent misses are deduplicated: the
//! first request evaluates, the rest await the published result on a
//! `watch` channel instead of re-evaluating.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use tokio::sync::watch;

use sandwich_store::fnv1a64;

/// One cached HTTP response body, shared between waiters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedResponse {
    /// HTTP status code.
    pub status: u16,
    /// Value of the `content-type` header.
    pub content_type: String,
    /// The exact response body bytes.
    pub body: Vec<u8>,
}

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a resident entry.
    Hit,
    /// Evaluated by this request and inserted.
    Miss,
    /// Waited on an identical in-flight evaluation.
    Deduped,
}

type Slot = watch::Receiver<Option<Arc<CachedResponse>>>;

struct Shard {
    entries: HashMap<String, (u64, Arc<CachedResponse>)>,
    inflight: HashMap<String, Slot>,
    stamp: u64,
}

impl Shard {
    fn touch(&mut self, key: &str) -> Option<Arc<CachedResponse>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(key).map(|slot| {
            slot.0 = stamp;
            slot.1.clone()
        })
    }

    /// Insert, evicting the least-recently-used entry at capacity.
    /// Returns the number of evictions (0 or 1).
    fn insert(&mut self, key: String, value: Arc<CachedResponse>, cap: usize) -> u64 {
        let mut evicted = 0;
        if self.entries.len() >= cap && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                evicted = 1;
            }
        }
        self.stamp += 1;
        self.entries.insert(key, (self.stamp, value));
        evicted
    }
}

/// The cache: `shards` independent LRU maps, each bounded to
/// `per_shard_cap` entries.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
}

impl ResponseCache {
    /// Create a cache of `shards` shards, `per_shard_cap` entries each.
    pub fn new(shards: usize, per_shard_cap: usize) -> Self {
        let shards = shards.max(1);
        ResponseCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        inflight: HashMap::new(),
                        stamp: 0,
                    })
                })
                .collect(),
            per_shard_cap: per_shard_cap.max(1),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard> {
        let i = (fnv1a64(key.as_bytes()) % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Resident entries across all shards (for tests and gauges).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop `key` from the resident entries, if present. The router uses
    /// this to un-cache a transient scatter-gather failure (a 503 from a
    /// dead shard must not be served from cache once the shard is back).
    pub fn invalidate(&self, key: &str) {
        self.shard_of(key).lock().entries.remove(key);
    }

    /// Look `key` up; on a miss run `compute` (synchronously, outside the
    /// shard lock) and publish the result to every concurrent waiter.
    /// Returns the response, how it was obtained, and how many entries the
    /// insert evicted.
    pub async fn get_or_compute<F>(
        &self,
        key: &str,
        compute: F,
    ) -> (Arc<CachedResponse>, CacheOutcome, u64)
    where
        F: FnOnce() -> CachedResponse,
    {
        self.get_or_compute_async(key, || std::future::ready(compute()))
            .await
    }

    /// [`Self::get_or_compute`] with an **async** compute — the shard
    /// router's miss path fans out over sockets and must await inside the
    /// leader slot. Identical single-flight semantics: one leader runs the
    /// future, concurrent identical misses await the published result.
    pub async fn get_or_compute_async<F, Fut>(
        &self,
        key: &str,
        compute: F,
    ) -> (Arc<CachedResponse>, CacheOutcome, u64)
    where
        F: FnOnce() -> Fut,
        Fut: std::future::Future<Output = CachedResponse>,
    {
        let mut compute = Some(compute);
        loop {
            enum Plan {
                Found(Arc<CachedResponse>),
                Wait(Slot),
                Lead(watch::Sender<Option<Arc<CachedResponse>>>),
            }
            let plan = {
                let mut shard = self.shard_of(key).lock();
                if let Some(found) = shard.touch(key) {
                    Plan::Found(found)
                } else if let Some(rx) = shard.inflight.get(key) {
                    Plan::Wait(rx.clone())
                } else {
                    let (tx, rx) = watch::channel(None);
                    shard.inflight.insert(key.to_string(), rx);
                    Plan::Lead(tx)
                }
            };
            match plan {
                Plan::Found(found) => return (found, CacheOutcome::Hit, 0),
                Plan::Wait(mut rx) => loop {
                    if let Some(value) = rx.borrow_and_update() {
                        return (value, CacheOutcome::Deduped, 0);
                    }
                    if rx.changed().await.is_err() {
                        // The leader vanished without publishing; start over
                        // (we may become the new leader).
                        break;
                    }
                },
                Plan::Lead(tx) => {
                    let Some(compute) = compute.take() else {
                        unreachable!("leader role is taken at most once per call");
                    };
                    let value = Arc::new(compute().await);
                    let evicted = {
                        let mut shard = self.shard_of(key).lock();
                        shard.inflight.remove(key);
                        shard.insert(key.to_string(), value.clone(), self.per_shard_cap)
                    };
                    let _ = tx.send(Some(value.clone()));
                    return (value, CacheOutcome::Miss, evicted);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(tag: &str) -> CachedResponse {
        CachedResponse {
            status: 200,
            content_type: "application/json".into(),
            body: tag.as_bytes().to_vec(),
        }
    }

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        tokio::runtime::Builder::new_multi_thread()
            .enable_all()
            .build()
            .unwrap()
            .block_on(fut)
    }

    #[test]
    fn hit_after_miss_and_distinct_keys() {
        block_on(async {
            let cache = ResponseCache::new(4, 8);
            let (a, outcome, _) = cache.get_or_compute("k1", || response("one")).await;
            assert_eq!(outcome, CacheOutcome::Miss);
            assert_eq!(a.body, b"one");
            let (b, outcome, _) = cache
                .get_or_compute("k1", || panic!("must not recompute"))
                .await;
            assert_eq!(outcome, CacheOutcome::Hit);
            assert_eq!(b.body, b"one");
            let (_, outcome, _) = cache.get_or_compute("k2", || response("two")).await;
            assert_eq!(outcome, CacheOutcome::Miss);
            assert_eq!(cache.len(), 2);
        });
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        block_on(async {
            // One shard, capacity two: the least recently used key falls out.
            let cache = ResponseCache::new(1, 2);
            cache.get_or_compute("a", || response("a")).await;
            cache.get_or_compute("b", || response("b")).await;
            cache.get_or_compute("a", || panic!("hit")).await; // refresh a
            let (_, _, evicted) = cache.get_or_compute("c", || response("c")).await;
            assert_eq!(evicted, 1, "inserting c at capacity evicts b");
            let (_, outcome, _) = cache.get_or_compute("a", || panic!("hit")).await;
            assert_eq!(outcome, CacheOutcome::Hit, "a survived as most recent");
            let (_, outcome, _) = cache.get_or_compute("b", || response("b2")).await;
            assert_eq!(outcome, CacheOutcome::Miss, "b was evicted");
        });
    }

    #[test]
    fn concurrent_identical_misses_single_flight() {
        block_on(async {
            let cache = Arc::new(ResponseCache::new(2, 8));
            let computes = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let mut set = tokio::task::JoinSet::new();
            for _ in 0..8 {
                let cache = cache.clone();
                let computes = computes.clone();
                set.spawn(async move {
                    let (value, outcome, _) = cache
                        .get_or_compute("hot", || {
                            computes.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            // Widen the in-flight window so peers dedupe.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            response("hot")
                        })
                        .await;
                    assert_eq!(value.body, b"hot");
                    outcome
                });
            }
            let mut outcomes = Vec::new();
            while let Some(joined) = set.join_next().await {
                outcomes.push(joined.unwrap());
            }
            assert_eq!(
                computes.load(std::sync::atomic::Ordering::SeqCst),
                1,
                "exactly one evaluation for eight identical concurrent requests"
            );
            assert_eq!(
                outcomes
                    .iter()
                    .filter(|o| **o == CacheOutcome::Miss)
                    .count(),
                1
            );
            assert!(outcomes.iter().all(|o| matches!(
                o,
                CacheOutcome::Miss | CacheOutcome::Deduped | CacheOutcome::Hit
            )));
        });
    }
}
