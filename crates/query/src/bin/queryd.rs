//! `queryd` — the analytics API daemon.
//!
//! Opens a sealed bundle store, loads or builds the query index, and
//! serves the `/api/*` endpoints plus `/metrics` until killed.
//!
//! Environment:
//! - `SANDWICH_QUERY_STORE`  — store directory (default `collector.store`)
//! - `SANDWICH_QUERY_ADDR`   — bind address (default `127.0.0.1:8080`)
//! - `SANDWICH_QUERY_THREADS` — index-build workers (default 4)
//! - `SANDWICH_QUERY_MAX_INFLIGHT` — admission-control bound on
//!   concurrent API requests; excess load is shed with 503 +
//!   `Retry-After` (default 256)
//! - `SANDWICH_QUERYD_ONCE=1` — exit right after startup (smoke tests)
//!
//! `GET /healthz` answers 200 while the process serves; `GET /readyz`
//! flips to 503 while the most recent index reload failed (the daemon
//! keeps serving the last good generation meanwhile).
//!
//! The daemon watches the manifest (cheap stat, no JSON parse) every few
//! seconds; when the collector seals a new segment it folds just the
//! delta into the live index (`query.index.fold.*` metrics) and swaps it
//! in — a full rebuild happens only if the manifest history stopped being
//! append-only. `/api/live` streams the newly folded sandwiches behind an
//! opaque cursor, with bounded long-polling, so a tracker UI pointed at
//! this process follows the measurement live.

use std::time::Duration;

use sandwich_obs::Registry;
use sandwich_query::{QueryService, QueryServiceConfig};
use sandwich_store::SealWatcher;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn main() {
    let store_dir = env_or("SANDWICH_QUERY_STORE", "collector.store");
    let addr = env_or("SANDWICH_QUERY_ADDR", "127.0.0.1:8080");
    let threads: usize = env_or("SANDWICH_QUERY_THREADS", "4").parse().unwrap_or(4);
    let max_in_flight: usize = env_or("SANDWICH_QUERY_MAX_INFLIGHT", "256")
        .parse()
        .unwrap_or(256);
    let once = env_or("SANDWICH_QUERYD_ONCE", "0") == "1";

    let mut config = QueryServiceConfig::new(&store_dir);
    config.query.threads = threads;
    config.max_in_flight = max_in_flight;
    let registry = Registry::new();

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    runtime.block_on(async move {
        let service = match QueryService::open(config, registry) {
            Ok(service) => service,
            Err(e) => {
                eprintln!("queryd: cannot open store at {store_dir}: {e}");
                std::process::exit(2);
            }
        };
        let server = match sandwich_net::Server::bind(&addr, service.router()).await {
            Ok(server) => server,
            Err(e) => {
                eprintln!("queryd: cannot bind {addr}: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "queryd: serving store {} on http://{} (generation {})",
            store_dir,
            server.local_addr(),
            service.generation()
        );
        if once {
            server.shutdown().await;
            return;
        }
        let mut watcher = SealWatcher::new(std::path::Path::new(&store_dir));
        watcher.changed(); // arm at the already-served manifest
        loop {
            tokio::time::sleep(Duration::from_secs(3)).await;
            if !watcher.changed() {
                continue;
            }
            match service.reload() {
                Ok(true) => {
                    println!(
                        "queryd: folded forward, generation {}",
                        service.generation()
                    )
                }
                Ok(false) => {}
                Err(e) => eprintln!("queryd: reload failed: {e}"),
            }
        }
    });
}
