//! The shared response-rendering layer: every JSON body the API serves is
//! built here, whether the inputs came from one local engine or from
//! merged shard partials.
//!
//! This is the keystone of the scatter-gather design in `sandwich-shard`:
//! the single-engine [`crate::Engine`] and the shard router both call
//! these functions with structurally identical inputs, so byte-identical
//! responses at every shard count are a property of the code shape, not a
//! test-enforced coincidence. Nothing in this module consults an engine
//! or an index — callers supply fully-merged values.

use serde::Serialize;

use sandwich_types::{Hash, Pubkey};

use crate::cache::CachedResponse;
use crate::engine::encode_live_cursor;
use crate::index::{
    AttackerEntry, DayRollup, IndexCoverage, IndexTotals, LiveMinute, PoolEntry, SandwichRef,
    ValidatorEntry,
};

/// Sandwich rows embedded in an attacker/pool detail response.
pub const DETAIL_REF_CAP: usize = 100;

// The serde_derive shim cannot handle lifetime or type parameters, so
// every response struct owns its data; bodies are built once per cache
// miss, so the clones are off the hot path.

#[derive(Serialize)]
struct SummaryResponse {
    generation: String,
    coverage: IndexCoverage,
    complete: bool,
    totals: IndexTotals,
    days: u64,
    attackers: u64,
    pools: u64,
}

#[derive(Serialize)]
struct DaysResponse {
    generation: String,
    days: Vec<DayRollup>,
}

#[derive(Serialize)]
struct AttackerRow {
    rank: usize,
    attacker: Pubkey,
    sandwiches: u64,
    attacker_gain_lamports: i128,
    victim_loss_lamports: u128,
    tips_lamports: u128,
}

impl AttackerRow {
    fn of(rank: usize, entry: &AttackerEntry) -> Self {
        AttackerRow {
            rank,
            attacker: entry.attacker,
            sandwiches: entry.sandwiches,
            attacker_gain_lamports: entry.attacker_gain_lamports,
            victim_loss_lamports: entry.victim_loss_lamports,
            tips_lamports: entry.tips_lamports,
        }
    }
}

#[derive(Serialize)]
struct AttackersPage {
    generation: String,
    total: usize,
    limit: usize,
    after: usize,
    next: Option<usize>,
    rows: Vec<AttackerRow>,
}

#[derive(Serialize)]
struct AttackerDetailResponse {
    generation: String,
    row: AttackerRow,
    recent: Vec<SandwichRef>,
}

#[derive(Serialize)]
struct PoolRow {
    rank: usize,
    mint: Pubkey,
    sandwiches: u64,
    victim_loss_lamports: u128,
    attackers: u64,
}

impl PoolRow {
    fn of(rank: usize, entry: &PoolEntry) -> Self {
        PoolRow {
            rank,
            mint: entry.mint,
            sandwiches: entry.sandwiches,
            victim_loss_lamports: entry.victim_loss_lamports,
            attackers: entry.attackers,
        }
    }
}

#[derive(Serialize)]
struct PoolDetailResponse {
    generation: String,
    row: PoolRow,
    recent: Vec<SandwichRef>,
}

/// Basis points of `part` in `whole` as exact integer arithmetic — the
/// response carries no floats, so single-engine and router bodies can be
/// byte-compared without epsilon games. Zero denominator renders as 0.
fn bps(part: u64, whole: u64) -> u64 {
    if whole == 0 {
        0
    } else {
        (u128::from(part) * 10_000 / u128::from(whole)) as u64
    }
}

#[derive(Serialize)]
struct ValidatorRow {
    rank: usize,
    pubkey: Pubkey,
    stake_lamports: u64,
    stake_pool: String,
    blocks_led: u64,
    sandwiches: u64,
    /// Distinct slots led by this validator containing a sandwich.
    sandwich_blocks: u64,
    /// `sandwiches / blocks_led` in basis points (integer, no floats).
    sandwiches_per_block_bps: u64,
    /// `sandwich_blocks / blocks_led` in basis points — the paper's
    /// "sandwich-inclusive block proportion" per leader.
    sandwich_block_bps: u64,
    attacker_gain_lamports: i128,
    victim_loss_lamports: u128,
    tips_lamports: u128,
}

impl ValidatorRow {
    fn of(rank: usize, entry: &ValidatorEntry) -> Self {
        let sandwich_blocks = entry.sandwich_slots.len() as u64;
        ValidatorRow {
            rank,
            pubkey: entry.pubkey,
            stake_lamports: entry.stake_lamports,
            stake_pool: entry.stake_pool.clone(),
            blocks_led: entry.blocks_led,
            sandwiches: entry.sandwiches,
            sandwich_blocks,
            sandwiches_per_block_bps: bps(entry.sandwiches, entry.blocks_led),
            sandwich_block_bps: bps(sandwich_blocks, entry.blocks_led),
            attacker_gain_lamports: entry.attacker_gain_lamports,
            victim_loss_lamports: entry.victim_loss_lamports,
            tips_lamports: entry.tips_lamports,
        }
    }
}

#[derive(Serialize)]
struct StakePoolRollup {
    stake_pool: String,
    validators: u64,
    stake_lamports: u128,
    blocks_led: u64,
    sandwiches: u64,
    sandwich_blocks: u64,
    /// Pool-level `sandwich_blocks / blocks_led` in basis points.
    sandwich_block_bps: u64,
}

/// Stake-pool rollups over the **full** entry list (never just the page):
/// a pure function of the entries, computed identically by the single
/// engine and the shard router after its merge.
fn stake_pool_rollups(entries: &[ValidatorEntry]) -> Vec<StakePoolRollup> {
    let mut by_pool: std::collections::BTreeMap<&str, StakePoolRollup> =
        std::collections::BTreeMap::new();
    for entry in entries {
        let rollup = by_pool
            .entry(entry.stake_pool.as_str())
            .or_insert_with(|| StakePoolRollup {
                stake_pool: entry.stake_pool.clone(),
                validators: 0,
                stake_lamports: 0,
                blocks_led: 0,
                sandwiches: 0,
                sandwich_blocks: 0,
                sandwich_block_bps: 0,
            });
        rollup.validators += 1;
        rollup.stake_lamports += u128::from(entry.stake_lamports);
        rollup.blocks_led += entry.blocks_led;
        rollup.sandwiches += entry.sandwiches;
        rollup.sandwich_blocks += entry.sandwich_slots.len() as u64;
    }
    by_pool
        .into_values()
        .map(|mut rollup| {
            rollup.sandwich_block_bps = bps(rollup.sandwich_blocks, rollup.blocks_led);
            rollup
        })
        .collect()
}

#[derive(Serialize)]
struct ValidatorsPage {
    generation: String,
    total: usize,
    limit: usize,
    after: usize,
    next: Option<usize>,
    rows: Vec<ValidatorRow>,
    stake_pools: Vec<StakePoolRollup>,
}

#[derive(Serialize)]
struct ValidatorDetailResponse {
    generation: String,
    row: ValidatorRow,
    recent: Vec<SandwichRef>,
}

#[derive(Serialize)]
struct RangeResponse {
    generation: String,
    from_slot: u64,
    to_slot: u64,
    total: usize,
    limit: usize,
    after: usize,
    next: Option<usize>,
    rows: Vec<SandwichRef>,
}

#[derive(Serialize)]
struct LiveResponse {
    generation: String,
    tip_slot: u64,
    total_after: usize,
    limit: usize,
    more: bool,
    cursor: String,
    rows: Vec<SandwichRef>,
    minutes: Vec<LiveMinute>,
}

#[derive(Serialize)]
struct ErrorBody {
    error: String,
}

fn json_response<T: Serialize>(status: u16, value: &T) -> CachedResponse {
    let body = serde_json::to_vec(value)
        .unwrap_or_else(|e| format!("{{\"error\":\"serialization failed: {e}\"}}").into_bytes());
    CachedResponse {
        status,
        content_type: "application/json".to_string(),
        body,
    }
}

/// A 4xx/5xx error body (same shape the engine uses for 404s).
pub fn error_response(status: u16, message: impl Into<String>) -> CachedResponse {
    json_response(
        status,
        &ErrorBody {
            error: message.into(),
        },
    )
}

/// The 404 for an attacker no shard (or the local index) knows.
pub fn unknown_attacker(pubkey: &Pubkey) -> CachedResponse {
    error_response(404, format!("unknown attacker {pubkey}"))
}

/// The 404 for a pool no shard (or the local index) knows.
pub fn unknown_pool(mint: &Pubkey) -> CachedResponse {
    error_response(404, format!("unknown pool {mint}"))
}

/// `GET /api/summary` — `days`/`attackers`/`pools` are the merged
/// cardinalities (distinct-count fields are not plain-summable, so the
/// router unions key sets before calling this).
pub fn summary(
    generation: &str,
    coverage: &IndexCoverage,
    totals: &IndexTotals,
    days: u64,
    attackers: u64,
    pools: u64,
) -> CachedResponse {
    json_response(
        200,
        &SummaryResponse {
            generation: generation.to_string(),
            coverage: coverage.clone(),
            complete: coverage.complete(),
            totals: totals.clone(),
            days,
            attackers,
            pools,
        },
    )
}

/// `GET /api/days` — `days` must be dense from day 0.
pub fn days(generation: &str, days: &[DayRollup]) -> CachedResponse {
    json_response(
        200,
        &DaysResponse {
            generation: generation.to_string(),
            days: days.to_vec(),
        },
    )
}

/// `GET /api/attackers` — `entries` must already be in leaderboard order
/// (see [`crate::index::sort_attacker_entries`]); pagination and `next`
/// are computed here so every caller paginates identically.
pub fn attackers_page(
    generation: &str,
    entries: &[AttackerEntry],
    limit: usize,
    after: usize,
) -> CachedResponse {
    let total = entries.len();
    let rows: Vec<AttackerRow> = entries
        .iter()
        .enumerate()
        .skip(after)
        .take(limit)
        .map(|(rank, entry)| AttackerRow::of(rank, entry))
        .collect();
    let end = after + rows.len();
    json_response(
        200,
        &AttackersPage {
            generation: generation.to_string(),
            total,
            limit,
            after,
            next: (end < total).then_some(end),
            rows,
        },
    )
}

/// `GET /api/attacker/{pubkey}` — `recent` must be the newest refs,
/// newest first, capped at [`DETAIL_REF_CAP`].
pub fn attacker_detail(
    generation: &str,
    rank: usize,
    entry: &AttackerEntry,
    recent: Vec<SandwichRef>,
) -> CachedResponse {
    json_response(
        200,
        &AttackerDetailResponse {
            generation: generation.to_string(),
            row: AttackerRow::of(rank, entry),
            recent,
        },
    )
}

/// `GET /api/pool/{mint}` — like [`attacker_detail`]; `entry.attackers`
/// must be the merged distinct-attacker count.
pub fn pool_detail(
    generation: &str,
    rank: usize,
    entry: &PoolEntry,
    recent: Vec<SandwichRef>,
) -> CachedResponse {
    json_response(
        200,
        &PoolDetailResponse {
            generation: generation.to_string(),
            row: PoolRow::of(rank, entry),
            recent,
        },
    )
}

/// The 404 for a validator outside the chain's leader schedule (shape
/// matches [`unknown_attacker`]).
pub fn unknown_validator(pubkey: &Pubkey) -> CachedResponse {
    error_response(404, format!("unknown validator {pubkey}"))
}

/// `GET /api/validators` — `entries` must already be in leaderboard order
/// (see [`crate::index::sort_validator_entries`]) and cover **every**
/// validator of the spec: the stake-pool rollups aggregate the full list,
/// not the page. A pre-attribution store passes an empty slice.
pub fn validators_page(
    generation: &str,
    entries: &[ValidatorEntry],
    limit: usize,
    after: usize,
) -> CachedResponse {
    let total = entries.len();
    let rows: Vec<ValidatorRow> = entries
        .iter()
        .enumerate()
        .skip(after)
        .take(limit)
        .map(|(rank, entry)| ValidatorRow::of(rank, entry))
        .collect();
    let end = after + rows.len();
    json_response(
        200,
        &ValidatorsPage {
            generation: generation.to_string(),
            total,
            limit,
            after,
            next: (end < total).then_some(end),
            rows,
            stake_pools: stake_pool_rollups(entries),
        },
    )
}

/// `GET /api/validator/{pubkey}` — like [`attacker_detail`]: `recent`
/// must be the newest refs, newest first, capped at [`DETAIL_REF_CAP`].
pub fn validator_detail(
    generation: &str,
    rank: usize,
    entry: &ValidatorEntry,
    recent: Vec<SandwichRef>,
) -> CachedResponse {
    json_response(
        200,
        &ValidatorDetailResponse {
            generation: generation.to_string(),
            row: ValidatorRow::of(rank, entry),
            recent,
        },
    )
}

/// `GET /api/live` — the streaming tail page. `rows` must be the
/// slot-ordered refs strictly after the `(after_slot, after_id)` cursor,
/// already capped at `limit`; `total_after` the uncapped count;
/// `minutes` the merged rolling window at `tip_slot` (see
/// [`crate::index::live_minutes`]). The next cursor points at the last
/// row served, or echoes the caller's position when the page is empty,
/// so resuming from it never skips and never repeats a row.
#[allow(clippy::too_many_arguments)]
pub fn live_page(
    generation: &str,
    after_slot: u64,
    after_id: &Hash,
    tip_slot: u64,
    total_after: usize,
    limit: usize,
    rows: Vec<SandwichRef>,
    minutes: Vec<LiveMinute>,
) -> CachedResponse {
    let (cursor_slot, cursor_id) = rows
        .last()
        .map(|r| (r.slot, r.bundle_id))
        .unwrap_or((after_slot, *after_id));
    json_response(
        200,
        &LiveResponse {
            generation: generation.to_string(),
            tip_slot,
            total_after,
            limit,
            more: total_after > rows.len(),
            cursor: encode_live_cursor(generation, cursor_slot, &cursor_id),
            rows,
            minutes,
        },
    )
}

/// `GET /api/sandwiches` — `total` is the full in-range count and `rows`
/// the `[after, after+limit)` slice of the slot-ordered in-range refs.
pub fn sandwiches_page(
    generation: &str,
    from_slot: u64,
    to_slot: u64,
    total: usize,
    limit: usize,
    after: usize,
    rows: Vec<SandwichRef>,
) -> CachedResponse {
    let next = after + rows.len();
    json_response(
        200,
        &RangeResponse {
            generation: generation.to_string(),
            from_slot,
            to_slot,
            total,
            limit,
            after,
            next: (next < total).then_some(next),
            rows,
        },
    )
}
