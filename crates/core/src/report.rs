//! Text renderers for the paper's tables and figures.
//!
//! Each function prints the same rows/series the paper reports, so the
//! bench binaries regenerate Table 1 and Figures 1–4 as text.

use sandwich_types::SlotClock;

use crate::analysis::AnalysisReport;
use crate::stats::Cdf;

/// Render an ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<w$} ", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Figure 1: bundles per day by length, with downtime gaps marked.
pub fn figure1(report: &AnalysisReport, clock: &SlotClock, downtime: &[(u64, u64)]) -> String {
    let mut rows = Vec::new();
    for day in 0..report.days {
        let is_down = downtime.iter().any(|&(a, b)| day >= a && day <= b);
        let mut row = vec![format!("{day:3}"), clock.day_label(day)];
        let mut total = 0.0;
        for len in 0..5 {
            let v = report.bundles_by_len_per_day[len].values[day as usize];
            total += v;
            row.push(format!("{v:.0}"));
        }
        row.push(format!("{total:.0}"));
        row.push(if is_down {
            "DOWN".into()
        } else {
            String::new()
        });
        rows.push(row);
    }
    render_table(
        &[
            "day", "date", "len1", "len2", "len3", "len4", "len5", "total", "gap",
        ],
        &rows,
    )
}

/// Figure 2: sandwiches & defensive bundles per day (top), losses & gains
/// per day in SOL (bottom).
pub fn figure2(report: &AnalysisReport, clock: &SlotClock) -> String {
    let mut rows = Vec::new();
    for day in 0..report.days as usize {
        rows.push(vec![
            format!("{day:3}"),
            clock.day_label(day as u64),
            format!("{:.0}", report.sandwiches_per_day.values[day]),
            format!("{:.0}", report.defensive_per_day.values[day]),
            format!("{:.3}", report.victim_loss_sol_per_day.values[day]),
            format!("{:.3}", report.attacker_gain_sol_per_day.values[day]),
        ]);
    }
    render_table(
        &[
            "day",
            "date",
            "sandwiches",
            "defensive",
            "victim loss (SOL)",
            "attacker gain (SOL)",
        ],
        &rows,
    )
}

/// Figure 3: CDF of USD lost per sandwiched transaction.
pub fn figure3(report: &AnalysisReport) -> String {
    let mut rows = Vec::new();
    for q in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        if let Some(v) = report.loss_cdf_usd.quantile(q) {
            rows.push(vec![format!("{:.0}%", q * 100.0), format!("${v:.2}")]);
        }
    }
    render_table(&["CDF", "USD lost"], &rows)
}

/// Figure 4: CDF of tips for length-1 bundles, length-3 bundles, and
/// detected sandwich bundles, on a lamport grid.
pub fn figure4(report: &AnalysisReport) -> String {
    let grid: [u64; 12] = [
        1_000,
        2_000,
        5_000,
        10_000,
        50_000,
        100_000,
        500_000,
        1_000_000,
        2_000_000,
        5_000_000,
        20_000_000,
        100_000_000,
    ];
    let frac = |cdf: &Cdf, x: u64| format!("{:.3}", cdf.fraction_at_or_below(x as f64));
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|&x| {
            vec![
                format!("{x}"),
                frac(&report.tip_cdf_len1, x),
                frac(&report.tip_cdf_len3, x),
                frac(&report.tip_cdf_sandwich, x),
            ]
        })
        .collect();
    render_table(&["tip (lamports) ≤", "len-1", "len-3", "sandwich"], &rows)
}

/// Table 1: a worked sandwich example rendered from an actual finding.
pub fn table1(report: &AnalysisReport) -> String {
    let Some(dated) = report
        .findings
        .iter()
        .find(|f| f.finding.sol_legged && f.finding.victim_loss_lamports.unwrap_or(0) > 0)
    else {
        return "no SOL-legged sandwich available".into();
    };
    let f = &dated.finding;
    let rows = vec![
        vec![
            "1".into(),
            "B (front-run)".into(),
            format!("ATTACKER {}", f.attacker.short()),
            "BUY".into(),
            "TOKEN_A".into(),
            "raises the price".into(),
        ],
        vec![
            "2".into(),
            "A (victim)".into(),
            format!("NORMAL {}", f.victim.short()),
            "BUY".into(),
            "TOKEN_A".into(),
            format!(
                "overpays ${:.2}",
                report.oracle.lamports_to_usd(sandwich_types::Lamports(
                    f.victim_loss_lamports.unwrap_or(0)
                ))
            ),
        ],
        vec![
            "3".into(),
            "C (back-run)".into(),
            format!("ATTACKER {}", f.attacker.short()),
            "SELL".into(),
            "TOKEN_A".into(),
            format!(
                "pockets ${:.2} (tip {} lamports)",
                report.oracle.lamports_to_usd(sandwich_types::Lamports(
                    f.attacker_gain_lamports.unwrap_or(0).max(0) as u64
                )),
                f.bundle_tip.0
            ),
        ],
    ];
    render_table(
        &[
            "Order",
            "Transaction",
            "Sender",
            "Action",
            "Token",
            "Effect",
        ],
        &rows,
    )
}

/// Headline paper-vs-measured comparison (the §4 aggregates).
pub fn headline(report: &AnalysisReport, volume_scale: f64) -> String {
    let scale_up = 1.0 / volume_scale;
    let rows = vec![
        vec![
            "sandwich attacks".into(),
            "521,903".into(),
            format!("{}", report.total_sandwiches()),
            format!("{:.0}", report.total_sandwiches() as f64 * scale_up),
        ],
        vec![
            "sandwich share of bundles".into(),
            "0.038%".into(),
            format!("{:.3}%", report.sandwich_fraction() * 100.0),
            "(scale-free)".into(),
        ],
        vec![
            "len-3 share of bundles".into(),
            "2.77%".into(),
            format!("{:.2}%", report.len3_fraction() * 100.0),
            "(scale-free)".into(),
        ],
        vec![
            "non-SOL sandwiches".into(),
            "28%".into(),
            format!("{:.0}%", report.non_sol_fraction() * 100.0),
            "(scale-free)".into(),
        ],
        vec![
            "victim losses".into(),
            "$7,712,138".into(),
            format!("${:.0}", report.total_victim_loss_usd()),
            format!("${:.0}", report.total_victim_loss_usd() * scale_up),
        ],
        vec![
            "attacker gains".into(),
            "$9,678,466".into(),
            format!("${:.0}", report.total_attacker_gain_usd()),
            format!("${:.0}", report.total_attacker_gain_usd() * scale_up),
        ],
        vec![
            "median victim loss".into(),
            "~$5".into(),
            format!("${:.2}", report.loss_cdf_usd.median().unwrap_or(0.0)),
            "(scale-free)".into(),
        ],
        vec![
            "defensive share of len-1".into(),
            "86%".into(),
            format!("{:.0}%", report.defense.defensive_fraction() * 100.0),
            "(scale-free)".into(),
        ],
        vec![
            "defensive spend".into(),
            "$2,421,868".into(),
            format!("${:.0}", report.total_defensive_spend_usd()),
            format!("${:.0}", report.total_defensive_spend_usd() * scale_up),
        ],
        vec![
            "mean defensive tip".into(),
            "$0.0028".into(),
            format!("${:.4}", report.mean_defensive_tip_usd()),
            "(scale-free)".into(),
        ],
        vec![
            "median len-3 tip".into(),
            "1,000 lamports".into(),
            format!(
                "{:.0} lamports",
                report.tip_cdf_len3.median().unwrap_or(0.0)
            ),
            "(scale-free)".into(),
        ],
        vec![
            "median sandwich tip".into(),
            ">2,000,000 lamports".into(),
            format!(
                "{:.0} lamports",
                report.tip_cdf_sandwich.median().unwrap_or(0.0)
            ),
            "(scale-free)".into(),
        ],
        vec![
            "successive-poll overlap".into(),
            "95%".into(),
            format!("{:.0}%", report.overlap_rate * 100.0),
            "(scale-free)".into(),
        ],
    ];
    render_table(
        &[
            "metric",
            "paper",
            "measured (scaled run)",
            "extrapolated full-scale",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderer_aligns() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "x".into()],
                vec!["2222".into(), "y".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with(" 1   "));
    }
}
