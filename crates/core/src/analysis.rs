//! Turning the collected dataset into the paper's results: per-day series
//! (Figures 1–2), the loss CDF (Figure 3), tip CDFs (Figure 4), and the
//! headline aggregates of §4.

use serde::{Deserialize, Serialize};

use sandwich_dex::SolUsdOracle;
use sandwich_types::{Lamports, SlotClock, DEFENSIVE_TIP_THRESHOLD};

use crate::dataset::Dataset;
use crate::defense::DefenseStats;
use crate::detector::{DetectorConfig, SandwichFinding};
use crate::stats::{Cdf, DailySeries};

/// Analysis configuration.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Detection criteria.
    pub detector: DetectorConfig,
    /// Defensive-tip threshold (paper: 100,000 lamports).
    pub defensive_threshold: Lamports,
    /// USD conversion (paper: $242/SOL).
    pub oracle: SolUsdOracle,
    /// Days in the measurement period (sizes the per-day series).
    pub days: u64,
    /// Extended detection: also scan bundles of length 4–5 for sandwich
    /// triples (quantifies how much the paper's length-3 methodology
    /// undercounts). Requires the collector to have fetched those details.
    pub extended: bool,
}

impl AnalysisConfig {
    /// Paper-default configuration for a period of `days`.
    pub fn paper_defaults(days: u64) -> Self {
        AnalysisConfig {
            detector: DetectorConfig::default(),
            defensive_threshold: DEFENSIVE_TIP_THRESHOLD,
            oracle: SolUsdOracle::default(),
            days,
            extended: false,
        }
    }

    /// Paper defaults plus extended (length-4/5) detection.
    pub fn extended(days: u64) -> Self {
        AnalysisConfig {
            extended: true,
            ..Self::paper_defaults(days)
        }
    }
}

/// A detected sandwich annotated with its day.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatedFinding {
    /// Measurement day.
    pub day: u64,
    /// The bundle the sandwich landed in.
    pub bundle_id: sandwich_jito::BundleId,
    /// The finding.
    pub finding: SandwichFinding,
}

/// Everything the figures need.
///
/// Serializable so reports can be diffed byte-for-byte: the suite asserts
/// that the parallel segment scan produces the identical JSON at any
/// thread count, and identical to this in-memory path.
#[derive(Clone, Debug, Serialize)]
pub struct AnalysisReport {
    /// Days covered.
    pub days: u64,
    /// Bundles per day split by length (Figure 1): index 0 = length 1.
    pub bundles_by_len_per_day: [DailySeries; 5],
    /// Sandwiches per day (Figure 2 top).
    pub sandwiches_per_day: DailySeries,
    /// Defensive bundles per day (Figure 2 top).
    pub defensive_per_day: DailySeries,
    /// Victim losses per day in SOL (Figure 2 bottom).
    pub victim_loss_sol_per_day: DailySeries,
    /// Attacker gains per day in SOL (Figure 2 bottom).
    pub attacker_gain_sol_per_day: DailySeries,
    /// Per-victim USD losses (Figure 3).
    pub loss_cdf_usd: Cdf,
    /// Tips of all length-1 bundles, lamports (Figure 4).
    pub tip_cdf_len1: Cdf,
    /// Tips of all length-3 bundles, lamports (Figure 4).
    pub tip_cdf_len3: Cdf,
    /// Tips of detected sandwich bundles, lamports (Figure 4).
    pub tip_cdf_sandwich: Cdf,
    /// Defensive aggregates (§4.2).
    pub defense: DefenseStats,
    /// Every finding, dated.
    pub findings: Vec<DatedFinding>,
    /// Sandwiches without a SOL leg (unpriced, §4.1's 28%).
    pub non_sol_sandwiches: u64,
    /// Total length-3 bundles whose details were available for detection.
    pub len3_with_details: u64,
    /// Successive-poll overlap rate (§3.1's 95%).
    pub overlap_rate: f64,
    /// Oracle used for USD figures.
    pub oracle: SolUsdOracle,
}

impl AnalysisReport {
    /// Total collected bundles.
    pub fn total_bundles(&self) -> f64 {
        self.bundles_by_len_per_day
            .iter()
            .map(DailySeries::total)
            .sum()
    }

    /// Total detected sandwiches.
    pub fn total_sandwiches(&self) -> u64 {
        self.findings.len() as u64
    }

    /// Sandwiches as a fraction of all bundles (paper: 0.038%).
    pub fn sandwich_fraction(&self) -> f64 {
        let total = self.total_bundles();
        if total == 0.0 {
            0.0
        } else {
            self.total_sandwiches() as f64 / total
        }
    }

    /// Length-3 bundles as a fraction of all bundles (paper: 2.77%).
    pub fn len3_fraction(&self) -> f64 {
        let total = self.total_bundles();
        if total == 0.0 {
            0.0
        } else {
            self.bundles_by_len_per_day[2].total() / total
        }
    }

    /// Total victim losses in USD (paper: $7.7M at full scale).
    pub fn total_victim_loss_usd(&self) -> f64 {
        self.oracle.sol_to_usd(self.victim_loss_sol_per_day.total())
    }

    /// Total attacker gains in USD (paper: $9.7M at full scale).
    pub fn total_attacker_gain_usd(&self) -> f64 {
        self.oracle
            .sol_to_usd(self.attacker_gain_sol_per_day.total())
    }

    /// Total defensive spend in USD (paper: $2.4M at full scale).
    pub fn total_defensive_spend_usd(&self) -> f64 {
        self.oracle
            .sol_to_usd(self.defense.defensive_tips_lamports as f64 / 1e9)
    }

    /// Mean defensive tip in USD (paper: $0.0028).
    pub fn mean_defensive_tip_usd(&self) -> f64 {
        self.oracle
            .sol_to_usd(self.defense.mean_defensive_tip() / 1e9)
    }

    /// Fraction of sandwiches with no SOL leg (paper: 28%).
    pub fn non_sol_fraction(&self) -> f64 {
        if self.findings.is_empty() {
            0.0
        } else {
            self.non_sol_sandwiches as f64 / self.findings.len() as f64
        }
    }
}

/// Run the full analysis over a collected dataset.
///
/// This is the in-memory path, rebuilt as one [`crate::scan::ScanPartial`]
/// over the dataset plus the shared finalize — the exact machinery the
/// parallel segment scan reduces with, which is what makes the two paths
/// produce byte-identical reports.
pub fn analyze(dataset: &Dataset, clock: &SlotClock, config: &AnalysisConfig) -> AnalysisReport {
    let mut partial = crate::scan::ScanPartial::new(config.days as usize);
    for bundle in dataset.bundles() {
        partial.observe_bundle(bundle, dataset, clock, config);
    }
    partial.observe_polls(dataset.polls());
    partial.finalize(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_explorer::{BundleSummaryJson, TxDetailJson};
    use sandwich_jito::tip_account;
    use sandwich_types::{Hash, Keypair, Pubkey};

    fn mint() -> Pubkey {
        Pubkey::derive("mint:AN")
    }

    fn summary(
        seed: u64,
        slot: u64,
        tip: u64,
        tx_ids: Vec<sandwich_ledger::TransactionId>,
    ) -> BundleSummaryJson {
        BundleSummaryJson {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot,
            timestamp_ms: 0,
            tip_lamports: tip,
            transactions: tx_ids,
        }
    }

    fn detail(
        bundle_seed: u64,
        slot: u64,
        label: &str,
        n: u64,
        sol_trade: i64,
        tokens: i128,
        tip: u64,
    ) -> TxDetailJson {
        let kp = Keypair::from_label(label);
        let mut sol_deltas = vec![sandwich_explorer::SolDeltaJson {
            account: kp.pubkey(),
            delta: sol_trade - 5_000 - tip as i64,
        }];
        if tip > 0 {
            sol_deltas.push(sandwich_explorer::SolDeltaJson {
                account: tip_account(0),
                delta: tip as i64,
            });
        }
        TxDetailJson {
            tx_id: kp.sign(&n.to_le_bytes()),
            bundle_id: Hash::digest(&bundle_seed.to_le_bytes()),
            slot,
            signer: kp.pubkey(),
            fee_lamports: 5_000,
            priority_fee_lamports: 0,
            success: true,
            sol_deltas,
            token_deltas: if tokens != 0 {
                vec![sandwich_explorer::TokenDeltaJson {
                    owner: kp.pubkey(),
                    mint: mint(),
                    delta: tokens,
                }]
            } else {
                vec![]
            },
        }
    }

    #[test]
    fn analysis_counts_everything() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();

        // Day 0: one defensive bundle, one priority bundle, one sandwich.
        let d1 = detail(10, 5, "atk", 1, -100_000_000_000, 10_000, 0);
        let d2 = detail(10, 5, "vic", 2, -120_000_000_000, 10_000, 0);
        let d3 = detail(10, 5, "atk", 3, 115_000_000_000, -10_000, 2_000_000);
        let page = vec![
            summary(1, 1, 5_000, vec![Keypair::from_label("d").sign(b"1")]),
            summary(2, 2, 900_000, vec![Keypair::from_label("p").sign(b"2")]),
            summary(10, 5, 2_000_000, vec![d1.tx_id, d2.tx_id, d3.tx_id]),
        ];
        ds.ingest_page(&page, &clock, 0);
        ds.ingest_details(&[Some(d1), Some(d2), Some(d3)]);

        let report = analyze(&ds, &clock, &AnalysisConfig::paper_defaults(2));
        assert_eq!(report.total_bundles(), 3.0);
        assert_eq!(report.total_sandwiches(), 1);
        assert_eq!(report.defense.defensive, 1);
        assert_eq!(report.defensive_per_day.values[0], 1.0);
        assert_eq!(report.sandwiches_per_day.values[0], 1.0);
        // Loss: 20 SOL at $242 = $4,840.
        assert!((report.loss_cdf_usd.median().unwrap() - 4_840.0).abs() < 1.0);
        assert!((report.victim_loss_sol_per_day.total() - 20.0).abs() < 1e-6);
        assert!((report.attacker_gain_sol_per_day.total() - 15.0).abs() < 1e-6);
        assert_eq!(report.tip_cdf_sandwich.len(), 1);
        assert_eq!(report.tip_cdf_len1.len(), 2);
        assert_eq!(report.len3_with_details, 1);
        assert!((report.len3_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert!((report.sandwich_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn missing_details_mean_no_detection() {
        let clock = SlotClock::default();
        let mut ds = Dataset::new();
        let kp = Keypair::from_label("x");
        let page = vec![summary(
            1,
            1,
            2_000_000,
            vec![kp.sign(b"a"), kp.sign(b"b"), kp.sign(b"c")],
        )];
        ds.ingest_page(&page, &clock, 0);
        let report = analyze(&ds, &clock, &AnalysisConfig::paper_defaults(1));
        assert_eq!(report.total_sandwiches(), 0);
        assert_eq!(report.len3_with_details, 0);
        assert_eq!(report.tip_cdf_len3.len(), 1, "tip still observed");
    }
}
