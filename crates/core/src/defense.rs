//! Defensive-bundling classification (paper §3.3).
//!
//! A length-1 bundle whose tip is at or below 100,000 lamports buys no
//! meaningful priority — the only economic reason to pay it is to make the
//! transaction un-bundleable by attackers. The threshold comes from the
//! lowest tips Jupiter's "MEV protection" mode was observed to submit.

use sandwich_types::{Lamports, DEFENSIVE_TIP_THRESHOLD};

use crate::dataset::CollectedBundle;

/// Classify one collected bundle at the paper's threshold.
pub fn is_defensive(bundle: &CollectedBundle) -> bool {
    is_defensive_at(bundle, DEFENSIVE_TIP_THRESHOLD)
}

/// Classify with an explicit threshold (sensitivity sweep).
pub fn is_defensive_at(bundle: &CollectedBundle, threshold: Lamports) -> bool {
    bundle.len() == 1 && is_defensive_tip(bundle.tip, threshold)
}

/// The tip-side half of the classification, for callers that already know
/// the bundle has length 1 (the columnar scan reads both facts straight
/// from the segment columns without materializing the record).
pub fn is_defensive_tip(tip: Lamports, threshold: Lamports) -> bool {
    tip <= threshold && tip > Lamports::ZERO
}

/// Aggregate defensive statistics over a set of bundles.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DefenseStats {
    /// Length-1 bundles observed.
    pub length_one: u64,
    /// Length-1 bundles classified defensive.
    pub defensive: u64,
    /// Lamports spent on defensive tips.
    pub defensive_tips_lamports: u64,
}

impl DefenseStats {
    /// Fraction of length-1 bundles that are defensive (the paper's 86%).
    pub fn defensive_fraction(&self) -> f64 {
        if self.length_one == 0 {
            0.0
        } else {
            self.defensive as f64 / self.length_one as f64
        }
    }

    /// Mean tip per defensive bundle in lamports (the paper's $0.0028).
    pub fn mean_defensive_tip(&self) -> f64 {
        if self.defensive == 0 {
            0.0
        } else {
            self.defensive_tips_lamports as f64 / self.defensive as f64
        }
    }

    /// Fold another partial's aggregates in (the parallel scan reduction).
    pub fn merge(&mut self, other: &DefenseStats) {
        self.length_one += other.length_one;
        self.defensive += other.defensive;
        self.defensive_tips_lamports += other.defensive_tips_lamports;
    }

    /// Fold one bundle in.
    pub fn observe(&mut self, bundle: &CollectedBundle, threshold: Lamports) {
        if bundle.len() == 1 {
            self.observe_len1(bundle.tip, threshold);
        }
    }

    /// Fold one length-1 bundle in by its tip alone.
    pub fn observe_len1(&mut self, tip: Lamports, threshold: Lamports) {
        self.length_one += 1;
        if is_defensive_tip(tip, threshold) {
            self.defensive += 1;
            self.defensive_tips_lamports += tip.0;
        }
    }
}

/// Sweep the classification threshold and report the defensive fraction at
/// each value — the sensitivity ablation from DESIGN.md.
pub fn threshold_sweep<'a>(
    bundles: impl Iterator<Item = &'a CollectedBundle> + Clone,
    thresholds: &[u64],
) -> Vec<(Lamports, DefenseStats)> {
    thresholds
        .iter()
        .map(|&t| {
            let threshold = Lamports(t);
            let mut stats = DefenseStats::default();
            for b in bundles.clone() {
                stats.observe(b, threshold);
            }
            (threshold, stats)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandwich_types::{Hash, Keypair, Slot};

    fn bundle(len: usize, tip: u64, seed: u64) -> CollectedBundle {
        let kp = Keypair::from_label("def");
        CollectedBundle {
            bundle_id: Hash::digest(&seed.to_le_bytes()),
            slot: Slot(seed),
            timestamp_ms: 0,
            tip: Lamports(tip),
            tx_ids: (0..len)
                .map(|i| kp.sign(&(seed * 10 + i as u64).to_le_bytes()))
                .collect(),
        }
    }

    #[test]
    fn classification_boundary() {
        assert!(is_defensive(&bundle(1, 100_000, 1)), "at threshold");
        assert!(is_defensive(&bundle(1, 1_000, 2)));
        assert!(!is_defensive(&bundle(1, 100_001, 3)), "above threshold");
        assert!(!is_defensive(&bundle(3, 1_000, 4)), "not length-1");
        assert!(!is_defensive(&bundle(1, 0, 5)), "zero tip never landed");
    }

    #[test]
    fn stats_aggregate() {
        let bundles = vec![
            bundle(1, 5_000, 1),
            bundle(1, 50_000, 2),
            bundle(1, 500_000, 3), // priority
            bundle(3, 5_000, 4),   // not len-1
        ];
        let mut stats = DefenseStats::default();
        for b in &bundles {
            stats.observe(b, DEFENSIVE_TIP_THRESHOLD);
        }
        assert_eq!(stats.length_one, 3);
        assert_eq!(stats.defensive, 2);
        assert_eq!(stats.defensive_tips_lamports, 55_000);
        assert!((stats.defensive_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!((stats.mean_defensive_tip() - 27_500.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_monotone() {
        let bundles: Vec<_> = (1..=100u64).map(|i| bundle(1, i * 2_000, i)).collect();
        let sweep = threshold_sweep(bundles.iter(), &[10_000, 100_000, 200_000]);
        let fractions: Vec<f64> = sweep.iter().map(|(_, s)| s.defensive_fraction()).collect();
        assert!(fractions[0] < fractions[1] && fractions[1] < fractions[2]);
    }

    use proptest::prelude::*;

    fn arb_stats() -> impl Strategy<Value = DefenseStats> {
        (0..1_000_000u64, 0..1_000_000u64, 0..1_000_000_000u64).prop_map(
            |(length_one, defensive, tips)| DefenseStats {
                length_one,
                defensive,
                defensive_tips_lamports: tips,
            },
        )
    }

    proptest! {
        #[test]
        fn merge_is_commutative(a in arb_stats(), b in arb_stats()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_associative(a in arb_stats(), b in arb_stats(), c in arb_stats()) {
            // (a + b) + c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a + (b + c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn merge_identity_is_default(a in arb_stats()) {
            let mut merged = a.clone();
            merged.merge(&DefenseStats::default());
            prop_assert_eq!(merged, a);
        }

        #[test]
        fn sweep_fraction_never_decreases_in_threshold(
            tips in prop::collection::vec((0u64..400_000, 1usize..4), 1..60),
            thresholds in prop::collection::vec(0u64..500_000, 2..8),
        ) {
            let mut thresholds = thresholds;
            // A higher threshold can only admit more length-1 bundles, so
            // the defensive fraction is non-decreasing along a sorted sweep
            // (the denominator — length-1 count — does not move).
            let bundles: Vec<_> = tips
                .iter()
                .enumerate()
                .map(|(i, &(tip, len))| bundle(len, tip, i as u64))
                .collect();
            thresholds.sort_unstable();
            let sweep = threshold_sweep(bundles.iter(), &thresholds);
            for w in sweep.windows(2) {
                prop_assert!(
                    w[1].1.defensive_fraction() >= w[0].1.defensive_fraction(),
                    "fraction dropped between thresholds {} and {}",
                    w[0].0 .0,
                    w[1].0 .0
                );
                prop_assert_eq!(w[0].1.length_one, w[1].1.length_one);
            }
        }
    }
}
