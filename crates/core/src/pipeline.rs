//! The end-to-end measurement pipeline: simulated chain → explorer API over
//! HTTP → polling collector → analysis.
//!
//! This is the whole paper in one function: the simulation produces blocks,
//! the explorer serves its two endpoints (injecting whatever faults its
//! plan schedules — including the configured downtime windows, which
//! become Figure 1's shaded gaps), and the collector polls every two
//! simulated minutes, riding out faults with retries, a circuit breaker,
//! and overlap backfill. The analysis turns the dataset into the figures.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;

use sandwich_explorer::{Explorer, ExplorerConfig, HistoryStore, RetentionPolicy};
use sandwich_obs::{Registry, Snapshot};
use sandwich_sim::Simulation;
use sandwich_store::{BundleStore, StoreWriter};
use sandwich_types::SlotClock;

use crate::analysis::{analyze, AnalysisConfig, AnalysisReport};
use crate::checkpoint::{Checkpoint, StoreCheckpoint};
use crate::collector::{Collector, CollectorConfig, CollectorStats};
use crate::dataset::Dataset;
use crate::scan::{scan_store_partial, IncrementalScan};

/// Pipeline tunables.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Explorer service behaviour, including its fault-injection plan.
    /// The scenario's `downtime_days` are appended to the plan's outage
    /// windows automatically — downtime is a server-side fault the
    /// collector must survive, not a voluntary skip.
    pub explorer: ExplorerConfig,
    /// Collector behaviour. `page_limit` should be the scaled equivalent
    /// of the paper's 50,000 (see [`scaled_page_limit`]).
    pub collector: CollectorConfig,
    /// Poll the bundles endpoint every N ticks (1 tick = 2 sim-minutes).
    pub poll_every_ticks: u64,
    /// Fetch pending length-3 details every N ticks.
    pub detail_every_ticks: u64,
    /// Flush collected records into a segmented binary bundle store as the
    /// run progresses (bounded resident memory), instead of accumulating
    /// everything in one in-memory `Vec` until the end.
    pub store: Option<StoreOptions>,
}

/// Segment-store wiring for a measurement run.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Directory for the manifest and segment files. Must not already hold
    /// a store (fresh runs) — resumed runs reattach via the checkpoint.
    pub dir: PathBuf,
    /// Bundles per sealed segment (the flush threshold).
    pub segment_bundles: usize,
    /// Fold each segment's analysis partial as it seals, so
    /// [`MeasurementRun::streaming_report`] carries the report without a
    /// separate post-run scan.
    pub streaming: bool,
}

impl StoreOptions {
    /// Store at `dir` with default segment size, streaming off.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreOptions {
            dir: dir.into(),
            segment_bundles: 5_000,
            streaming: false,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            explorer: ExplorerConfig::default(),
            collector: CollectorConfig::default(),
            poll_every_ticks: 1,
            detail_every_ticks: 30,
            store: None,
        }
    }
}

/// Run control: where to stop and where to pick up.
#[derive(Default)]
pub struct RunOptions {
    /// Stop before processing this tick, as if the process were killed.
    /// The run returns with `next_tick` set so it can be checkpointed.
    pub halt_at_tick: Option<u64>,
    /// Resume from a previous run's checkpoint: the simulation is replayed
    /// deterministically (feeding the explorer's history) without polling
    /// until the checkpointed cursor, then collection continues.
    pub resume: Option<Checkpoint>,
}

/// The paper's 50,000-bundle page, scaled to the scenario.
///
/// On mainnet a 50,000-bundle page covers ≈ 2.43× the bundle volume of one
/// two-minute polling interval (50,000 ÷ 14.8M/720). The scaled page keeps
/// that coverage ratio relative to the scenario's per-poll volume, so
/// overlap dynamics — including occasional misses under volume spikes —
/// are preserved.
pub fn scaled_page_limit(scenario: &sandwich_sim::ScenarioConfig, poll_every_ticks: u64) -> usize {
    let per_poll =
        scenario.bundles_per_day() / scenario.ticks_per_day as f64 * poll_every_ticks as f64;
    ((per_poll * 2.43).round() as usize).max(10)
}

/// Result of a full measurement run.
pub struct MeasurementRun {
    /// The collected dataset.
    pub dataset: Dataset,
    /// Collector health counters.
    pub collector_stats: CollectorStats,
    /// Requests the explorer actually served.
    pub explorer_requests: u64,
    /// Polls that failed even after retries (missed epochs).
    pub polls_failed: u64,
    /// The first tick a resumed run would process. Equal to the tick count
    /// for a run that finished; the halt point for a halted run.
    pub next_tick: u64,
    /// Whether the run stopped at `halt_at_tick` rather than completing.
    pub halted: bool,
    /// Final metrics snapshot across every layer (`sim.`, `engine.`,
    /// `bank.`, `explorer.`, `collector.`, `pipeline.`, `store.`, `scan.`).
    pub metrics: Snapshot,
    /// The slot clock shared by chain and collector.
    pub clock: SlotClock,
    /// The sealed segment store, when the run flushed into one.
    pub store: Option<BundleStore>,
    /// The streaming report (store mode with `streaming: true`): folded
    /// segment by segment as each sealed, identical to a post-run scan.
    pub streaming_report: Option<AnalysisReport>,
}

impl MeasurementRun {
    /// Analyze the collected data with the given configuration. In store
    /// mode the sealed segments are scanned (single-threaded here; use
    /// [`MeasurementRun::try_analyze`] for a thread count) plus whatever is
    /// still resident; legacy mode analyzes the in-memory dataset.
    pub fn analyze(&self, config: &AnalysisConfig) -> AnalysisReport {
        self.try_analyze(config, 1)
            .expect("segment store scan failed")
    }

    /// [`MeasurementRun::analyze`] over `threads` scan workers. The report
    /// is byte-identical for any thread count.
    pub fn try_analyze(
        &self,
        config: &AnalysisConfig,
        threads: usize,
    ) -> std::io::Result<AnalysisReport> {
        match &self.store {
            Some(store) if !store.segments().is_empty() => {
                let mut acc = scan_store_partial(store, &self.clock, config, threads, None)?;
                // Fold in whatever never sealed (a halted run's residue;
                // empty after a completed run's final flush).
                for bundle in self.dataset.bundles() {
                    acc.observe_bundle(bundle, &self.dataset, &self.clock, config);
                }
                acc.observe_polls(self.dataset.unspilled_polls());
                Ok(acc.finalize(config))
            }
            _ => Ok(analyze(&self.dataset, &self.clock, config)),
        }
    }

    /// Convert a (typically halted) run into a resumable checkpoint. Store
    /// mode checkpoints by reference: the manifest entry list, not the
    /// segment data.
    pub fn into_checkpoint(self) -> Checkpoint {
        Checkpoint {
            next_tick: self.next_tick,
            stats: self.collector_stats,
            store: self.store.map(|s| StoreCheckpoint {
                dir: s.dir().to_string_lossy().into_owned(),
                segments: s.segments().to_vec(),
            }),
            dataset: self.dataset,
        }
    }
}

/// Drive `sim` to completion while collecting through a live explorer
/// instance over real HTTP.
pub async fn run_measurement(
    sim: &mut Simulation,
    config: PipelineConfig,
) -> std::io::Result<MeasurementRun> {
    run_measurement_with(sim, config, RunOptions::default()).await
}

/// [`run_measurement`] with halt/resume control.
pub async fn run_measurement_with(
    sim: &mut Simulation,
    config: PipelineConfig,
    opts: RunOptions,
) -> std::io::Result<MeasurementRun> {
    let clock = sim.clock();
    // Retain details exactly where the collector will ask for them.
    let retention = if config.collector.detail_bundle_lens == [3] {
        RetentionPolicy::OnlyBundleLength(3)
    } else {
        RetentionPolicy::BundleLengths(config.collector.detail_bundle_lens)
    };
    let store = Arc::new(RwLock::new(HistoryStore::new(clock, retention)));
    // One registry shared by every layer, live at the explorer's /metrics.
    let registry = Registry::new();
    sim.attach_registry(&registry);
    // Scheduled downtime is served as a hard outage by the explorer, so the
    // collector's retry/breaker path — not a voluntary skip — produces the
    // Figure 1 gaps.
    let mut explorer_config = config.explorer.clone();
    explorer_config
        .faults
        .outages_ms
        .extend(sim.config().downtime_windows_ms(&clock));
    let explorer =
        Explorer::start_with_registry(store.clone(), explorer_config, registry.clone()).await?;
    let mut collector = Collector::with_registry(explorer.addr(), config.collector, &registry);
    let poll_errors = registry.counter("pipeline.poll_errors");
    let detail_errors = registry.counter("pipeline.detail_errors");

    // Resume: restore the collected state, then fast-forward the (fully
    // deterministic) simulation to the cursor without touching the network.
    let (start_tick, resumed_store) = match opts.resume {
        Some(cp) => {
            // Keep the pipeline-level ledger in step with the restored
            // collector counters (poll_errors mirrors polls_failed).
            poll_errors.add(cp.stats.polls_failed);
            let resumed_store = cp.store;
            collector.restore(cp.stats, cp.dataset);
            (cp.next_tick, resumed_store)
        }
        None => (0, None),
    };

    // Store mode: reattach the checkpointed writer (manifest only — no
    // sealed segment is re-read into memory) or create a fresh store.
    let segment_bundles = config
        .store
        .as_ref()
        .map(|s| s.segment_bundles)
        .unwrap_or(5_000);
    let store_dir: Option<PathBuf> = match (&resumed_store, &config.store) {
        (Some(sc), _) => {
            let writer = StoreWriter::resume(Path::new(&sc.dir), &sc.segments)?;
            let dir = writer.dir().to_path_buf();
            collector.attach_store(writer, segment_bundles);
            Some(dir)
        }
        (None, Some(options)) => {
            let mut writer = StoreWriter::create(&options.dir)?;
            // Stamp the chain's validator spec into the manifest: public
            // chain data from which the index recomputes the full leader
            // schedule, attributing each sandwich to its slot leader.
            writer.set_validators(sim.config().validator_spec())?;
            let dir = writer.dir().to_path_buf();
            collector.attach_store(writer, options.segment_bundles);
            Some(dir)
        }
        (None, None) => None,
    };

    // Streaming analysis folds each segment as it seals. A resumed run
    // must first catch up on the segments sealed before the checkpoint.
    let mut incremental = match (&config.store, &store_dir) {
        (Some(options), Some(dir)) if options.streaming => {
            let mut inc =
                IncrementalScan::new(clock, AnalysisConfig::paper_defaults(sim.config().days));
            if let Some(segments) = collector.store_segments() {
                for meta in segments {
                    inc.fold_sealed(dir, meta)?;
                }
            }
            Some(inc)
        }
        _ => None,
    };
    let partials_emitted = registry.counter(sandwich_obs::names::SCAN_PARTIALS_EMITTED);
    let streaming_sandwiches = registry.gauge(sandwich_obs::names::SCAN_STREAMING_SANDWICHES);

    let mut tick_counter = 0u64;
    let mut halted = false;
    while let Some(outcome) = sim.step() {
        if opts.halt_at_tick.is_some_and(|h| tick_counter >= h) {
            halted = true;
            break;
        }
        store.write().record_slot(&outcome.result);
        let now_ms = clock.unix_ms(outcome.result.block.slot);
        explorer.set_now_ms(now_ms);

        if tick_counter >= start_tick {
            if tick_counter.is_multiple_of(config.poll_every_ticks) {
                // Transient failures are survived by retries; a poll that
                // still fails after them is a missed epoch, like the
                // paper's — but it is counted, not discarded. A poll the
                // open circuit breaker skipped is neither.
                if collector
                    .poll_bundles(&clock, outcome.day, now_ms)
                    .await
                    .is_err()
                {
                    poll_errors.inc();
                }
            }
            if tick_counter.is_multiple_of(config.detail_every_ticks)
                && collector.fetch_pending_details(now_ms).await.is_err()
            {
                detail_errors.inc();
            }
            // Seal every full segment's worth of drained records, keeping
            // resident memory bounded while the run is still polling.
            for meta in collector.flush_store(false)? {
                if let (Some(inc), Some(dir)) = (incremental.as_mut(), &store_dir) {
                    inc.fold_sealed(dir, &meta)?;
                    partials_emitted.inc();
                    streaming_sandwiches.set(inc.sandwich_count() as i64);
                }
            }
        }
        tick_counter += 1;
    }

    // Final sweep for any details still pending, then seal everything left
    // — unless we are emulating a kill, which gets no goodbye (the residue
    // rides in the checkpoint instead).
    if !halted {
        let now_ms = explorer.now_ms();
        if collector.fetch_pending_details(now_ms).await.is_err() {
            detail_errors.inc();
        }
        for meta in collector.flush_store(true)? {
            if let (Some(inc), Some(dir)) = (incremental.as_mut(), &store_dir) {
                inc.fold_sealed(dir, &meta)?;
                partials_emitted.inc();
                streaming_sandwiches.set(inc.sandwich_count() as i64);
            }
        }
    }

    let explorer_requests = explorer.requests_served();
    explorer.shutdown().await;

    let sealed_store = collector.take_store().map(StoreWriter::into_reader);
    Ok(MeasurementRun {
        dataset: collector.dataset,
        polls_failed: collector.stats.polls_failed,
        collector_stats: collector.stats,
        explorer_requests,
        next_tick: tick_counter,
        halted,
        metrics: registry.snapshot(),
        clock,
        store: sealed_store,
        streaming_report: incremental.map(|inc| inc.report()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use sandwich_sim::ScenarioConfig;

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn tiny_end_to_end_measurement() {
        let scenario = ScenarioConfig::tiny();
        let days = scenario.days;
        let page_limit = scaled_page_limit(&scenario, 1);
        let mut sim = Simulation::new(scenario);
        let pipeline = PipelineConfig {
            collector: CollectorConfig {
                page_limit,
                detail_batch: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        let run = run_measurement(&mut sim, pipeline).await.unwrap();
        assert!(
            run.dataset.len() > 100,
            "collected {} bundles",
            run.dataset.len()
        );
        assert!(run.collector_stats.polls_ok > 0);
        // Downtime is now a server-side outage: polls during it fail (or
        // are skipped by the open breaker) instead of being silently
        // withheld, and they are all accounted for.
        assert!(run.polls_failed > 0, "downtime produced no failed polls");

        let report = run.analyze(&AnalysisConfig::paper_defaults(days));

        // Detection matches ground truth: every landed sandwich that was
        // collected must be found, and nothing else.
        let truth = sim.truth();
        let found: std::collections::HashSet<_> = report
            .findings
            .iter()
            .map(|f| {
                // Recover the bundle id via the day+victim pair is ambiguous;
                // instead check counts below.
                (f.day, f.finding.victim)
            })
            .collect();
        assert!(!found.is_empty());
        assert!(
            report.total_sandwiches() <= truth.total_sandwiches(),
            "no false positives beyond ground truth: found {} vs truth {}",
            report.total_sandwiches(),
            truth.total_sandwiches()
        );
        // The collector missed at most the downtime window; outside it,
        // detection should recover the bulk of ground truth.
        assert!(
            report.total_sandwiches() as f64 >= truth.total_sandwiches() as f64 * 0.4,
            "found {} of {}",
            report.total_sandwiches(),
            truth.total_sandwiches()
        );

        // No poll *succeeds* during the downtime day (day 1 in the tiny
        // scenario): the explorer drops every connection in the window.
        assert!(run.dataset.polls().iter().all(|p| p.day != 1));
        // The first poll after the outage backfills the gap's trailing
        // edge, recovering bundles no successful poll ever covered.
        assert!(
            run.collector_stats.bundles_recovered > 0,
            "post-outage backfill recovered nothing"
        );

        // Defensive classification catches ground-truth defensive bundles.
        assert!(report.defense.defensive > 0);
        assert!(report.defense.defensive_fraction() > 0.5);

        // Every layer reported into the shared registry.
        let m = &run.metrics;
        for prefix in ["sim.", "engine.", "bank.", "explorer.", "collector."] {
            assert!(
                m.counter_sum(prefix) > 0,
                "no non-zero {prefix} counters in {:?}",
                m.counters
            );
        }
        assert_eq!(m.counter("collector.polls_failed"), Some(run.polls_failed));
        assert_eq!(m.counter("pipeline.poll_errors"), Some(run.polls_failed));
        // The outage is injected (and counted) by the fault plan.
        assert!(m.counter("faults.injected.outage").unwrap_or(0) > 0);
        assert!(m.histogram("explorer.bundles_seconds").unwrap().count > 0);
        assert!(m.histogram("sim.tick_seconds").unwrap().count > 0);
    }
}
