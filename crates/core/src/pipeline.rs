//! The end-to-end measurement pipeline: simulated chain → explorer API over
//! HTTP → polling collector → analysis.
//!
//! This is the whole paper in one function: the simulation produces blocks,
//! the explorer serves its two endpoints, the collector polls every two
//! simulated minutes (skipping the configured downtime windows, which
//! become Figure 1's shaded gaps), and the analysis turns the dataset into
//! the figures.

use std::sync::Arc;

use parking_lot::RwLock;

use sandwich_explorer::{Explorer, ExplorerConfig, HistoryStore, RetentionPolicy};
use sandwich_obs::{Registry, Snapshot};
use sandwich_sim::Simulation;
use sandwich_types::SlotClock;

use crate::analysis::{analyze, AnalysisConfig, AnalysisReport};
use crate::collector::{Collector, CollectorConfig, CollectorStats};
use crate::dataset::Dataset;

/// Pipeline tunables.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Explorer service behaviour.
    pub explorer: ExplorerConfig,
    /// Collector behaviour. `page_limit` should be the scaled equivalent
    /// of the paper's 50,000 (see [`scaled_page_limit`]).
    pub collector: CollectorConfig,
    /// Poll the bundles endpoint every N ticks (1 tick = 2 sim-minutes).
    pub poll_every_ticks: u64,
    /// Fetch pending length-3 details every N ticks.
    pub detail_every_ticks: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            explorer: ExplorerConfig::default(),
            collector: CollectorConfig::default(),
            poll_every_ticks: 1,
            detail_every_ticks: 30,
        }
    }
}

/// The paper's 50,000-bundle page, scaled to the scenario.
///
/// On mainnet a 50,000-bundle page covers ≈ 2.43× the bundle volume of one
/// two-minute polling interval (50,000 ÷ 14.8M/720). The scaled page keeps
/// that coverage ratio relative to the scenario's per-poll volume, so
/// overlap dynamics — including occasional misses under volume spikes —
/// are preserved.
pub fn scaled_page_limit(scenario: &sandwich_sim::ScenarioConfig, poll_every_ticks: u64) -> usize {
    let per_poll =
        scenario.bundles_per_day() / scenario.ticks_per_day as f64 * poll_every_ticks as f64;
    ((per_poll * 2.43).round() as usize).max(10)
}

/// Result of a full measurement run.
pub struct MeasurementRun {
    /// The collected dataset.
    pub dataset: Dataset,
    /// Collector health counters.
    pub collector_stats: CollectorStats,
    /// Requests the explorer actually served.
    pub explorer_requests: u64,
    /// Polls that failed even after retries (missed epochs).
    pub polls_failed: u64,
    /// Final metrics snapshot across every layer (`sim.`, `engine.`,
    /// `bank.`, `explorer.`, `collector.`, `pipeline.`).
    pub metrics: Snapshot,
    /// The slot clock shared by chain and collector.
    pub clock: SlotClock,
}

impl MeasurementRun {
    /// Analyze the collected dataset with the given configuration.
    pub fn analyze(&self, config: &AnalysisConfig) -> AnalysisReport {
        analyze(&self.dataset, &self.clock, config)
    }
}

/// Drive `sim` to completion while collecting through a live explorer
/// instance over real HTTP.
pub async fn run_measurement(
    sim: &mut Simulation,
    config: PipelineConfig,
) -> std::io::Result<MeasurementRun> {
    let clock = sim.clock();
    // Retain details exactly where the collector will ask for them.
    let retention = if config.collector.detail_bundle_lens == [3] {
        RetentionPolicy::OnlyBundleLength(3)
    } else {
        RetentionPolicy::BundleLengths(config.collector.detail_bundle_lens)
    };
    let store = Arc::new(RwLock::new(HistoryStore::new(clock, retention)));
    // One registry shared by every layer, live at the explorer's /metrics.
    let registry = Registry::new();
    sim.attach_registry(&registry);
    let explorer =
        Explorer::start_with_registry(store.clone(), config.explorer.clone(), registry.clone())
            .await?;
    let mut collector = Collector::with_registry(explorer.addr(), config.collector, &registry);
    let poll_errors = registry.counter("pipeline.poll_errors");
    let detail_errors = registry.counter("pipeline.detail_errors");

    let mut tick_counter = 0u64;
    while let Some(outcome) = sim.step() {
        store.write().record_slot(&outcome.result);
        let now_ms = clock.unix_ms(outcome.result.block.slot);
        explorer.set_now_ms(now_ms);

        let downtime = sim.config().is_downtime(outcome.day);
        if !downtime {
            if tick_counter.is_multiple_of(config.poll_every_ticks) {
                // Transient failures are survived by retries; a poll that
                // still fails is a missed epoch, like the paper's — but it
                // is counted, not discarded.
                if collector.poll_bundles(&clock, outcome.day).await.is_err() {
                    poll_errors.inc();
                }
            }
            if tick_counter.is_multiple_of(config.detail_every_ticks)
                && collector.fetch_pending_details().await.is_err()
            {
                detail_errors.inc();
            }
        }
        tick_counter += 1;
    }

    // Final sweep for any details still pending.
    if collector.fetch_pending_details().await.is_err() {
        detail_errors.inc();
    }

    let explorer_requests = explorer.requests_served();
    explorer.shutdown().await;

    Ok(MeasurementRun {
        dataset: collector.dataset,
        polls_failed: collector.stats.polls_failed,
        collector_stats: collector.stats,
        explorer_requests,
        metrics: registry.snapshot(),
        clock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use sandwich_sim::ScenarioConfig;

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn tiny_end_to_end_measurement() {
        let scenario = ScenarioConfig::tiny();
        let days = scenario.days;
        let page_limit = scaled_page_limit(&scenario, 1);
        let mut sim = Simulation::new(scenario);
        let pipeline = PipelineConfig {
            collector: CollectorConfig {
                page_limit,
                detail_batch: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        let run = run_measurement(&mut sim, pipeline).await.unwrap();
        assert!(
            run.dataset.len() > 100,
            "collected {} bundles",
            run.dataset.len()
        );
        assert!(run.collector_stats.polls_ok > 0);

        let report = run.analyze(&AnalysisConfig::paper_defaults(days));

        // Detection matches ground truth: every landed sandwich that was
        // collected must be found, and nothing else.
        let truth = sim.truth();
        let found: std::collections::HashSet<_> = report
            .findings
            .iter()
            .map(|f| {
                // Recover the bundle id via the day+victim pair is ambiguous;
                // instead check counts below.
                (f.day, f.finding.victim)
            })
            .collect();
        assert!(!found.is_empty());
        assert!(
            report.total_sandwiches() <= truth.total_sandwiches(),
            "no false positives beyond ground truth: found {} vs truth {}",
            report.total_sandwiches(),
            truth.total_sandwiches()
        );
        // The collector missed at most the downtime window; outside it,
        // detection should recover the bulk of ground truth.
        assert!(
            report.total_sandwiches() as f64 >= truth.total_sandwiches() as f64 * 0.4,
            "found {} of {}",
            report.total_sandwiches(),
            truth.total_sandwiches()
        );

        // Downtime day (day 1 in the tiny scenario) has no polls.
        assert!(run.dataset.polls().iter().all(|p| p.day != 1));

        // Defensive classification catches ground-truth defensive bundles.
        assert!(report.defense.defensive > 0);
        assert!(report.defense.defensive_fraction() > 0.5);

        // Every layer reported into the shared registry.
        let m = &run.metrics;
        for prefix in ["sim.", "engine.", "bank.", "explorer.", "collector."] {
            assert!(
                m.counter_sum(prefix) > 0,
                "no non-zero {prefix} counters in {:?}",
                m.counters
            );
        }
        assert_eq!(m.counter("collector.polls_failed"), Some(run.polls_failed));
        assert_eq!(m.counter("pipeline.poll_errors"), Some(run.polls_failed));
        assert!(m.histogram("explorer.bundles_seconds").unwrap().count > 0);
        assert!(m.histogram("sim.tick_seconds").unwrap().count > 0);
    }
}
