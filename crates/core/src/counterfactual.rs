//! Counterfactual defense analysis — the paper's concluding discussion
//! (§5) made computable.
//!
//! The paper observes an apparent paradox: only 0.038% of bundles are
//! sandwiches, yet users spent $2.4M on defensive bundling. This module
//! quantifies both sides of that trade:
//!
//! * what detected victims *would have saved* had they defensively bundled
//!   (their loss, minus the tip a defensive bundle costs), and
//! * what tighter slippage tolerances would have capped their losses at —
//!   the mitigation prior work analyzed on Ethereum (§2.2),
//! * the expected-value framing: per-transaction defense cost versus the
//!   attack probability times the loss distribution.

use serde::{Deserialize, Serialize};

use sandwich_dex::SolUsdOracle;
use sandwich_types::Lamports;

use crate::analysis::AnalysisReport;
use crate::stats::Cdf;

/// Counterfactual: every detected victim had used defensive bundling.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DefensiveCounterfactual {
    /// Victims considered (SOL-legged detections only).
    pub victims: u64,
    /// Their aggregate realized loss, USD.
    pub realized_loss_usd: f64,
    /// What the defensive tips would have cost them, USD.
    pub defense_cost_usd: f64,
    /// Net saving had they all defensively bundled, USD.
    pub net_saving_usd: f64,
}

/// Counterfactual: every detected victim had set slippage at `cap_bps`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlippageCounterfactual {
    /// The tolerance analyzed, basis points.
    pub cap_bps: u32,
    /// Victims considered.
    pub victims: u64,
    /// Aggregate realized loss, USD.
    pub realized_loss_usd: f64,
    /// Aggregate loss under the cap, USD (losses are bounded by the
    /// tolerance, per prior work on Ethereum).
    pub capped_loss_usd: f64,
    /// Loss avoided, USD.
    pub avoided_usd: f64,
}

/// The expected-value framing of §5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DefenseEconomics {
    /// Probability any given bundle-visible transaction is sandwiched.
    pub attack_probability: f64,
    /// Mean loss conditional on being attacked, USD.
    pub mean_loss_usd: f64,
    /// 95th-percentile loss conditional on being attacked, USD.
    pub p95_loss_usd: f64,
    /// Expected loss per transaction without defense, USD.
    pub expected_loss_usd: f64,
    /// Cost of defense per transaction (mean defensive tip), USD.
    pub defense_cost_usd: f64,
    /// Expected-value ratio: defense cost / expected loss. Below 1 defense
    /// is EV-positive; the paper argues users buy it even when it is not,
    /// because the tail is fat.
    pub cost_to_ev_ratio: f64,
}

/// Defensive-bundling counterfactual over an analysis report.
///
/// `tip_lamports` is the defensive tip a victim would have paid (the
/// paper's observed mean is ≈ 11.6k lamports ≈ $0.0028).
pub fn defensive_counterfactual(
    report: &AnalysisReport,
    tip_lamports: Lamports,
    oracle: &SolUsdOracle,
) -> DefensiveCounterfactual {
    let mut victims = 0u64;
    let mut realized = 0.0f64;
    for f in &report.findings {
        if let Some(loss) = f.finding.victim_loss_lamports {
            victims += 1;
            realized += oracle.lamports_to_usd(Lamports(loss));
        }
    }
    let defense_cost = victims as f64 * oracle.lamports_to_usd(tip_lamports);
    DefensiveCounterfactual {
        victims,
        realized_loss_usd: realized,
        defense_cost_usd: defense_cost,
        net_saving_usd: realized - defense_cost,
    }
}

/// Slippage-cap counterfactual: each victim's loss is bounded by what the
/// attacker could extract under a `cap_bps` tolerance — approximately the
/// victim's volume times the tolerance (prior work's cap result, §2.2).
///
/// Victim volume is recovered from the finding: loss ≈ volume × realized
/// slippage, and the realized slippage is bounded by the victim's own
/// tolerance, so `capped = min(loss, volume × cap)`. Since the detector
/// does not retain volumes, we conservatively use the loss CDF: any loss
/// above the cap-quantile of observed losses is truncated proportionally.
pub fn slippage_counterfactual(
    report: &AnalysisReport,
    cap_bps: u32,
    assumed_tolerance_bps: u32,
    oracle: &SolUsdOracle,
) -> SlippageCounterfactual {
    let scale = cap_bps as f64 / assumed_tolerance_bps.max(1) as f64;
    let mut victims = 0u64;
    let mut realized = 0.0f64;
    let mut capped = 0.0f64;
    for f in &report.findings {
        if let Some(loss) = f.finding.victim_loss_lamports {
            victims += 1;
            let usd = oracle.lamports_to_usd(Lamports(loss));
            realized += usd;
            // A tighter tolerance caps extraction roughly proportionally.
            capped += usd * scale.min(1.0);
        }
    }
    SlippageCounterfactual {
        cap_bps,
        victims,
        realized_loss_usd: realized,
        capped_loss_usd: capped,
        avoided_usd: realized - capped,
    }
}

/// The §5 expected-value comparison.
pub fn defense_economics(report: &AnalysisReport, _oracle: &SolUsdOracle) -> DefenseEconomics {
    let attack_probability = report.sandwich_fraction();
    let losses: &Cdf = &report.loss_cdf_usd;
    let mean_loss = losses.mean().unwrap_or(0.0);
    let p95_loss = losses.quantile(0.95).unwrap_or(0.0);
    let expected_loss = attack_probability * mean_loss;
    let defense_cost = report.mean_defensive_tip_usd();
    DefenseEconomics {
        attack_probability,
        mean_loss_usd: mean_loss,
        p95_loss_usd: p95_loss,
        expected_loss_usd: expected_loss,
        defense_cost_usd: defense_cost,
        cost_to_ev_ratio: if expected_loss > 0.0 {
            defense_cost / expected_loss
        } else {
            f64::INFINITY
        },
    }
    // The paper's point survives arithmetic: defense is usually EV-negative
    // per transaction, yet rational under fat-tailed loss aversion.
    // (Returned struct lets callers make the argument quantitatively.)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{AnalysisReport, DatedFinding};
    use crate::defense::DefenseStats;
    use crate::detector::{Currency, SandwichFinding};
    use crate::stats::{Cdf, DailySeries};
    use sandwich_types::{Hash, Keypair};

    fn report_with_losses(losses_lamports: &[u64]) -> AnalysisReport {
        let oracle = SolUsdOracle::default();
        let findings: Vec<DatedFinding> = losses_lamports
            .iter()
            .enumerate()
            .map(|(i, &loss)| DatedFinding {
                day: 0,
                bundle_id: Hash::digest(&(i as u64).to_le_bytes()),
                finding: SandwichFinding {
                    attacker: Keypair::from_label("a").pubkey(),
                    victim: Keypair::from_label("v").pubkey(),
                    currencies: vec![Currency::Sol],
                    sol_legged: true,
                    victim_loss_lamports: Some(loss),
                    attacker_gain_lamports: Some(loss as i128 / 2),
                    bundle_tip: Lamports(2_000_000),
                },
            })
            .collect();
        let loss_cdf_usd = Cdf::from_samples(
            losses_lamports
                .iter()
                .map(|&l| oracle.lamports_to_usd(Lamports(l)))
                .collect(),
        );
        let defense = DefenseStats {
            length_one: 100,
            defensive: 86,
            defensive_tips_lamports: 86 * 10_000,
        };
        AnalysisReport {
            days: 1,
            bundles_by_len_per_day: std::array::from_fn(|i| {
                let mut s = DailySeries::zeros(1);
                s.add(0, if i == 0 { 100.0 } else { 10.0 });
                s
            }),
            sandwiches_per_day: DailySeries::zeros(1),
            defensive_per_day: DailySeries::zeros(1),
            victim_loss_sol_per_day: DailySeries::zeros(1),
            attacker_gain_sol_per_day: DailySeries::zeros(1),
            loss_cdf_usd,
            tip_cdf_len1: Cdf::from_samples(vec![]),
            tip_cdf_len3: Cdf::from_samples(vec![]),
            tip_cdf_sandwich: Cdf::from_samples(vec![]),
            defense,
            findings,
            non_sol_sandwiches: 0,
            len3_with_details: 10,
            overlap_rate: 1.0,
            oracle,
        }
    }

    #[test]
    fn defensive_counterfactual_nets_tip_cost() {
        let report = report_with_losses(&[20_000_000, 40_000_000]); // 0.02 + 0.04 SOL
        let oracle = SolUsdOracle::default();
        let cf = defensive_counterfactual(&report, Lamports(10_000), &oracle);
        assert_eq!(cf.victims, 2);
        assert!((cf.realized_loss_usd - 0.06 * 242.0).abs() < 1e-6);
        assert!((cf.defense_cost_usd - 2.0 * 0.00001 * 242.0).abs() < 1e-9);
        assert!(
            cf.net_saving_usd > 14.0,
            "defense overwhelmingly pays for victims"
        );
    }

    #[test]
    fn slippage_cap_scales_losses() {
        let report = report_with_losses(&[10_000_000, 10_000_000]);
        let oracle = SolUsdOracle::default();
        let cf = slippage_counterfactual(&report, 50, 200, &oracle);
        assert_eq!(cf.victims, 2);
        assert!((cf.capped_loss_usd - cf.realized_loss_usd * 0.25).abs() < 1e-9);
        assert!(cf.avoided_usd > 0.0);
        // A looser "cap" than the assumed tolerance changes nothing.
        let loose = slippage_counterfactual(&report, 500, 200, &oracle);
        assert!((loose.capped_loss_usd - loose.realized_loss_usd).abs() < 1e-9);
    }

    #[test]
    fn economics_ratio_reflects_rarity() {
        let report = report_with_losses(&[20_000_000]);
        let oracle = SolUsdOracle::default();
        let econ = defense_economics(&report, &oracle);
        // Attack probability is findings / bundles = 1/140.
        assert!(econ.attack_probability > 0.0 && econ.attack_probability < 0.01);
        assert!(econ.mean_loss_usd > 0.0);
        assert!(econ.expected_loss_usd < econ.mean_loss_usd);
        assert!(econ.defense_cost_usd > 0.0);
        assert!(econ.cost_to_ev_ratio.is_finite());
    }

    #[test]
    fn empty_report_is_graceful() {
        let report = report_with_losses(&[]);
        let oracle = SolUsdOracle::default();
        let cf = defensive_counterfactual(&report, Lamports(10_000), &oracle);
        assert_eq!(cf.victims, 0);
        assert_eq!(cf.net_saving_usd, 0.0);
        let econ = defense_economics(&report, &oracle);
        assert_eq!(econ.expected_loss_usd, 0.0);
        assert!(econ.cost_to_ev_ratio.is_infinite());
    }
}
